"""Job lifecycle and analysis execution for the serve daemon.

A :class:`Job` is the server-side state of one request: queued →
running → (done | failed | cancelled), with an append-only event list
(the NDJSON stream) and a condition variable for waiters.  The
*result envelope* — the analysis payload a job produces — is a pure
function of the job spec: no timestamps, ids, or scheduling facts ever
enter it, which is what makes the content-addressed result cache
bit-identical by construction.  Wall-clock facts live in the job
snapshot wrapper instead.

:class:`JobRunner` executes one job on the calling worker thread:
each job runs under its own :func:`repro.telemetry.session`, the
engine picks its parallel backend exactly as the CLI would, progress
callbacks become heartbeat events, and the final metrics snapshot is
merged into the server-wide registry (the ``/metrics`` source) and
recorded in the run registry as a ``serve.<analysis>`` record with the
service outcome taxonomy: ``ok`` | ``degraded`` | ``refused`` |
``budget`` | ``interrupted`` | ``error``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serve.jobspec import JobSpec, JobSpecError

__all__ = ["Job", "JobRunner", "OUTCOME_EXIT_CODES", "TERMINAL_STATES"]

TERMINAL_STATES = ("done", "failed", "cancelled")

#: NDJSON stream framing fields; caller-supplied event fields (engine
#: progress dicts can carry any name) must never overwrite them.
_FRAMING_KEYS = frozenset(("seq", "event", "job_id"))

#: Service outcome → the exit code the same outcome carries in the CLI
#: contract (see ``EXIT_CODE_DOC``): recorded in run records so serve
#: and CLI runs diff cleanly against each other.
OUTCOME_EXIT_CODES = {
    "ok": 0,
    "degraded": 2,
    "refused": 2,
    "budget": 2,
    "interrupted": 130,
    "cancelled": 130,
    "error": 1,
}


class Job:
    """Server-side state of one submitted analysis request."""

    def __init__(self, job_id: str, spec: JobSpec, cache_key: str):
        self.id = job_id
        self.spec = spec
        self.cache_key = cache_key
        self.state = "queued"
        self.outcome: Optional[str] = None
        self.result: Optional[dict] = None
        self.result_text: Optional[str] = None
        self.error: Optional[str] = None
        self.cached = False
        self.session_reused: Optional[bool] = None
        self.checkpoint_dir: Optional[str] = None
        self.queue_rank: Optional[Tuple[int, int, int]] = None
        self.progress: Dict[str, float] = {}
        self.t_submit = time.time()
        self.t_start: Optional[float] = None
        self.t_end: Optional[float] = None
        self.events: List[dict] = []
        self._cond = threading.Condition()

    # -- events and state ---------------------------------------------
    def add_event(self, kind: str, **fields) -> None:
        with self._cond:
            event = {"seq": len(self.events), "event": kind,
                     "job_id": self.id}
            for key, value in fields.items():
                event[f"x_{key}" if key in _FRAMING_KEYS else key] = value
            self.events.append(event)
            self._cond.notify_all()

    def events_after(self, cursor: int) -> List[dict]:
        with self._cond:
            return list(self.events[cursor:])

    def set_state(self, state: str) -> None:
        with self._cond:
            self.state = state
            self._cond.notify_all()

    def heartbeat(self, state: dict) -> None:
        """Engine progress callback → job progress + NDJSON event."""
        self.progress = dict(state)
        self.add_event("heartbeat", **state)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while self.state not in TERMINAL_STATES:
                left = (None if deadline is None
                        else deadline - time.monotonic())
                if left is not None and left <= 0:
                    return False
                self._cond.wait(left)
            return True

    def finish(self, state: str, outcome: str,
               result: Optional[dict] = None,
               result_text: Optional[str] = None,
               error: Optional[str] = None) -> None:
        self.t_end = time.time()
        self.outcome = outcome
        self.result = result
        self.result_text = result_text
        self.error = error
        self.add_event("finished", state=state, outcome=outcome)
        self.set_state(state)

    def snapshot(self, include_result: bool = True) -> dict:
        """The ``GET /jobs/<id>`` payload."""
        spec = self.spec
        payload = {
            "id": self.id,
            "analysis": spec.analysis,
            "client": spec.client,
            "priority": spec.priority,
            "state": self.state,
            "outcome": self.outcome,
            "cached": self.cached,
            "cache_key": self.cache_key,
            "session_reused": self.session_reused,
            "progress": self.progress,
            "error": self.error,
            "checkpoint_dir": self.checkpoint_dir,
            "resumable": self.checkpoint_dir is not None
            and self.outcome in ("budget", "interrupted"),
            "t_submit": self.t_submit,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "events": len(self.events),
        }
        if include_result and self.terminal:
            payload["result"] = self.result
        return payload


# ----------------------------------------------------------------------
# Picklable spec extractors for netlist-defined workloads
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NodeVoltageExtractor:
    """DC node-voltage metric on an arbitrary netlist.

    A frozen module-level dataclass (not a closure) so the ``process``
    backend can pickle the chunk tasks that carry it.
    """

    node: str

    def __call__(self, fixture) -> float:
        from repro.circuit.dc import dc_operating_point

        return dc_operating_point(fixture.circuit).voltage(self.node)


def _sram_snm_extractor(fixture, n_points: int = 41) -> float:
    """Read-SNM metric (module-level for process-backend pickling)."""
    from repro.circuits import sram_read_butterfly, static_noise_margin

    v_probe, v_resp = sram_read_butterfly(fixture, n_points=n_points)
    return static_noise_margin(v_probe, v_resp)


def _param(params: dict, key: str, kind, default=None, minimum=None):
    """Typed parameter fetch; violations refuse the job (400)."""
    value = params.get(key, default)
    if value is None:
        return None
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or \
            (kind is not bool and isinstance(value, bool)):
        raise JobSpecError(f"param {key!r} must be {kind.__name__}")
    if minimum is not None and value < minimum:
        raise JobSpecError(f"param {key!r} must be >= {minimum}")
    return value


class JobRunner:
    """Executes jobs on worker threads against shared service caches."""

    def __init__(self, sessions, metrics, spool: Optional[str] = None,
                 drain_event: Optional[threading.Event] = None,
                 chaos: bool = False, record_runs: bool = True,
                 goldens_dir: str = "goldens", lanes: int = 1,
                 results=None):
        self.sessions = sessions
        self.metrics = metrics
        self.spool = spool
        self.drain_event = drain_event
        self.chaos = chaos
        self.record_runs = record_runs
        self.goldens_dir = goldens_dir
        self.lanes = max(1, lanes)
        self.results = results

    def _jobs_for(self, spec: JobSpec) -> int:
        """Fair-share worker count: ``lanes`` concurrent jobs split the
        machine; worker count never changes results, so capping is safe."""
        from repro.parallel import fair_share_jobs

        return fair_share_jobs(spec.jobs, self.lanes)

    # -- budgets -------------------------------------------------------
    def _budget(self, spec: JobSpec):
        from repro.resilience import CancellableBudget

        timeout = spec.timeout_s if spec.timeout_s is not None else 3600.0
        return CancellableBudget.after(timeout, self.drain_event,
                                       reason="cancelled by server drain")

    def _interrupt_reason(self, exc) -> str:
        if self.drain_event is not None and self.drain_event.is_set():
            return "interrupted"
        return "budget" if getattr(exc, "reason", "") == "budget" \
            else "interrupted"

    # -- top-level execution ------------------------------------------
    def execute(self, job: Job) -> None:
        from repro import telemetry
        from repro.checkpoint import CheckpointError, RunInterrupted
        from repro.resilience import BudgetExpiredError

        spec = job.spec
        job.t_start = time.time()
        job.set_state("running")
        job.add_event("started", analysis=spec.analysis)
        meta = {"command": f"serve.{spec.analysis}", "job": job.id,
                "tech": spec.tech, "seed": spec.seed,
                "jobs": spec.jobs, "backend": spec.backend}
        outcome, result, error = "error", None, None
        with telemetry.session(meta=meta) as tsession:
            budget = self._budget(spec)
            try:
                with telemetry.span(f"serve.job.{spec.analysis}",
                                    job=job.id):
                    result, outcome = self._dispatch(job, budget)
            except JobSpecError as exc:
                outcome, error = "refused", str(exc)
            except BudgetExpiredError as exc:
                outcome, error = ("interrupted" if self.drain_event
                                  is not None and self.drain_event.is_set()
                                  else "budget"), str(exc)
            except RunInterrupted as exc:
                outcome = self._interrupt_reason(exc)
                error = str(exc)
                result = self._partial_envelope(job, exc)
            except CheckpointError as exc:
                outcome, error = "refused", str(exc)
            except Exception as exc:  # noqa: BLE001 — jobs never kill workers
                outcome, error = "error", f"{type(exc).__name__}: {exc}"
            snapshot = tsession.metrics.snapshot()
        self._account(job, outcome, snapshot)
        self._finalize(job, outcome, result, error)

    def _account(self, job: Job, outcome: str, snapshot: dict) -> None:
        from repro.obs.runlog import capability_flags, record_run
        from repro.telemetry import SERVE_LATENCY_BUCKETS_S

        self.metrics.merge(snapshot)
        self.metrics.inc(f"serve.jobs.{outcome}")
        self.metrics.observe("serve.job.seconds",
                             time.time() - (job.t_start or time.time()),
                             SERVE_LATENCY_BUCKETS_S)
        if self.record_runs:
            record_run(f"serve.{job.spec.analysis}", job.spec.to_config(),
                       outcome=outcome,
                       exit_code=OUTCOME_EXIT_CODES.get(outcome, 1),
                       seed=job.spec.seed, capabilities=capability_flags(),
                       metrics=snapshot, t_start=job.t_start,
                       extra={"job_id": job.id,
                              "cache_key": job.cache_key})

    def _finalize(self, job: Job, outcome: str, result, error) -> None:
        from repro.serve.cache import canonical_json
        from repro.serve.jobspec import UNCACHED_ANALYSES

        if outcome in ("ok", "degraded"):
            text = canonical_json(result)
            if self.results is not None \
                    and job.spec.analysis not in UNCACHED_ANALYSES:
                # Publish before the job turns terminal: a client that
                # polls "done" and instantly resubmits must hit.
                self.results.put(job.cache_key, text)
            job.finish("done", outcome, result=result, result_text=text)
        elif outcome in ("budget", "interrupted"):
            text = canonical_json(result) if result is not None else None
            job.finish("done", outcome, result=result, result_text=text,
                       error=error)
        else:  # refused | error
            job.finish("failed", outcome, error=error)

    def _partial_envelope(self, job: Job, exc) -> Optional[dict]:
        """Partial-result envelope for an interrupted/budgeted run."""
        partial = getattr(exc, "partial_result", None)
        if exc.checkpoint_path is not None:
            job.checkpoint_dir = str(exc.checkpoint_path)
        if partial is None:
            return None
        if hasattr(partial, "yield_fraction"):
            return self._mc_envelope(job.spec, partial, partial=True)
        if hasattr(partial, "failure_probability"):
            return self._highsigma_envelope(job.spec, partial, partial=True)
        return None

    # -- dispatch ------------------------------------------------------
    def _dispatch(self, job: Job, budget) -> Tuple[dict, str]:
        method = getattr(self, f"_run_{job.spec.analysis}")
        return method(job, budget)

    def _tech(self, spec: JobSpec):
        if spec.tech is None:
            return None  # op on a linear netlist needs no node
        from repro.technology import get_node

        return get_node(spec.tech)

    # -- fixtures through the session cache ---------------------------
    @contextmanager
    def _lease(self, job: Job, shared: bool = False):
        """Lease the compiled fixture for a job's topology.

        Monte-Carlo and high-sigma treat the fixture as a read-only
        template (every chunk clones it) and take a ``shared`` lease
        held for the whole run, so same-topology read-only jobs overlap
        freely.  Callers that mutate in place (op's warm start, corners'
        serial PVT sweep) take the default exclusive lease, which the
        shared holders exclude — a concurrent mutator can never skew
        the parameters an MC chunk clones from.
        """
        from repro.circuit.parser import parse_netlist
        from repro.circuits.references import CircuitFixture
        from repro.obs.runlog import content_hash

        spec = job.spec
        tech = self._tech(spec)
        if spec.netlist is not None:
            key = (spec.netlist_hash, spec.tech)

            def build():
                circuit = parse_netlist(spec.netlist, tech)
                return CircuitFixture(circuit=circuit)
        else:
            default_workload = ("sram" if spec.analysis == "highsigma"
                                else "offset")
            workload = _param(spec.params, "workload", str,
                              default_workload)
            knobs = {k: spec.params.get(k)
                     for k in ("w_um", "l_um", "cell_ratio", "n_stages")
                     if k in spec.params}
            key = (f"builtin:{spec.analysis}:{workload}:"
                   + content_hash(knobs), spec.tech)

            def build():
                return self._builtin_fixture(spec, tech, workload)
        with self.sessions.lease(key, build, shared=shared) \
                as (fixture, reused):
            job.session_reused = reused
            yield fixture, reused

    def _builtin_fixture(self, spec: JobSpec, tech, workload: str):
        from repro import units
        from repro.circuits import (
            differential_pair,
            ring_oscillator,
            sram_cell,
        )

        if workload == "offset":
            w_um = _param(spec.params, "w_um", float, 4.0, minimum=0.01)
            l_um = _param(spec.params, "l_um", float, 0.4, minimum=0.01)
            return differential_pair(tech, w_m=w_um * units.MICRO,
                                     l_m=l_um * units.MICRO)
        if workload == "ring":
            n_stages = _param(spec.params, "n_stages", int, 3, minimum=3)
            return ring_oscillator(tech, n_stages=n_stages)
        if workload == "sram":
            ratio = _param(spec.params, "cell_ratio", float, 2.0,
                           minimum=0.1)
            return sram_cell(tech, cell_ratio=ratio)
        raise JobSpecError(f"unknown workload {workload!r} "
                           "(expected offset, ring, or sram)")

    # -- mc specs ------------------------------------------------------
    def _mc_specs(self, job: Job, tech, fixture):
        """The spec list for an mc/corners job, fault-wrapped if asked."""
        from repro import units
        from repro.core import Specification

        spec = job.spec
        params = spec.params
        if spec.netlist is not None:
            node = _param(params, "node", str)
            if not node:
                raise JobSpecError(
                    "netlist mc/corners needs params.node to measure")
            if node not in fixture.circuit.node_names:
                raise JobSpecError(f"node {node!r} not in netlist "
                                   f"(nodes: "
                                   f"{sorted(fixture.circuit.node_names)})")
            lower = _param(params, "lower", float)
            upper = _param(params, "upper", float)
            if lower is None and upper is None:
                raise JobSpecError(
                    "netlist mc/corners needs params.lower and/or "
                    "params.upper bounds")
            extractor = NodeVoltageExtractor(node)
            metric = Specification(f"v({node})", extractor,
                                   lower=lower, upper=upper)
        else:
            workload = _param(params, "workload", str, "offset")
            if workload != "offset":
                raise JobSpecError(
                    f"workload {workload!r} has no mc/corners spec here; "
                    "use the offset workload or send a netlist")
            from repro.cli import _offset_extractor

            limit_mv = _param(params, "limit_mv", float, 5.0, minimum=0.01)
            limit_v = limit_mv * units.MILLI
            extractor = _offset_extractor
            metric = Specification("offset", extractor,
                                   lower=-limit_v, upper=limit_v)
        fault = params.get("fault")
        if fault is not None:
            if not self.chaos:
                raise JobSpecError(
                    "fault injection requires the server's --chaos flag")
            if spec.backend == "process":
                raise JobSpecError(
                    "fault injection wraps are not picklable; use the "
                    "serial or thread backend")
            if not isinstance(fault, dict) \
                    or not isinstance(fault.get("kill_on"), list):
                raise JobSpecError(
                    "param fault must be {'kill_on': [sample indices]}")
            from dataclasses import replace

            from repro.faultinject import killing_extractor

            metric = replace(metric, extractor=killing_extractor(
                metric.extractor, kill_on=fault["kill_on"]))
        return [metric]

    # -- analyses ------------------------------------------------------
    def _run_op(self, job: Job, budget) -> Tuple[dict, str]:
        from repro.circuit.dc import dc_operating_point, warm_start

        budget.check("serve.op")
        with self._lease(job) as (fixture, _reused):
            circuit = fixture.circuit
            with warm_start(circuit):
                solution = dc_operating_point(circuit)
            nodes = {name: solution.voltage(name)
                     for name in sorted(circuit.node_names)}
        envelope = {"analysis": "op", "nodes": nodes,
                    "netlist_hash": job.spec.netlist_hash}
        return envelope, "ok"

    def _run_mc(self, job: Job, budget) -> Tuple[dict, str]:
        from repro.core import MonteCarloYield

        spec = job.spec
        tech = self._tech(spec)
        samples = _param(spec.params, "samples", int, 64, minimum=1)
        if samples > 65536:
            raise JobSpecError("param 'samples' capped at 65536 per job")
        chunk_kwargs = {}
        chunk_size = _param(spec.params, "chunk_size", int, minimum=1)
        if chunk_size is not None:
            chunk_kwargs["chunk_size"] = chunk_size
        checkpoint = self._checkpoint_dir(job)
        with self._lease(job, shared=True) as (fixture, _reused):
            specs = self._mc_specs(job, tech, fixture)
            engine = MonteCarloYield(fixture, specs, tech)
            result = engine.run(
                samples, seed=spec.seed, jobs=self._jobs_for(spec),
                backend=spec.backend, batch_size=spec.batch_size,
                checkpoint=checkpoint, progress=job.heartbeat,
                budget=budget, **chunk_kwargs)
        envelope = self._mc_envelope(spec, result)
        if result.n_evaluated < result.n_samples:
            return envelope, "budget"
        return envelope, "degraded" if result.is_degraded else "ok"

    def _mc_envelope(self, spec: JobSpec, result,
                     partial: bool = False) -> dict:
        from repro.obs.runlog import ledger_digest

        lo, hi = result.confidence_interval()
        metrics = {}
        for name in sorted(result.values):
            stats = {}
            for stat in ("mean", "sigma"):
                try:
                    stats[stat] = float(getattr(result, stat)(name))
                except ValueError:
                    stats[stat] = None
            metrics[name] = stats
        return {
            "analysis": "mc",
            "n_samples": int(result.n_samples),
            "n_evaluated": int(result.n_evaluated),
            "yield_fraction": float(result.yield_fraction),
            "ci95": [float(lo), float(hi)],
            "metrics": metrics,
            "failure_counts": {k: int(v) for k, v in sorted(
                result.failure_counts.items())},
            "ledger": ledger_digest(result.ledger),
            "degraded": bool(result.is_degraded),
            "partial": bool(partial
                            or result.n_evaluated < result.n_samples),
        }

    def _run_corners(self, job: Job, budget) -> Tuple[dict, str]:
        from repro.core import CornerAnalysis

        spec = job.spec
        tech = self._tech(spec)
        budget.check("serve.corners")
        vdd_source = _param(spec.params, "vdd_source", str, "vdd")
        with self._lease(job) as (fixture, _reused):
            specs = self._mc_specs(job, tech, fixture)
            try:
                analysis = CornerAnalysis(fixture, specs, tech,
                                          vdd_source_name=vdd_source)
            except (KeyError, TypeError) as exc:
                raise JobSpecError(
                    f"corners needs a vdd voltage source "
                    f"(param vdd_source): {exc}") from exc
            result = analysis.run(jobs=self._jobs_for(spec),
                                  backend=spec.backend)
        budget.check("serve.corners")
        values = {name: dict(sorted(per.items()))
                  for name, per in sorted(result.values.items())}
        worst = {}
        for metric in specs:
            label, value = result.worst_case(metric)
            worst[metric.name] = {"point": label, "value": value,
                                  "passes": result.all_pass(metric)}
        envelope = {
            "analysis": "corners",
            "n_points": len(result.points),
            "values": values,
            "worst_case": worst,
            "degraded": result.is_degraded,
        }
        return envelope, "degraded" if result.is_degraded else "ok"

    def _run_aging(self, job: Job, budget) -> Tuple[dict, str]:
        from repro import units
        from repro.aging import (
            ElectromigrationModel,
            HciModel,
            NbtiModel,
            TddbModel,
        )
        from repro.circuit import Mosfet

        spec = job.spec
        tech = self._tech(spec)
        budget.check("serve.aging")
        years = _param(spec.params, "years", float, 10.0, minimum=0.001)
        temp_c = _param(spec.params, "temp_c", float, 105.0)
        hot = units.celsius_to_kelvin(temp_c)
        lifetime = units.years_to_seconds(years)
        device = Mosfet.from_technology(
            "m", "d", "g", "s", "b", tech, "n",
            w_m=max(1e-6, 4 * tech.wmin_m), l_m=tech.lmin_m)
        nbti = NbtiModel(tech.aging)
        hci = HciModel(tech.aging)
        tddb = TddbModel(tech.aging)
        em = ElectromigrationModel(tech.aging)
        envelope = {
            "analysis": "aging",
            "years": years,
            "temp_c": temp_c,
            "nbti_dvt_v": nbti.delta_vt_v(
                tech.nominal_oxide_field(), hot, lifetime),
            "hci_dvt_v": hci.delta_vt_v(
                device, tech.vdd / 2, tech.vdd, hot, lifetime),
            "tddb_eta_years": units.seconds_to_years(
                tddb.characteristic_life_s(tech.nominal_oxide_field(),
                                           1.0)),
            "em_mttf_years": units.seconds_to_years(
                em.black_mttf_s(tech.interconnect.j_max_a_per_m2, hot)),
        }
        return envelope, "ok"

    def _run_highsigma(self, job: Job, budget) -> Tuple[dict, str]:
        import functools

        from repro import units
        from repro.core import HighSigmaYield, Specification

        spec = job.spec
        tech = self._tech(spec)
        params = spec.params
        samples = _param(params, "samples", int, 256, minimum=16)
        if samples > 65536:
            raise JobSpecError("param 'samples' capped at 65536 per job")
        snm_min_mv = _param(params, "snm_min_mv", float, 80.0)
        snm_points = _param(params, "snm_points", int, 21, minimum=5)
        shift_sigma = _param(params, "shift_sigma", float, minimum=0.0)
        surrogate = _param(params, "surrogate", str, "off")
        if surrogate not in ("off", "poly", "rbf"):
            raise JobSpecError(
                "param surrogate must be off, poly, or rbf")
        if job.spec.netlist is not None:
            raise JobSpecError(
                "highsigma serves the built-in SRAM read-SNM workload; "
                "netlist-defined tail metrics are not supported yet")
        extractor = functools.partial(_sram_snm_extractor,
                                      n_points=snm_points)
        metric = Specification("read_snm", extractor,
                               lower=snm_min_mv * units.MILLI)
        checkpoint = self._checkpoint_dir(job)
        with self._lease(job, shared=True) as (fixture, _reused):
            engine = HighSigmaYield(fixture, metric, tech)
            result = engine.run(
                samples, shift_sigma=shift_sigma, seed=spec.seed,
                jobs=self._jobs_for(spec), backend=spec.backend,
                batch_size=spec.batch_size, surrogate=surrogate,
                checkpoint=checkpoint, progress=job.heartbeat,
                budget=budget)
        envelope = self._highsigma_envelope(spec, result)
        if result.n_evaluated < samples:
            return envelope, "budget"
        return envelope, "degraded" if result.is_degraded else "ok"

    def _highsigma_envelope(self, spec: JobSpec, result,
                            partial: bool = False) -> dict:
        return {
            "analysis": "highsigma",
            "n_samples": int(result.n_samples),
            "n_evaluated": int(result.n_evaluated),
            "failure_probability": float(result.failure_probability),
            "standard_error": float(result.standard_error),
            "sigma_level": float(result.sigma_level),
            "full_solver_calls": int(result.full_solver_calls),
            "degraded": bool(result.is_degraded),
            "partial": bool(partial),
        }

    def _run_verify(self, job: Job, budget) -> Tuple[dict, str]:
        from repro.verify import diff_goldens, load_goldens, run_experiments

        spec = job.spec
        ids = spec.params.get("ids")
        if ids is not None and (not isinstance(ids, list) or
                                not all(isinstance(i, str) for i in ids)):
            raise JobSpecError("param ids must be a list of experiment ids")
        include_slow = _param(spec.params, "include_slow", bool, False)
        goldens_dir = _param(spec.params, "goldens", str, self.goldens_dir)
        budget.check("serve.verify")
        try:
            results = run_experiments(include_slow=bool(include_slow),
                                      ids=ids)
        except KeyError as exc:
            raise JobSpecError(str(exc)) from exc
        budget.check("serve.verify")
        try:
            goldens = load_goldens(goldens_dir)
        except (OSError, ValueError) as exc:
            raise JobSpecError(
                f"cannot load goldens from {goldens_dir!r}: {exc}") from exc
        drifts = diff_goldens(results, goldens)
        envelope = {
            "analysis": "verify",
            "experiments": sorted(results),
            "drifts": [{"kind": d.kind, "experiment": d.experiment,
                        "quantity": d.quantity}
                       for d in drifts],
            "passed": not drifts,
        }
        return envelope, "ok" if not drifts else "degraded"

    # -- helpers -------------------------------------------------------
    def _checkpoint_dir(self, job: Job) -> Optional[str]:
        if not job.spec.checkpoint:
            return None
        if not self.spool:
            raise JobSpecError(
                "checkpoint:true needs the server started with --spool")
        import os

        path = os.path.join(self.spool, job.id)
        job.checkpoint_dir = path
        return path
