"""Job specifications for the analysis service.

A job spec is the JSON body of ``POST /jobs``: which analysis to run
(``op``/``mc``/``corners``/``aging``/``highsigma``/``verify``), on what
(a netlist and/or analysis parameters), and how (seed, worker count,
backend, batch size, timeout, priority).  Parsing is strict — unknown
keys are rejected so a typo'd ``smaples`` refuses loudly instead of
silently running the default sample count.

The module also owns the two hashes the service lives on:

* :func:`canonical_netlist_hash` — a parse-based canonical form of a
  netlist (whitespace, comments, card order, the title line, and
  engineering-suffix spelling are all normalised away; every node name,
  element parameter and topology detail survives at full ``repr``
  precision).  Two netlists hash identically iff they describe the same
  circuit.
* :func:`cache_key` — the content address of a request's *result*,
  built on :func:`repro.obs.runlog.content_hash` over (analysis,
  canonical netlist hash, tech, params, seed, batch size, capability
  flags).  Execution knobs that are proven not to change results —
  ``jobs``, ``backend``, ``priority``, ``timeout_s`` — are deliberately
  excluded: the engines are bit-identical across worker counts and
  backends (the PR 1 determinism contract), so a thread-backend replay
  of a process-backend request is a legitimate cache hit.  ``batch_size``
  and the capability flags stay in the key because they select between
  accelerated paths whose results are only equal to tolerance, not to
  the bit (see ``_accel_manifest`` in the yield engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    DcSpec,
    Diode,
    Inductor,
    PulseSpec,
    PwlSpec,
    Resistor,
    SineSpec,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuit.mosfet import Mosfet
from repro.circuit.netlist import Circuit
from repro.circuit.parser import NetlistError, parse_netlist
from repro.obs.runlog import content_hash

__all__ = [
    "ANALYSES",
    "BACKENDS",
    "PRIORITIES",
    "SPEC_SCHEMA",
    "UNCACHED_ANALYSES",
    "JobSpec",
    "JobSpecError",
    "cache_key",
    "canonical_cards",
    "canonical_netlist",
    "canonical_netlist_hash",
    "parse_job_spec",
]

#: Bump when the job-spec layout or result envelopes change shape; part
#: of every cache key so stale cache entries can never be replayed into
#: a newer protocol.
SPEC_SCHEMA = 1

ANALYSES = ("op", "mc", "corners", "aging", "highsigma", "verify")
BACKENDS = ("auto", "serial", "thread", "process")
PRIORITIES = ("high", "normal", "low")

#: Hex digits kept from the canonical netlist hash.
NETLIST_HASH_LENGTH = 16

#: Hex digits kept from the result cache key (longer than run ids: a
#: cache collision silently serves a wrong answer, so spend the bits).
CACHE_KEY_LENGTH = 24

#: Analyses whose results depend on mutable filesystem state the cache
#: key cannot see (verify reads the goldens directory and the live
#: experiment registry): never served from, or published to, the
#: result cache — a cached verdict would outlive a goldens edit.
UNCACHED_ANALYSES = ("verify",)

_TOP_LEVEL_KEYS = {
    "analysis", "tech", "netlist", "params", "seed", "jobs", "backend",
    "batch_size", "timeout_s", "priority", "client", "checkpoint",
}


class JobSpecError(ValueError):
    """A job spec is malformed; maps to HTTP 400 / outcome ``refused``."""


@dataclass(frozen=True)
class JobSpec:
    """A validated analysis request (see :func:`parse_job_spec`)."""

    analysis: str
    tech: Optional[str] = None
    netlist: Optional[str] = None
    netlist_hash: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    jobs: int = 1
    backend: str = "auto"
    batch_size: Optional[int] = None
    timeout_s: Optional[float] = None
    priority: str = "normal"
    client: str = "anon"
    checkpoint: bool = False

    def to_config(self) -> dict:
        """The run-record ``config`` payload (netlist text elided)."""
        return {
            "analysis": self.analysis,
            "tech": self.tech,
            "netlist_hash": self.netlist_hash,
            "params": dict(self.params),
            "jobs": self.jobs,
            "backend": self.backend,
            "batch_size": self.batch_size,
            "priority": self.priority,
        }


# ----------------------------------------------------------------------
# Canonical netlist hashing
# ----------------------------------------------------------------------

def _f(value: float) -> str:
    """Full-precision float text.

    ``repr`` round-trips every IEEE double, unlike the writer's ``%g``
    (6 significant digits) — two parameter values that differ in the
    7th digit must land in different cache entries.
    """
    return repr(float(value))


def canonical_cards(circuit: Circuit) -> List[str]:
    """One normalised text card per element, sorted.

    Element names are lowercased (SPICE reads netlists case-insensitively
    for element cards); node names keep their case (the parser treats
    ``OUT`` and ``out`` as distinct nodes).  The title is excluded — it
    is documentation, not electricity.
    """
    cards: List[str] = []
    for element in circuit.elements:
        name = element.name.lower()
        nodes = list(element.node_names)
        if isinstance(element, Resistor):
            parts = ["r", name, *nodes, _f(element.resistance)]
        elif isinstance(element, Capacitor):
            parts = ["c", name, *nodes, _f(element.capacitance),
                     "ic=" + (_f(element.v_initial)
                              if element.v_initial is not None else "none")]
        elif isinstance(element, Inductor):
            parts = ["l", name, *nodes, _f(element.inductance)]
        elif isinstance(element, (VoltageSource, CurrentSource)):
            kind = "v" if isinstance(element, VoltageSource) else "i"
            parts = [kind, name, *nodes, _canonical_spec(element.spec),
                     "ac=" + _f(element.ac_mag or 0.0)]
        elif isinstance(element, Diode):
            parts = ["d", name, *nodes, "is=" + _f(element.i_sat),
                     "n=" + _f(element.ideality)]
        elif isinstance(element, Vccs):
            parts = ["g", name, *nodes, _f(element.gm)]
        elif isinstance(element, Vcvs):
            parts = ["e", name, *nodes, _f(element.gain)]
        elif isinstance(element, Mosfet):
            p = element.params
            parts = ["m", name, *nodes, p.polarity,
                     "w=" + _f(p.w_m), "l=" + _f(p.l_m)]
        else:
            raise JobSpecError(
                f"cannot canonicalise element {type(element).__name__}")
        cards.append(" ".join(parts))
    cards.sort()
    return cards


def _canonical_spec(spec) -> str:
    if isinstance(spec, DcSpec):
        return "dc " + _f(spec.level)
    if isinstance(spec, SineSpec):
        return " ".join(["sin", _f(spec.offset), _f(spec.amplitude),
                         _f(spec.frequency_hz), _f(spec.delay_s),
                         _f(spec.phase_rad)])
    if isinstance(spec, PulseSpec):
        return " ".join(["pulse", _f(spec.v1), _f(spec.v2),
                         _f(spec.delay_s), _f(spec.rise_s), _f(spec.fall_s),
                         _f(spec.width_s), _f(spec.period_s)])
    if isinstance(spec, PwlSpec):
        flat = " ".join(_f(t) + " " + _f(v) for t, v in spec.points)
        return "pwl " + flat
    raise JobSpecError(
        f"cannot canonicalise source spec {type(spec).__name__}")


def canonical_netlist(text: str, tech=None) -> str:
    """The canonical text form of a netlist (sorted cards, one per line)."""
    try:
        circuit = parse_netlist(text, tech)
    except (NetlistError, ValueError, KeyError) as exc:
        raise JobSpecError(f"netlist does not parse: {exc}") from exc
    return "\n".join(canonical_cards(circuit))


def canonical_netlist_hash(text: str, tech=None,
                           length: int = NETLIST_HASH_LENGTH) -> str:
    """Content address of the circuit a netlist describes.

    Invariant under whitespace, comments, card order, the title line
    and number spelling (``10k`` vs ``10000``); sensitive to any node,
    parameter, or element change at full float precision.  MOSFET cards
    need ``tech`` to parse, same as :func:`parse_netlist`.
    """
    return content_hash(canonical_netlist(text, tech).split("\n"),
                        length=length)


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobSpecError(message)


def parse_job_spec(payload: Any) -> JobSpec:
    """Validate a decoded JSON body into a :class:`JobSpec`.

    Raises :class:`JobSpecError` on anything malformed; the server maps
    that to HTTP 400 with outcome ``refused``.
    """
    _require(isinstance(payload, dict), "job spec must be a JSON object")
    unknown = sorted(set(payload) - _TOP_LEVEL_KEYS)
    _require(not unknown, f"unknown job spec keys: {', '.join(unknown)}")

    analysis = payload.get("analysis")
    _require(isinstance(analysis, str) and analysis in ANALYSES,
             f"analysis must be one of {', '.join(ANALYSES)}")

    tech = payload.get("tech")
    _require(tech is None or isinstance(tech, str),
             "tech must be a string technology-node name")
    tech_node = None
    if tech is not None:
        from repro.technology import get_node

        try:
            tech_node = get_node(tech)
        except (KeyError, ValueError) as exc:
            raise JobSpecError(f"unknown technology node {tech!r}") from exc

    netlist = payload.get("netlist")
    _require(netlist is None or isinstance(netlist, str),
             "netlist must be a string")
    netlist_hash = None
    if netlist is not None:
        netlist_hash = canonical_netlist_hash(netlist, tech_node)

    params = payload.get("params", {})
    _require(isinstance(params, dict), "params must be a JSON object")
    _require(all(isinstance(k, str) for k in params),
             "params keys must be strings")

    seed = payload.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool)
             and seed >= 0, "seed must be a non-negative integer")

    jobs = payload.get("jobs", 1)
    _require(isinstance(jobs, int) and not isinstance(jobs, bool)
             and 1 <= jobs <= 64, "jobs must be an integer in [1, 64]")

    backend = payload.get("backend", "auto")
    _require(isinstance(backend, str) and backend in BACKENDS,
             f"backend must be one of {', '.join(BACKENDS)}")

    batch_size = payload.get("batch_size")
    _require(batch_size is None or (isinstance(batch_size, int)
             and not isinstance(batch_size, bool) and batch_size >= 1),
             "batch_size must be a positive integer")

    timeout_s = payload.get("timeout_s")
    _require(timeout_s is None or (isinstance(timeout_s, (int, float))
             and not isinstance(timeout_s, bool) and timeout_s > 0),
             "timeout_s must be a positive number")

    priority = payload.get("priority", "normal")
    _require(isinstance(priority, str) and priority in PRIORITIES,
             f"priority must be one of {', '.join(PRIORITIES)}")

    client = payload.get("client", "anon")
    _require(isinstance(client, str) and 0 < len(client) <= 128,
             "client must be a short non-empty string")

    checkpoint = payload.get("checkpoint", False)
    _require(isinstance(checkpoint, bool), "checkpoint must be a boolean")

    if analysis == "op":
        # tech stays optional: linear netlists parse without a node,
        # and MOSFET cards fail the parse above with a clear refusal.
        _require(netlist is not None, "op analysis requires a netlist")
    if analysis in ("mc", "corners", "highsigma", "aging"):
        _require(tech is not None,
                 f"{analysis} analysis requires a tech node")

    return JobSpec(
        analysis=analysis, tech=tech, netlist=netlist,
        netlist_hash=netlist_hash, params=dict(params), seed=seed,
        jobs=jobs, backend=backend, batch_size=batch_size,
        timeout_s=float(timeout_s) if timeout_s is not None else None,
        priority=priority, client=client, checkpoint=checkpoint)


def cache_key(spec: JobSpec, capabilities: Optional[dict] = None) -> str:
    """Content address of the request's *result* (see module docstring).

    Same key ⇒ the engines' determinism contract guarantees the same
    bits; different params/seed/netlist/tech/batch/capabilities ⇒
    different key.
    """
    payload = {
        "schema": SPEC_SCHEMA,
        "analysis": spec.analysis,
        "tech": spec.tech,
        "netlist": spec.netlist_hash,
        "params": spec.params,
        "seed": spec.seed,
        "batch_size": spec.batch_size,
        "capabilities": dict(capabilities or {}),
    }
    return content_hash(payload, length=CACHE_KEY_LENGTH)
