"""Priority/fairness job queue with bounded depth and backpressure.

Ordering is a three-part rank: ``(priority, fairness, arrival)``.

* *priority* — the request's ``high``/``normal``/``low`` class.
* *fairness* — how many jobs the same client already had queued at
  submit time.  A client dumping 50 requests interleaves with, rather
  than starves, a client submitting one: the 50th request ranks behind
  every other client's first even within the same priority class.
* *arrival* — a monotone sequence number breaking all remaining ties,
  so ordering is total and deterministic.

The queue is bounded; a submit beyond ``maxsize`` raises
:class:`Backpressure`, which the HTTP layer maps to ``429`` with a
``Retry-After`` estimated from the live drain rate.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Backpressure", "JobQueue", "PRIORITY_RANK"]

PRIORITY_RANK = {"high": 0, "normal": 1, "low": 2}


class Backpressure(RuntimeError):
    """The queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"queue full ({depth} jobs waiting); "
            f"retry in {retry_after_s:.0f} s")
        self.depth = depth
        self.retry_after_s = retry_after_s


class JobQueue:
    """Bounded, fair, priority-ordered queue of jobs."""

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("queue maxsize must be at least 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._heap: List[Tuple[Tuple[int, int, int], Any]] = []
        self._seq = 0
        self._queued_per_client: Dict[str, int] = {}
        self._drain_times: List[float] = []  # recent inter-get gaps
        self._last_get: Optional[float] = None
        self._closed = False

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    def put(self, job, priority: str = "normal",
            client: str = "anon") -> Tuple[int, int, int]:
        """Enqueue; returns the rank tuple (exposed in job status)."""
        rank_p = PRIORITY_RANK.get(priority, PRIORITY_RANK["normal"])
        with self._lock:
            if self._closed:
                raise Backpressure(len(self._heap), 1.0)
            if len(self._heap) >= self.maxsize:
                raise Backpressure(len(self._heap), self._retry_after())
            fairness = self._queued_per_client.get(client, 0)
            rank = (rank_p, fairness, self._seq)
            self._seq += 1
            self._queued_per_client[client] = fairness + 1
            heapq.heappush(self._heap, (rank, client, job))
            self._not_empty.notify()
        return rank

    def get(self, timeout: Optional[float] = None):
        """Next job by rank, or ``None`` on timeout / closed-and-empty."""
        with self._lock:
            deadline = (time.monotonic() + timeout
                        if timeout is not None else None)
            while not self._heap:
                if self._closed:
                    return None
                if deadline is None:
                    self._not_empty.wait()
                else:
                    left = deadline - time.monotonic()
                    if left <= 0 or not self._not_empty.wait(left):
                        if not self._heap:
                            return None
            _rank, client, job = heapq.heappop(self._heap)
            count = self._queued_per_client.get(client, 1) - 1
            if count > 0:
                self._queued_per_client[client] = count
            else:
                self._queued_per_client.pop(client, None)
            now = time.monotonic()
            if self._last_get is not None:
                self._drain_times.append(now - self._last_get)
                del self._drain_times[:-16]
            self._last_get = now
            return job

    def drain_pending(self) -> List[Any]:
        """Remove and return every queued job (drain: cancel them)."""
        with self._lock:
            jobs = [job for _rank, _client, job in self._heap]
            self._heap.clear()
            self._queued_per_client.clear()
            self._not_empty.notify_all()
        return jobs

    def close(self) -> None:
        """Stop accepting; wake every waiting consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def _retry_after(self) -> float:
        """Estimated seconds until a slot frees (lock held)."""
        if not self._drain_times:
            return 5.0
        per_job = sum(self._drain_times) / len(self._drain_times)
        return max(1.0, min(120.0, per_job * (len(self._heap) / 2 + 1)))
