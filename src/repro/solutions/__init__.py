"""Design-level countermeasures (paper §5).

* §5.1 post-fabrication calibration: :class:`CurrentSteeringDac` +
  :func:`sspa_sequence` / :func:`calibrate` / :func:`area_tradeoff`;
* §5.2 knobs & monitors: :class:`Monitor`, :class:`Knob`,
  :class:`SpecTarget`, :class:`ControlAlgorithm`, :class:`AdaptiveSystem`.
"""

from repro.solutions.calibration import (
    AreaTradeoff,
    age_dac_sources,
    CalibrationResult,
    area_tradeoff,
    calibrate,
    inl_yield,
    max_sigma_for_yield,
    measure_unary_errors,
    sspa_sequence,
    sspa_sequence_paired,
)
from repro.solutions.dac import (
    CurrentSteeringDac,
    sfdr_db,
    DacConfig,
    DacDesign,
    intrinsic_sigma_for_inl,
)
from repro.solutions.knob_library import (
    aging_sensor_monitor,
    bias_current_knob,
    body_bias_knob,
    dc_monitor,
    frequency_monitor,
    source_current_monitor,
    supply_knob,
)
from repro.solutions.knobs_monitors import (
    AdaptiveSystem,
    ControlAlgorithm,
    Knob,
    Monitor,
    RegulationRecord,
    SpecTarget,
)

__all__ = [
    "AdaptiveSystem",
    "AreaTradeoff",
    "CalibrationResult",
    "ControlAlgorithm",
    "CurrentSteeringDac",
    "DacConfig",
    "DacDesign",
    "Knob",
    "Monitor",
    "RegulationRecord",
    "SpecTarget",
    "age_dac_sources",
    "aging_sensor_monitor",
    "area_tradeoff",
    "bias_current_knob",
    "body_bias_knob",
    "calibrate",
    "dc_monitor",
    "frequency_monitor",
    "inl_yield",
    "intrinsic_sigma_for_inl",
    "max_sigma_for_yield",
    "measure_unary_errors",
    "sfdr_db",
    "source_current_monitor",
    "sspa_sequence",
    "sspa_sequence_paired",
    "supply_knob",
]
