"""Switching-Sequence Post-Adjustment (SSPA) calibration (paper §5.1).

Chen & Gielen's technique (ref [9]): after fabrication, measure each
unary MSB current source with a simple on-chip **current comparator**
(the only extra analog block), then *dynamically rearrange the switching
sequence* of the unary sources so their random errors cancel
cumulatively.  Since INL at a code is the running sum of the switched
sources' errors, choosing at every step the unused source that pulls the
running sum back toward zero keeps |INL| within a fraction of an LSB —
without touching the sources themselves.

Because the correction happens *after* fabrication, the unit sources can
be sized far below intrinsic-accuracy requirements: the paper reports
the calibrated DAC needs only ~6 % of the intrinsic-accuracy area.
:func:`area_tradeoff` regenerates that comparison (experiment E9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.solutions.dac import (
    CurrentSteeringDac,
    DacConfig,
    DacDesign,
    intrinsic_sigma_for_inl,
)
from repro.technology.node import TechnologyNode
from repro.variability.pelgrom import PelgromModel


def measure_unary_errors(dac: CurrentSteeringDac,
                         comparator_sigma_rel: float = 0.0,
                         rng: Optional[np.random.Generator] = None
                         ) -> np.ndarray:
    """Emulate the on-chip current-comparator measurement.

    Returns each unary source's relative error, corrupted by the
    comparator's own resolution (``comparator_sigma_rel``, relative to a
    unary source current).  A perfect comparator returns the true errors.
    """
    if comparator_sigma_rel < 0.0:
        raise ValueError("comparator sigma must be non-negative")
    errors = dac.unary_errors.copy()
    if comparator_sigma_rel > 0.0:
        rng = rng if rng is not None else np.random.default_rng()
        errors = errors + rng.normal(0.0, comparator_sigma_rel, errors.size)
    return errors


def sspa_sequence(measured_errors: np.ndarray) -> np.ndarray:
    """Greedy line-tracking SSPA ordering.

    INL is endpoint-corrected, so the total error (which no permutation
    can change) is absorbed by the ideal line; what the sequence must
    minimize is the deviation of the RUNNING error sum from the straight
    line toward that total.  At each position the not-yet-used source
    whose error keeps the running sum closest to the line is switched
    on.  O(n²) — instant for the 2^u − 1 sources of any practical
    segmentation.
    """
    errors = np.asarray(measured_errors, dtype=float)
    n = errors.size
    if n == 0:
        raise ValueError("no sources to order")
    total = float(errors.sum())
    remaining = list(range(n))
    sequence = np.empty(n, dtype=int)
    running = 0.0
    for position in range(n):
        target = total * (position + 1) / n
        best_k = min(range(len(remaining)),
                     key=lambda k: abs(running + errors[remaining[k]] - target))
        chosen = remaining.pop(best_k)
        sequence[position] = chosen
        running += errors[chosen]
    return sequence


def sspa_sequence_paired(measured_errors: np.ndarray) -> np.ndarray:
    """SSPA ordering with one-step pair lookahead.

    Like :func:`sspa_sequence` but each choice also considers the best
    possible follow-up source, reducing the worst-case line deviation by
    a further ~30 %.  O(n³) — use for small unary segments or final
    sign-off; the plain greedy is the runtime-controller realistic one.
    """
    errors = np.asarray(measured_errors, dtype=float)
    n = errors.size
    if n == 0:
        raise ValueError("no sources to order")
    total = float(errors.sum())
    remaining = list(range(n))
    sequence = np.empty(n, dtype=int)
    running = 0.0
    position = 0
    while remaining:
        target1 = total * (position + 1) / n
        if len(remaining) == 1:
            chosen = remaining.pop()
            sequence[position] = chosen
            break
        target2 = total * (position + 2) / n
        best = None
        for a in remaining:
            dev1 = abs(running + errors[a] - target1)
            dev2 = min(abs(running + errors[a] + errors[b] - target2)
                       for b in remaining if b != a)
            worst = max(dev1, dev2)
            if best is None or worst < best[0]:
                best = (worst, a)
        chosen = best[1]
        remaining.remove(chosen)
        sequence[position] = chosen
        running += errors[chosen]
        position += 1
    return sequence


@dataclass(frozen=True)
class CalibrationResult:
    """Before/after record of one SSPA calibration."""

    sequence: np.ndarray
    inl_before_lsb: float
    inl_after_lsb: float
    dnl_before_lsb: float
    dnl_after_lsb: float

    @property
    def inl_improvement(self) -> float:
        """INL reduction factor (before / after)."""
        if self.inl_after_lsb <= 0.0:
            return math.inf
        return self.inl_before_lsb / self.inl_after_lsb


def calibrate(dac: CurrentSteeringDac,
              comparator_sigma_rel: float = 0.0,
              rng: Optional[np.random.Generator] = None,
              install: bool = True) -> CalibrationResult:
    """Run SSPA on one DAC instance and (optionally) install the sequence."""
    inl_before = dac.max_inl_lsb(np.arange(dac.config.n_unary_sources))
    dnl_before = dac.max_dnl_lsb(np.arange(dac.config.n_unary_sources))
    measured = measure_unary_errors(dac, comparator_sigma_rel, rng)
    sequence = sspa_sequence(measured)
    inl_after = dac.max_inl_lsb(sequence)
    dnl_after = dac.max_dnl_lsb(sequence)
    if install:
        dac.set_sequence(sequence)
    return CalibrationResult(sequence=sequence,
                             inl_before_lsb=inl_before,
                             inl_after_lsb=inl_after,
                             dnl_before_lsb=dnl_before,
                             dnl_after_lsb=dnl_after)


def inl_yield(config: DacConfig, unit_sigma_rel: float, n_samples: int,
              limit_lsb: float = 0.5, calibrated: bool = False,
              comparator_sigma_rel: float = 0.0, seed: int = 0) -> float:
    """Monte-Carlo yield of the INL < ``limit_lsb`` spec."""
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    rng = np.random.default_rng(seed)
    passes = 0
    for _ in range(n_samples):
        dac = CurrentSteeringDac(config, unit_sigma_rel, rng)
        if calibrated:
            calibrate(dac, comparator_sigma_rel, rng)
        if dac.meets_inl_spec(limit_lsb):
            passes += 1
    return passes / n_samples


def max_sigma_for_yield(config: DacConfig, yield_target: float,
                        n_samples: int = 200, limit_lsb: float = 0.5,
                        calibrated: bool = False,
                        comparator_sigma_rel: float = 0.0,
                        seed: int = 0) -> float:
    """Largest unit σ meeting the INL yield target (bisection search)."""
    if not 0.0 < yield_target < 1.0:
        raise ValueError("yield target must be in (0, 1)")

    def ok(sigma: float) -> bool:
        return inl_yield(config, sigma, n_samples, limit_lsb, calibrated,
                         comparator_sigma_rel, seed) >= yield_target

    lo = intrinsic_sigma_for_inl(config, limit_lsb) / 4.0
    if not ok(lo):
        raise ValueError("even a quarter of the analytic sigma fails — "
                         "check the configuration")
    hi = lo
    while ok(hi):
        hi *= 2.0
        if hi > 1.0:
            return 1.0  # spec met even with 100 % unit errors
    for _ in range(12):
        mid = math.sqrt(lo * hi)
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def age_dac_sources(dac: CurrentSteeringDac, nbti, eox_v_per_m: float,
                    temperature_k: float, t_stress_s: float,
                    duty_spread: float = 0.3,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Drift the unary sources by NBTI over ``t_stress_s`` (§5.1 × §3.3).

    The PMOS cascode current sources of a current-steering DAC sit under
    constant negative gate bias; each source's effective stress duty
    depends on its switching activity, which depends on the signal
    statistics — modelled as a per-source duty drawn from
    ``uniform(1−spread, 1)``.  The resulting fractional current losses
    ADD to the existing mismatch errors, skewing the calibrated
    switching sequence — the reason runtime recalibration (the §5
    message) beats one-shot factory trim.  Returns the applied deltas.
    """
    if not 0.0 <= duty_spread < 1.0:
        raise ValueError("duty spread must be in [0, 1)")
    rng = rng if rng is not None else np.random.default_rng()

    def drift(duty: float) -> float:
        # ΔI/I ≈ −gm/I·ΔV_T ≈ −(2/V_ov)·ΔV_T at V_ov = 0.25 V.
        return -(2.0 / 0.25) * nbti.delta_vt_v(
            eox_v_per_m, temperature_k, t_stress_s, duty=duty)

    n = dac.config.n_unary_sources
    duties = rng.uniform(1.0 - duty_spread, 1.0, n)
    deltas = np.array([drift(float(d)) for d in duties])
    dac.unary_errors = dac.unary_errors + deltas
    # The binary LSB segment is built from the same PMOS cells and ages
    # alongside; without this the unary/binary gain split would swamp
    # INL with an unphysical segment-mismatch error.
    binary_duties = rng.uniform(1.0 - duty_spread, 1.0,
                                dac.binary_errors.size)
    dac.binary_errors = dac.binary_errors + np.array(
        [drift(float(d)) for d in binary_duties])
    return deltas


@dataclass(frozen=True)
class AreaTradeoff:
    """Intrinsic-accuracy vs calibrated sizing comparison (E9)."""

    sigma_intrinsic: float
    sigma_calibrated: float
    area_intrinsic_mm2: float
    area_calibrated_mm2: float

    @property
    def area_ratio(self) -> float:
        """Calibrated area as a fraction of the intrinsic area."""
        return self.area_calibrated_mm2 / self.area_intrinsic_mm2


def area_tradeoff(config: DacConfig, tech: TechnologyNode,
                  yield_target: float = 0.99, n_samples: int = 150,
                  limit_lsb: float = 0.5, seed: int = 0) -> AreaTradeoff:
    """Regenerate the §5.1 area claim.

    Finds the largest tolerable unit σ with and without calibration,
    converts each to a unit-source area through the Pelgrom bridge
    (area ∝ 1/σ² at fixed overdrive), and compares total array areas.
    """
    sigma_int = max_sigma_for_yield(config, yield_target, n_samples,
                                    limit_lsb, calibrated=False, seed=seed)
    sigma_cal = max_sigma_for_yield(config, yield_target, n_samples,
                                    limit_lsb, calibrated=True, seed=seed)
    area_int = _area_for_sigma(config, tech, sigma_int)
    area_cal = _area_for_sigma(config, tech, sigma_cal)
    return AreaTradeoff(sigma_intrinsic=sigma_int, sigma_calibrated=sigma_cal,
                        area_intrinsic_mm2=area_int,
                        area_calibrated_mm2=area_cal)


def _area_for_sigma(config: DacConfig, tech: TechnologyNode,
                    sigma_rel: float) -> float:
    """Array area [mm²] whose unit source meets ``sigma_rel`` (bisection
    on the DacDesign Pelgrom bridge)."""
    if sigma_rel <= 0.0:
        raise ValueError("sigma must be positive")

    def meets(area_um2: float) -> bool:
        return DacDesign(tech, area_um2).unit_sigma_rel() <= sigma_rel

    hi_area = 1e-4
    while not meets(hi_area):
        hi_area *= 2.0
        if hi_area > 1e6:
            raise ValueError("unreachable sigma")
    lo_area = hi_area / 2.0
    while meets(lo_area):
        lo_area /= 2.0
        if lo_area < 1e-10:
            break
    for _ in range(60):
        mid = math.sqrt(lo_area * hi_area)
        if meets(mid):
            hi_area = mid
        else:
            lo_area = mid
    return DacDesign(tech, hi_area).analog_area_mm2(config)
