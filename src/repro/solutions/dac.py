"""Behavioural current-steering DAC with mismatch (paper §5.1, Fig 5).

The §5.1 case study is Chen & Gielen's 14-bit 200 MHz current-steering
DAC (ref [9]): a segmented architecture whose unary MSB current sources
carry Pelgrom-sampled random errors.  Static linearity (INL/DNL) is
fully determined by those errors and by the **switching sequence** — the
order in which unary sources turn on as the code increases — which is
exactly the degree of freedom the SSPA calibration of
:mod:`repro.solutions.calibration` exploits.

The model is behavioural (error-laden current summation) rather than a
transistor netlist: a 16k-code transistor-level DAC is neither needed
nor what the original calibration paper simulates — linearity is a pure
function of the source errors.  The Pelgrom bridge
(:meth:`DacDesign.unit_sigma_rel`) ties the unit-source error to unit
area through the technology's current-factor matching, which is what
makes the area trade-off (E9) quantitative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.technology.node import TechnologyNode
from repro.variability.pelgrom import PelgromModel


@dataclass(frozen=True)
class DacConfig:
    """Segmentation of a current-steering DAC."""

    n_bits: int = 14
    """Total resolution."""

    n_unary_bits: int = 6
    """MSB bits implemented as 2^n − 1 unary sources."""

    def __post_init__(self) -> None:
        if self.n_bits < 2:
            raise ValueError("need at least 2 bits")
        if not 1 <= self.n_unary_bits <= self.n_bits:
            raise ValueError("unary segment must fit inside the resolution")

    @property
    def n_lsb_bits(self) -> int:
        """Binary-weighted LSB bits."""
        return self.n_bits - self.n_unary_bits

    @property
    def n_unary_sources(self) -> int:
        """Number of unary MSB sources (2^u − 1)."""
        return (1 << self.n_unary_bits) - 1

    @property
    def unary_weight_lsb(self) -> int:
        """Weight of one unary source in LSBs."""
        return 1 << self.n_lsb_bits

    @property
    def n_codes(self) -> int:
        """Number of input codes."""
        return 1 << self.n_bits


@dataclass(frozen=True)
class DacDesign:
    """Physical sizing of the DAC's unit current source."""

    tech: TechnologyNode
    unit_area_um2: float
    """Gate area of ONE unit (1-LSB) current source [µm²]."""

    aspect_ratio: float = 2.0
    """W/L of the unit source device."""

    def __post_init__(self) -> None:
        if self.unit_area_um2 <= 0.0:
            raise ValueError("unit area must be positive")
        if self.aspect_ratio <= 0.0:
            raise ValueError("aspect ratio must be positive")

    def unit_sigma_rel(self) -> float:
        """Relative 1σ current error of one unit source.

        A saturated current source's error combines the current-factor
        mismatch and the V_T mismatch amplified by gm/I ≈ 2/V_ov:

            σ(ΔI/I)² = σ(Δβ/β)² + (2/V_ov)²·σ(ΔV_T)²

        evaluated at the unit-source geometry, with a typical 0.25 V
        overdrive.  Single-device (not pair) sigmas are used.
        """
        l_um = math.sqrt(self.unit_area_um2 / self.aspect_ratio)
        w_um = self.aspect_ratio * l_um
        pelgrom = PelgromModel.for_technology(self.tech)
        w_m, l_m = w_um * 1e-6, l_um * 1e-6
        sigma_beta = pelgrom.sigma_single_beta_fraction(w_m, l_m)
        sigma_vt = pelgrom.sigma_single_vt_v(w_m, l_m)
        v_ov = 0.25
        return math.hypot(sigma_beta, 2.0 * sigma_vt / v_ov)

    def analog_area_mm2(self, config: DacConfig) -> float:
        """Total current-source array area [mm²].

        2^N − 1 LSB-equivalents of unit sources plus a 20 % routing
        overhead — the dominant analog area of such DACs.
        """
        n_units = (1 << config.n_bits) - 1
        return 1.2 * n_units * self.unit_area_um2 * 1e-6


class CurrentSteeringDac:
    """One mismatch-laden DAC instance (one virtual die)."""

    def __init__(self, config: DacConfig, unit_sigma_rel: float,
                 rng: Optional[np.random.Generator] = None):
        if unit_sigma_rel < 0.0:
            raise ValueError("unit sigma must be non-negative")
        self.config = config
        self.unit_sigma_rel = unit_sigma_rel
        rng = rng if rng is not None else np.random.default_rng()
        u = config.unary_weight_lsb
        # A unary source is u parallel units: relative σ scales as 1/√u.
        self.unary_errors = rng.normal(
            0.0, unit_sigma_rel / math.sqrt(u), config.n_unary_sources)
        # Binary source of weight 2^k: k units in parallel.
        self.binary_errors = np.array([
            rng.normal(0.0, unit_sigma_rel / math.sqrt(1 << k))
            for k in range(config.n_lsb_bits)
        ])
        #: Active switching sequence (unary source indices in turn-on
        #: order); identity until calibrated.
        self.sequence = np.arange(config.n_unary_sources)

    # ------------------------------------------------------------------
    # Static transfer
    # ------------------------------------------------------------------
    def set_sequence(self, sequence: Sequence[int]) -> None:
        """Install a switching sequence (a permutation of all sources)."""
        seq = np.asarray(sequence, dtype=int)
        if sorted(seq.tolist()) != list(range(self.config.n_unary_sources)):
            raise ValueError("sequence must be a permutation of all unary sources")
        self.sequence = seq

    def transfer_lsb(self, sequence: Optional[Sequence[int]] = None) -> np.ndarray:
        """DAC output for every code, in LSB units (length 2^N)."""
        cfg = self.config
        seq = self.sequence if sequence is None else np.asarray(sequence, dtype=int)
        u_weight = cfg.unary_weight_lsb
        # Cumulative unary contribution after k sources are on.
        unary_currents = u_weight * (1.0 + self.unary_errors[seq])
        cum_unary = np.concatenate(([0.0], np.cumsum(unary_currents)))
        # Binary segment output for every LSB sub-code.
        lsb_codes = np.arange(1 << cfg.n_lsb_bits)
        binary_out = np.zeros(lsb_codes.size)
        for k in range(cfg.n_lsb_bits):
            bit_on = (lsb_codes >> k) & 1
            binary_out = binary_out + bit_on * (1 << k) * (1.0 + self.binary_errors[k])
        # Full transfer: code = unary_count·2^L + lsb_code.
        out = (cum_unary[:, None] + binary_out[None, :]).reshape(-1)
        return out

    def inl_lsb(self, sequence: Optional[Sequence[int]] = None) -> np.ndarray:
        """Endpoint-corrected integral nonlinearity per code [LSB]."""
        out = self.transfer_lsb(sequence)
        codes = np.arange(out.size)
        # Endpoint line through (0, out[0]) and (last, out[-1]).
        slope = (out[-1] - out[0]) / (out.size - 1)
        ideal = out[0] + slope * codes
        return out - ideal

    def dnl_lsb(self, sequence: Optional[Sequence[int]] = None) -> np.ndarray:
        """Differential nonlinearity per code step [LSB]."""
        out = self.transfer_lsb(sequence)
        step = (out[-1] - out[0]) / (out.size - 1)
        return np.diff(out) / step - 1.0

    def max_inl_lsb(self, sequence: Optional[Sequence[int]] = None) -> float:
        """max |INL| over all codes [LSB]."""
        return float(np.max(np.abs(self.inl_lsb(sequence))))

    def max_dnl_lsb(self, sequence: Optional[Sequence[int]] = None) -> float:
        """max |DNL| over all steps [LSB]."""
        return float(np.max(np.abs(self.dnl_lsb(sequence))))

    def meets_inl_spec(self, limit_lsb: float = 0.5,
                       sequence: Optional[Sequence[int]] = None) -> bool:
        """The paper's acceptance criterion: INL < ``limit_lsb``."""
        if limit_lsb <= 0.0:
            raise ValueError("INL limit must be positive")
        return self.max_inl_lsb(sequence) < limit_lsb


def sfdr_db(dac: CurrentSteeringDac, n_samples: int = 4096,
            cycles: int = 7,
            sequence: Optional[Sequence[int]] = None) -> float:
    """Spurious-free dynamic range for a full-scale sine input [dB].

    Static mismatch errors fold the reconstructed sine into harmonics;
    SFDR is the carrier-to-worst-spur ratio.  ``cycles`` must be coprime
    with ``n_samples`` for coherent sampling (no spectral leakage).
    This is the dynamic counterpart of INL — the original §5.1 DAC is
    specified at 200 MHz update precisely because dynamic linearity is
    what the application buys.
    """
    if n_samples < 64:
        raise ValueError("need at least 64 samples")
    if math.gcd(n_samples, cycles) != 1:
        raise ValueError("cycles must be coprime with n_samples")
    transfer = dac.transfer_lsb(sequence)
    full_scale = dac.config.n_codes - 1
    phase = 2.0 * math.pi * cycles * np.arange(n_samples) / n_samples
    codes = np.round((np.sin(phase) * 0.5 + 0.5) * full_scale).astype(int)
    output = transfer[codes]
    spectrum = np.abs(np.fft.rfft(output * np.hanning(n_samples)))
    carrier_bin = cycles
    window = 3  # Hann main-lobe width
    carrier = spectrum[carrier_bin - 1:carrier_bin + window].max()
    mask = np.ones(spectrum.size, dtype=bool)
    mask[0:window] = False  # DC leakage
    mask[carrier_bin - window:carrier_bin + window + 1] = False
    worst_spur = spectrum[mask].max()
    if worst_spur <= 0.0:
        return math.inf
    return float(20.0 * math.log10(carrier / worst_spur))


def intrinsic_sigma_for_inl(config: DacConfig, limit_lsb: float = 0.5,
                            yield_target: float = 0.9973) -> float:
    """Analytic estimate of the unit σ needed for intrinsic INL accuracy.

    The worst INL of a unary array is approximately the mid-code random
    walk: σ_INL(mid) = σ_unit·√(2^N)/2 in LSBs.  Requiring the ±z·σ
    excursion (z from the yield target) to stay inside ``limit_lsb``
    gives the classic area-setting rule.
    """
    if not 0.5 < yield_target < 1.0:
        raise ValueError("yield target must be in (0.5, 1)")
    from scipy.stats import norm

    z = float(norm.ppf(0.5 + yield_target / 2.0))
    sigma_inl_mid = limit_lsb / z
    return sigma_inl_mid * 2.0 / math.sqrt(1 << config.n_bits)
