"""Concrete knobs and monitors for circuit fixtures (§5.2 building blocks).

The generic framework in :mod:`repro.solutions.knobs_monitors` works on
callables; this module provides the common *circuit-bound* instances —
the actual "tunable or reconfigurable circuit parts" and "simple
measurement circuits" the paper describes:

* :func:`supply_knob` — a programmable supply/LDO level;
* :func:`bias_current_knob` — a trimmed current-source DAC;
* :func:`body_bias_knob` — forward/reverse body bias shifting V_T
  (implemented through the devices' variation hook, exactly how an
  adaptive body bias moves the threshold);
* :func:`frequency_monitor` — a ring-oscillator readout;
* :func:`dc_monitor` — an operating-point probe (replica/sense node);
* :func:`aging_sensor_monitor` — a stressed-vs-fresh replica pair, the
  classic on-chip NBTI/ΔV_T odometer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.circuit.dc import dc_operating_point
from repro.circuit.elements import CurrentSource, DcSpec, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.transient import transient
from repro.circuits.digital import oscillation_frequency
from repro.circuits.references import CircuitFixture
from repro.solutions.knobs_monitors import Knob, Monitor


def supply_knob(circuit: Circuit, source_name: str,
                levels_v: Sequence[float], name: str = "vdd_knob",
                initial_index: int = 0) -> Knob:
    """A knob stepping a supply voltage source through fixed levels."""
    source = circuit[source_name]
    if not isinstance(source, VoltageSource):
        raise TypeError(f"{source_name!r} is not a voltage source")

    def apply(level: float) -> None:
        source.spec = DcSpec(level)

    return Knob(name, list(levels_v), apply, initial_index=initial_index)


def bias_current_knob(circuit: Circuit, source_name: str,
                      levels_a: Sequence[float], name: str = "bias_knob",
                      initial_index: int = 0) -> Knob:
    """A knob stepping a bias current source (a trim DAC)."""
    source = circuit[source_name]
    if not isinstance(source, CurrentSource):
        raise TypeError(f"{source_name!r} is not a current source")

    def apply(level: float) -> None:
        source.spec = DcSpec(level)

    return Knob(name, list(levels_a), apply, initial_index=initial_index)


def body_bias_knob(circuit: Circuit, device_names: Sequence[str],
                   vt_shifts_v: Sequence[float], name: str = "bb_knob",
                   initial_index: int = 0) -> Knob:
    """A knob applying a common V_T shift to a set of devices.

    Negative shifts model forward body bias (faster, leakier); positive
    shifts reverse body bias.  The shift rides on the devices' variation
    hook so it composes with sampled mismatch and with aging.
    """
    devices = [circuit[n] for n in device_names]
    base_offsets = {d.name: d.variation.delta_vt_v for d in devices}

    def apply(shift: float) -> None:
        for device in devices:
            device.variation.delta_vt_v = base_offsets[device.name] + shift

    return Knob(name, list(vt_shifts_v), apply, initial_index=initial_index)


def frequency_monitor(fixture: CircuitFixture, node: str, threshold_v: float,
                      t_stop_s: float, dt_s: float,
                      quantization_hz: float = 0.0,
                      name: str = "freq") -> Monitor:
    """A ring-oscillator frequency readout (counter-style monitor)."""

    def measure() -> float:
        result = transient(fixture.circuit, t_stop=t_stop_s, dt=dt_s)
        return oscillation_frequency(result.voltage(node), threshold_v)

    return Monitor(name, measure, quantization=quantization_hz)


def dc_monitor(circuit: Circuit, node: str, quantization_v: float = 0.0,
               name: Optional[str] = None) -> Monitor:
    """A DC node-voltage probe (sense amplifier / ADC readout)."""

    def measure() -> float:
        return dc_operating_point(circuit).voltage(node)

    return Monitor(name if name else f"v({node})", measure,
                   quantization=quantization_v)


def source_current_monitor(circuit: Circuit, source_name: str,
                           quantization_a: float = 0.0,
                           name: Optional[str] = None) -> Monitor:
    """A branch-current probe through a voltage source (current sense)."""
    element = circuit[source_name]
    if not isinstance(element, VoltageSource):
        raise TypeError(f"{source_name!r} is not a voltage source")

    def measure() -> float:
        return dc_operating_point(circuit).source_current(source_name)

    return Monitor(name if name else f"i({source_name})", measure,
                   quantization=quantization_a)


def aging_sensor_monitor(fixture: CircuitFixture, stressed_device: str,
                         reference_device: str,
                         quantization_v: float = 0.0,
                         name: str = "delta_vt_sensor") -> Monitor:
    """An on-chip ΔV_T odometer: stressed replica vs protected reference.

    Real silicon odometers compare a stressed device against a twin that
    is only powered during measurement; the readout is the accumulated
    |ΔV_T| difference.  Here the monitor reads the degradation state
    difference of the two named devices — the same observable, without
    re-simulating.
    """
    stressed = fixture.circuit[stressed_device]
    reference = fixture.circuit[reference_device]

    def measure() -> float:
        return (stressed.degradation.delta_vt_v
                - reference.degradation.delta_vt_v)

    return Monitor(name, measure, quantization=quantization_v)
