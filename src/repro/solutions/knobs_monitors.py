"""Knobs-and-monitors adaptive framework (paper §5.2, Fig 6).

Dierickx's concept (refs [3], [4]): a self-adaptive system with three
parts —

* **Monitors** measure the actual performance with simple circuits
  (here: a metric function with optional quantization, since a real
  monitor has finite resolution);
* **Knobs** are tunable circuit parts that move the operating point
  (here: a discrete set of settings applied through a callback, e.g.
  a supply level or a bias-current trim code);
* a **Control Algorithm** picks the knob configuration that keeps every
  spec satisfied at minimum cost (greedy coordinate descent — a digital
  controller's worth of logic, as the paper promises).

The payoff the paper claims (and E10 regenerates): the closed loop
compensates variability AND lifetime degradation, so over-design is not
needed — the adaptive system meets spec over the mission at lower
average power than a worst-case-sized fixed design.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


class Monitor:
    """A performance monitor: a measurement with finite resolution."""

    def __init__(self, name: str, measure: Callable[[], float],
                 quantization: float = 0.0):
        if quantization < 0.0:
            raise ValueError("quantization must be non-negative")
        self.name = name
        self._measure = measure
        self.quantization = quantization

    def read(self) -> float:
        """One (possibly quantized) reading."""
        value = float(self._measure())
        if self.quantization > 0.0:
            value = round(value / self.quantization) * self.quantization
        return value


class Knob:
    """A tunable circuit part with a discrete setting ladder."""

    def __init__(self, name: str, settings: Sequence[float],
                 apply: Callable[[float], None], initial_index: int = 0):
        if len(settings) < 2:
            raise ValueError("a knob needs at least two settings")
        if not 0 <= initial_index < len(settings):
            raise ValueError("initial index out of range")
        self.name = name
        self.settings = list(settings)
        self._apply = apply
        self.index = initial_index
        self._apply(self.settings[self.index])

    @property
    def value(self) -> float:
        """Currently applied setting."""
        return self.settings[self.index]

    def set_index(self, index: int) -> None:
        """Move the knob and apply the new setting to the circuit."""
        if not 0 <= index < len(self.settings):
            raise ValueError(f"{self.name}: index {index} out of range")
        self.index = index
        self._apply(self.settings[index])


@dataclass(frozen=True)
class SpecTarget:
    """An acceptance window on one monitor."""

    monitor_name: str
    lower: Optional[float] = None
    upper: Optional[float] = None

    def margin(self, reading: float) -> float:
        """Signed spec margin (negative = violated); the controller
        maximizes the worst margin before minimizing cost."""
        margins = []
        if self.lower is not None:
            margins.append(reading - self.lower)
        if self.upper is not None:
            margins.append(self.upper - reading)
        if not margins:
            raise ValueError("spec target with no bounds")
        return min(margins)

    def satisfied(self, reading: float) -> bool:
        """Whether the reading meets the spec."""
        return self.margin(reading) >= 0.0


@dataclass
class RegulationRecord:
    """What one regulation step saw and decided."""

    readings_before: Dict[str, float]
    readings_after: Dict[str, float]
    knob_indices: Dict[str, int]
    cost: float
    in_spec: bool
    evaluations: int = 0


class ControlAlgorithm:
    """Greedy coordinate-descent knob search.

    Objective: first satisfy every spec (maximize the worst violated
    margin), then minimize ``cost_fn`` among satisfying configurations.
    Coordinate descent over knobs converges in a handful of sweeps for
    the monotone knob laws typical of supply/bias trims, and needs only
    O(sweeps · Σ settings) monitor evaluations — cheap enough for a
    runtime digital controller.
    """

    def __init__(self, max_sweeps: int = 4):
        if max_sweeps < 1:
            raise ValueError("need at least one sweep")
        self.max_sweeps = max_sweeps

    def optimize(self, knobs: Sequence[Knob], monitors: Sequence[Monitor],
                 specs: Sequence[SpecTarget],
                 cost_fn: Callable[[], float]) -> Tuple[int, float]:
        """Tune ``knobs`` in place; returns (evaluations, final_cost)."""
        monitor_by_name = {m.name: m for m in monitors}

        def objective() -> Tuple[float, float]:
            readings = {m.name: m.read() for m in monitors}
            worst = min(spec.margin(readings[spec.monitor_name])
                        for spec in specs) if specs else 0.0
            return worst, cost_fn()

        evaluations = 0
        for _ in range(self.max_sweeps):
            moved = False
            for knob in knobs:
                best_index = knob.index
                best_worst, best_cost = objective()
                evaluations += 1
                for candidate in range(len(knob.settings)):
                    if candidate == knob.index:
                        continue
                    knob.set_index(candidate)
                    worst, cost = objective()
                    evaluations += 1
                    better = ((best_worst < 0.0 and worst > best_worst)
                              or (worst >= 0.0
                                  and (best_worst < 0.0 or cost < best_cost)))
                    if better:
                        best_index, best_worst, best_cost = candidate, worst, cost
                if best_index != knob.index:
                    knob.set_index(best_index)
                    moved = True
                else:
                    knob.set_index(knob.index)  # restore after probing
            if not moved:
                break
        _, final_cost = objective()
        return evaluations, final_cost


class AdaptiveSystem:
    """Fig 6: monitors + knobs + control algorithm around a circuit."""

    def __init__(self, monitors: Sequence[Monitor], knobs: Sequence[Knob],
                 specs: Sequence[SpecTarget],
                 cost_fn: Callable[[], float],
                 controller: Optional[ControlAlgorithm] = None):
        if not monitors or not knobs:
            raise ValueError("need at least one monitor and one knob")
        names = {m.name for m in monitors}
        for spec in specs:
            if spec.monitor_name not in names:
                raise ValueError(f"spec references unknown monitor "
                                 f"{spec.monitor_name!r}")
        self.monitors = list(monitors)
        self.knobs = list(knobs)
        self.specs = list(specs)
        self.cost_fn = cost_fn
        self.controller = controller if controller is not None else ControlAlgorithm()
        self.history: List[RegulationRecord] = []

    def readings(self) -> Dict[str, float]:
        """Current monitor readings."""
        return {m.name: m.read() for m in self.monitors}

    def in_spec(self, readings: Optional[Dict[str, float]] = None) -> bool:
        """Whether every spec is currently met."""
        r = readings if readings is not None else self.readings()
        return all(spec.satisfied(r[spec.monitor_name]) for spec in self.specs)

    def regulate(self) -> RegulationRecord:
        """One control-loop invocation: re-tune all knobs.

        Call after every aging epoch (or whenever a monitor drifts) —
        this is the "runtime countermeasures" loop of §5.2.
        """
        before = self.readings()
        evaluations, cost = self.controller.optimize(
            self.knobs, self.monitors, self.specs, self.cost_fn)
        after = self.readings()
        record = RegulationRecord(
            readings_before=before,
            readings_after=after,
            knob_indices={k.name: k.index for k in self.knobs},
            cost=cost,
            in_spec=self.in_spec(after),
            evaluations=evaluations,
        )
        self.history.append(record)
        return record
