"""Synthetic technology-node library (paper §2 substrate).

Public API:

* :class:`TechnologyNode` and its parameter groups
  (:class:`MismatchCoefficients`, :class:`AgingCoefficients`,
  :class:`InterconnectParameters`);
* :func:`get_node` / :data:`NODES` / :func:`node_names` /
  :func:`scaling_trend` to access the predefined 350 nm → 32 nm nodes;
* :func:`tuinhout_benchmark_avt` / :func:`modeled_avt` — the Fig 1 curves.
"""

from repro.technology.library import (
    AVT_FLOOR_MV_UM,
    NODES,
    TUINHOUT_SLOPE_MV_UM_PER_NM,
    get_node,
    modeled_avt,
    node_names,
    scaling_trend,
    tuinhout_benchmark_avt,
)
from repro.technology.scaling import interpolated_node
from repro.technology.node import (
    AgingCoefficients,
    InterconnectParameters,
    MismatchCoefficients,
    TechnologyNode,
)

__all__ = [
    "AVT_FLOOR_MV_UM",
    "AgingCoefficients",
    "InterconnectParameters",
    "MismatchCoefficients",
    "NODES",
    "TUINHOUT_SLOPE_MV_UM_PER_NM",
    "TechnologyNode",
    "get_node",
    "interpolated_node",
    "modeled_avt",
    "node_names",
    "scaling_trend",
    "tuinhout_benchmark_avt",
]
