"""Library of synthetic ITRS-flavoured technology nodes (350 nm → 32 nm).

The nodes follow published scaling trends:

* oxide thickness and supply voltage shrink with the node;
* the V_T mismatch coefficient A_VT follows Tuinhout's benchmark of
  roughly 1 mV·µm per nm of gate oxide for thick oxides, but saturates
  below ~10 nm oxide thickness (Fig 1 of the paper) because additional
  variation sources — random dopant fluctuation, line-edge roughness,
  pocket implants — stop tracking the oxide;
* degradation constants worsen with scaling (higher fields, thinner
  oxides), which is the central storyline of the paper.

These numbers are synthetic calibrations, not foundry data — see
DESIGN.md §3.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.technology.node import (
    AgingCoefficients,
    InterconnectParameters,
    MismatchCoefficients,
    TechnologyNode,
)

#: Tuinhout benchmark slope: A_VT in mV·µm per nm of gate-oxide thickness.
TUINHOUT_SLOPE_MV_UM_PER_NM = 1.0

#: Mismatch floor [mV·µm] from oxide-independent variation sources
#: (random dopant fluctuation, LER).  This is what bends Fig 1 away from
#: the dashed benchmark line below ~10 nm.
AVT_FLOOR_MV_UM = 2.6


def tuinhout_benchmark_avt(tox_nm: float) -> float:
    """Tuinhout's forecast A_VT = 1 mV·µm/nm · t_ox (dashed line of Fig 1).

    Valid guidance for t_ox above roughly 10 nm; optimistic below.
    """
    if tox_nm <= 0.0:
        raise ValueError(f"tox_nm must be positive, got {tox_nm}")
    return TUINHOUT_SLOPE_MV_UM_PER_NM * tox_nm


def modeled_avt(tox_nm: float, floor_mv_um: float = AVT_FLOOR_MV_UM) -> float:
    """Measured-trend A_VT(t_ox) model used to build the node library.

    The oxide-tracking component and the oxide-independent floor add in
    variance, so the curve follows the benchmark for thick oxides and
    flattens (matching becomes "only slightly better over time") once
    the floor dominates:

        A_VT = sqrt((slope · t_ox)^2 + floor^2)
    """
    benchmark = tuinhout_benchmark_avt(tox_nm)
    return math.hypot(benchmark, floor_mv_um)


def _mismatch_for(tox_nm: float, lmin_um: float) -> MismatchCoefficients:
    """Derive the full mismatch coefficient set for a node."""
    a_vt = modeled_avt(tox_nm)
    return MismatchCoefficients(
        a_vt_mv_um=a_vt,
        s_vt_mv_per_um=0.015 + 0.01 * lmin_um,
        a_beta_pct_um=0.7 + 1.2 * lmin_um,
        s_beta_pct_per_um=0.004,
        a_gamma_mv_um=0.4 * a_vt,
        # Extra variance scales (paper §2 refs [5], [41]): at minimum
        # geometry these add ~30 % (short) and ~25 % (narrow) variance.
        short_channel_l_um=0.30 * lmin_um,
        narrow_channel_w_um=0.25 * 1.4 * lmin_um,
    )


def _hci_reference_anchor(node_nm: float, tox_nm: float, vdd: float,
                          vt0: float) -> tuple:
    """Reference-stress anchors (vov, E_ox, E_m) for the HCI model.

    Evaluated at the WORST-CASE hot-carrier bias — v_GS ≈ VDD/2,
    v_DS = VDD, the substrate-current peak — on a minimum-length device,
    using the same pinch-off geometry as :mod:`repro.aging.hci`.  The
    10-year ΔV_T calibration target therefore refers to continuous
    worst-case stress; real operating waveforms accumulate some fraction
    of it.
    """
    vgs_ref = vdd / 2.0
    vov_ref = max(vgs_ref - vt0, 0.1)
    eox_ref = vgs_ref / (tox_nm * 1e-9)
    vdsat = vov_ref / 1.35
    v_pinch = max(vdd - vdsat, 0.05)
    tox_cm = tox_nm * 1e-9 * 100.0
    xj_cm = max(10e-9, 0.25 * node_nm * 1e-9) * 100.0
    lc_m = 0.22 * tox_cm ** (1.0 / 3.0) * xj_cm ** 0.5 / 100.0
    em_ref = v_pinch / lc_m
    return vov_ref, eox_ref, em_ref


def _aging_for(node_nm: float, tox_nm: float, vdd: float,
               vt0: float) -> AgingCoefficients:
    """Degradation constants, worsening monotonically with scaling."""
    # Severity knob: 1.0 at 350 nm, growing towards small nodes.
    severity = (350.0 / node_nm) ** 0.5
    vov_ref, eox_ref, em_ref = _hci_reference_anchor(node_nm, tox_nm, vdd, vt0)
    # Calibration target: 10-year DC-stress ΔV_T at the reference
    # condition, ~1 mV at 350 nm growing to ~55 mV at 32 nm.
    hci_target_10yr_v = 1e-3 * (350.0 / node_nm) ** 1.67
    ten_years_s = 3.156e8
    return AgingCoefficients(
        nbti_prefactor_v=4.0e-3 * severity,
        nbti_time_exponent=0.16,
        nbti_permanent_fraction=0.4,
        hci_prefactor_v=hci_target_10yr_v / ten_years_s ** 0.45,
        hci_vov_ref_v=vov_ref,
        hci_eox_ref_v_per_m=eox_ref,
        hci_em_ref_v_per_m=em_ref,
        hci_time_exponent=0.45,
        tddb_weibull_shape=max(1.0, 2.6 - 0.35 * math.log2(350.0 / node_nm)),
        tddb_eta_prefactor_s=3.0e-7,
        tddb_gamma_decades_per_mv_cm=3.0,
        tddb_ref_field_mv_cm=_tddb_ref_field(node_nm, tox_nm, vdd, severity),
        em_ea_ev=0.85 if node_nm <= 130 else 0.6,  # Cu vs Al interconnect
        em_current_exponent=2.0,
        em_a_const=1.0e5,
        em_blech_product_a_per_m=2.0e5,
        em_bamboo_width_m=1.2 * node_nm * 1e-9,
    )




def _tddb_ref_field(node_nm: float, tox_nm: float, vdd: float,
                    severity: float) -> float:
    """Reference (instant-BD) oxide field [MV/cm] per node.

    Calibrated so the nominal-field characteristic life η follows the
    paper's storyline: centuries at 350 nm shrinking to ~a decade at
    32 nm.  Physically this mirrors the observed increase of the
    breakdown field for ultra-thin oxides.
    """
    import repro.units as _units

    eta_target_s = _units.years_to_seconds(600.0 / severity ** 4)
    e_nominal_mv_cm = (vdd / (tox_nm * 1e-9)) / 1e8
    decades = math.log10(eta_target_s / 3.0e-7)
    return e_nominal_mv_cm + decades / 3.0

def _interconnect_for(node_nm: float) -> InterconnectParameters:
    """BEOL constants; Cu below 130 nm, Al above."""
    is_copper = node_nm <= 130
    return InterconnectParameters(
        resistivity_ohm_m=2.2e-8 if is_copper else 3.2e-8,
        thickness_m=2.2 * node_nm * 1e-9,
        min_width_m=1.0 * node_nm * 1e-9,
        j_max_a_per_m2=2.0e10 if is_copper else 1.0e10,
    )


def _build_node(
    name: str,
    node_nm: float,
    tox_nm: float,
    vdd: float,
    vt0_n: float,
    u0_n_cm2: float,
    u0_p_cm2: float,
) -> TechnologyNode:
    lmin_um = node_nm * 1e-3
    node = TechnologyNode(
        name=name,
        lmin_m=node_nm * 1e-9,
        wmin_m=1.4 * node_nm * 1e-9,
        tox_nm=tox_nm,
        vdd=vdd,
        vt0_n=vt0_n,
        vt0_p=-vt0_n,
        u0_n_m2_per_vs=u0_n_cm2 * 1e-4,
        u0_p_m2_per_vs=u0_p_cm2 * 1e-4,
        lambda_per_v_um=0.06,
        gamma_body_sqrt_v=0.45,
        phi_surface_v=0.85,
        vsat_m_per_s=1.0e5,
        theta_mobility_per_v=0.25 + 0.9 / tox_nm,
        subthreshold_slope_factor=1.3 + 0.2 * (1.0 - min(1.0, node_nm / 350.0)),
        mismatch=_mismatch_for(tox_nm, lmin_um),
        aging=_aging_for(node_nm, tox_nm, vdd, vt0_n),
        interconnect=_interconnect_for(node_nm),
    )
    node.validate()
    return node


# Node table: (feature size nm, tox nm, VDD, VT0n, µn cm²/Vs, µp cm²/Vs).
# Oxide thicknesses and supplies track the usual foundry/ITRS progression;
# mobility drops slightly with scaling due to higher channel doping.
_NODE_TABLE = [
    ("350nm", 350.0, 7.5, 3.3, 0.60, 480.0, 160.0),
    ("250nm", 250.0, 5.0, 2.5, 0.50, 460.0, 155.0),
    ("180nm", 180.0, 4.0, 1.8, 0.45, 440.0, 150.0),
    ("130nm", 130.0, 2.6, 1.5, 0.38, 420.0, 140.0),
    ("90nm", 90.0, 2.0, 1.2, 0.33, 400.0, 130.0),
    ("65nm", 65.0, 1.6, 1.1, 0.30, 380.0, 120.0),
    ("45nm", 45.0, 1.3, 1.0, 0.28, 360.0, 110.0),
    ("32nm", 32.0, 1.1, 0.9, 0.26, 340.0, 100.0),
]

#: All predefined nodes, keyed by name, largest feature size first.
NODES: Dict[str, TechnologyNode] = {
    name: _build_node(name, node_nm, tox, vdd, vt0, u0n, u0p)
    for (name, node_nm, tox, vdd, vt0, u0n, u0p) in _NODE_TABLE
}


def get_node(name: str) -> TechnologyNode:
    """Look up a predefined node by name (e.g. ``"65nm"``).

    Raises ``KeyError`` with the list of available names on a miss.
    """
    try:
        return NODES[name]
    except KeyError:
        available = ", ".join(NODES)
        raise KeyError(f"unknown technology node {name!r}; available: {available}") from None


def node_names() -> List[str]:
    """Names of all predefined nodes, largest feature size first."""
    return list(NODES)


def scaling_trend() -> List[TechnologyNode]:
    """All predefined nodes ordered from the oldest (largest) to newest."""
    return [NODES[name] for name in NODES]
