"""Technology-node description.

A :class:`TechnologyNode` bundles every process-dependent constant the
rest of the library needs: nominal device parameters for the compact
MOSFET model, matching coefficients for the variability models (Eq 1 of
the paper), and the acceleration constants of the four degradation
mechanisms of Section 3 (TDDB, HCI, NBTI, EM).

The numbers shipped in :mod:`repro.technology.library` are synthetic but
ITRS-flavoured: they follow the published scaling trends (oxide thickness,
supply voltage, A_VT per Tuinhout's 1 mV·µm/nm benchmark with the sub-10 nm
saturation shown in Fig 1 of the paper) rather than any single foundry's
PDK, which is proprietary.  See DESIGN.md §3 for the substitution note.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from repro import units


@dataclass(frozen=True)
class MismatchCoefficients:
    """Pelgrom-style matching coefficients (paper Eq 1 plus extensions).

    ``sigma^2(dVT) = A_VT^2/(W·L) + S_VT^2·D^2`` with W, L in µm and the
    device separation D in µm; A_VT in mV·µm, S_VT in mV/µm.  The
    short/narrow-channel extension coefficients model the extra variance
    observed at minimum geometry (paper §2, refs [5], [41]).
    """

    a_vt_mv_um: float
    """Area coefficient of V_T mismatch [mV·µm]."""

    s_vt_mv_per_um: float
    """Distance coefficient of V_T mismatch [mV/µm]."""

    a_beta_pct_um: float
    """Area coefficient of relative current-factor mismatch [%·µm]."""

    s_beta_pct_per_um: float
    """Distance coefficient of current-factor mismatch [%/µm]."""

    a_gamma_mv_um: float
    """Area coefficient of body-factor mismatch [mV^0.5·µm·1000]."""

    short_channel_l_um: float = 0.0
    """Short-channel variance length scale L* [µm]: the V_T mismatch
    variance is multiplied by ``(1 + L*/L)`` so that minimum-length
    devices show the extra variability reported for short channels
    (paper §2, refs [5], [41])."""

    narrow_channel_w_um: float = 0.0
    """Narrow-channel variance width scale W* [µm]: multiplies variance
    by ``(1 + W*/W)``."""


@dataclass(frozen=True)
class AgingCoefficients:
    """Acceleration constants for the §3 degradation mechanisms.

    All energies in eV, fields in V/m unless noted.  These calibrate the
    closed-form laws Eq 2 (HCI), Eq 3 (NBTI), Eq 4 (EM) and the Weibull
    TDDB statistics of §3.1.
    """

    # --- NBTI (Eq 3) -----------------------------------------------------
    nbti_prefactor_v: float = 8.0e-3
    """ΔV_T magnitude scale [V] at reference stress (1 s, E_ox = E0, T→∞)."""

    nbti_e0_v_per_m: float = 8.0e8
    """Oxide-field acceleration constant E_0 [V/m]."""

    nbti_ea_ev: float = 0.08
    """Thermal activation energy E_a [eV]."""

    nbti_time_exponent: float = 0.16
    """Power-law time exponent n (typically 0.1–0.25)."""

    nbti_permanent_fraction: float = 0.4
    """Fraction of NBTI damage that does not recover (lock-in component)."""

    nbti_relax_tau0_s: float = 1.0e-6
    """Earliest relaxation timescale (µs, per Reisinger et al.)."""

    nbti_relax_tau1_s: float = 1.0e5
    """Latest relaxation timescale (~days)."""

    # --- HCI (Eq 2) -------------------------------------------------------
    hci_prefactor_v: float = 3.0e-6
    """ΔV_T after 1 s of stress at the REFERENCE stress condition
    (v_GS = v_DS = VDD on a minimum-length device) [V].  Eq 2 is applied
    in normalized-acceleration form around this anchor, which keeps the
    brutally steep lucky-electron exponential calibratable."""

    hci_vov_ref_v: float = 0.8
    """Gate overdrive at the reference stress [V] (Q_i anchor)."""

    hci_eox_ref_v_per_m: float = 6.9e8
    """Vertical oxide field at the reference stress [V/m]."""

    hci_em_ref_v_per_m: float = 3.4e7
    """Peak lateral field E_m at the reference stress [V/m]."""

    hci_e0_v_per_m: float = 1.0e9
    """Vertical-oxide-field acceleration constant E_o [V/m]."""

    hci_phi_it_ev: float = 3.7
    """Interface-trap generation energy φ_it [eV]."""

    hci_lambda_m: float = 7.0e-9
    """Hot-electron mean free path λ [m]."""

    hci_time_exponent: float = 0.45
    """Power-law time exponent n (typically 0.4–0.5)."""

    # --- TDDB (§3.1) -------------------------------------------------------
    tddb_weibull_shape: float = 1.4
    """Weibull shape β of the time-to-breakdown distribution (thin oxides
    have β close to 1; thicker oxides are steeper)."""

    tddb_eta_prefactor_s: float = 3.0e-7
    """Scale prefactor of the Weibull characteristic life η [s]."""

    tddb_field_gamma_m_per_v: float = 3.2e-8
    """Exponential field-acceleration factor γ [m/V] in η ∝ exp(-γE_ox)...
    expressed so that η = prefactor·exp(gamma_decades·(E_bd-E_ox))."""

    tddb_gamma_decades_per_mv_cm: float = 3.0
    """Field acceleration in decades of lifetime per MV/cm of oxide field."""

    tddb_ref_field_mv_cm: float = 12.0
    """Reference oxide field [MV/cm] where η equals the prefactor."""

    tddb_area_scale_um2: float = 1.0
    """Reference gate area [µm²] for Poisson area scaling of BD statistics."""

    # --- Electromigration (Eq 4) -------------------------------------------
    em_ea_ev: float = 0.85
    """EM activation energy E_a [eV] (Cu interconnect ~0.8–0.9 eV)."""

    em_current_exponent: float = 2.0
    """Black's current-density exponent n (classic value 2)."""

    em_a_const: float = 1.0e5
    """Black prefactor A' such that MTTF = A'·J^-n·exp(Ea/kT − Ea/kT_ref)
    with J in MA/cm² gives MTTF in hours at the EM reference temperature
    (105 °C, the usual sign-off corner): ≈11.4 years at 1 MA/cm²."""

    em_ref_temperature_k: float = 378.15
    """Reference junction temperature of the Black prefactor [K]."""

    em_blech_product_a_per_m: float = 2.0e5
    """Blech threshold (J·L)_crit [A/m] — wires with J·L below this are
    immune to EM (paper ref [7]).  2e5 A/m = 2000 A/cm, the classic
    experimental range (1000–4000 A/cm)."""

    em_bamboo_width_m: float = 0.18e-6
    """Wire width below which the bamboo grain structure improves EM."""

    em_bamboo_bonus: float = 3.0
    """MTTF multiplier for bamboo wires (paper ref [25])."""

    em_via_penalty: float = 0.5
    """MTTF multiplier for segments terminated by a via without reservoir."""

    em_reservoir_bonus: float = 1.6
    """MTTF multiplier when the via has a reservoir extension (ref [30])."""


@dataclass(frozen=True)
class InterconnectParameters:
    """Back-end-of-line wire constants used by the EM analysis."""

    resistivity_ohm_m: float = 2.2e-8
    """Effective metal resistivity [Ω·m] (Cu + barrier)."""

    thickness_m: float = 0.25e-6
    """Metal thickness [m] (fixed per layer in a standard process)."""

    min_width_m: float = 0.1e-6
    """Minimum drawable wire width [m]."""

    j_max_a_per_m2: float = 2.0e10
    """Design-rule maximum DC current density [A/m²] (2 MA/cm²)."""


@dataclass(frozen=True)
class TechnologyNode:
    """A complete synthetic process description for one CMOS node."""

    name: str
    """Human-readable node name, e.g. ``"65nm"``."""

    lmin_m: float
    """Minimum drawn channel length [m]."""

    wmin_m: float
    """Minimum channel width [m]."""

    tox_nm: float
    """Electrical gate-oxide thickness [nm]."""

    vdd: float
    """Nominal supply voltage [V]."""

    vt0_n: float
    """Nominal NMOS zero-bias threshold voltage [V]."""

    vt0_p: float
    """Nominal PMOS zero-bias threshold voltage [V] (negative)."""

    u0_n_m2_per_vs: float
    """Low-field electron mobility [m²/V·s]."""

    u0_p_m2_per_vs: float
    """Low-field hole mobility [m²/V·s]."""

    lambda_per_v_um: float
    """Channel-length-modulation coefficient for a 1 µm device [1/V];
    scaled by 1/L(µm) in the compact model."""

    gamma_body_sqrt_v: float
    """Body-effect coefficient γ [√V]."""

    phi_surface_v: float
    """Surface potential 2φ_F [V]."""

    vsat_m_per_s: float
    """Carrier saturation velocity [m/s]."""

    theta_mobility_per_v: float
    """Vertical-field mobility-degradation coefficient θ [1/V]."""

    subthreshold_slope_factor: float
    """Ideality factor n of the subthreshold exponential (S = n·kT/q·ln10)."""

    mismatch: MismatchCoefficients = field(default_factory=lambda: MismatchCoefficients(
        a_vt_mv_um=5.0, s_vt_mv_per_um=0.02, a_beta_pct_um=1.0,
        s_beta_pct_per_um=0.005, a_gamma_mv_um=2.0))
    """Matching coefficients for Eq 1."""

    aging: AgingCoefficients = field(default_factory=AgingCoefficients)
    """Degradation-law constants for §3."""

    interconnect: InterconnectParameters = field(default_factory=InterconnectParameters)
    """BEOL constants for the EM analysis."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tox_m(self) -> float:
        """Gate-oxide thickness [m]."""
        return self.tox_nm * units.NANO

    @property
    def cox_f_per_m2(self) -> float:
        """Oxide capacitance per area [F/m²]."""
        return units.oxide_capacitance_per_area(self.tox_m)

    @property
    def kp_n(self) -> float:
        """NMOS process transconductance ``µ0·Cox`` [A/V²]."""
        return self.u0_n_m2_per_vs * self.cox_f_per_m2

    @property
    def kp_p(self) -> float:
        """PMOS process transconductance ``µ0·Cox`` [A/V²]."""
        return self.u0_p_m2_per_vs * self.cox_f_per_m2

    @property
    def lmin_um(self) -> float:
        """Minimum length in µm."""
        return self.lmin_m / units.MICRO

    @property
    def wmin_um(self) -> float:
        """Minimum width in µm."""
        return self.wmin_m / units.MICRO

    def nominal_oxide_field(self) -> float:
        """Oxide field at V_G = VDD [V/m] — the stress the §3 laws see."""
        return units.oxide_field(self.vdd, self.tox_m)

    def scaled(self, **overrides) -> "TechnologyNode":
        """Return a copy with selected fields replaced (what-if studies)."""
        return replace(self, **overrides)

    def validate(self) -> None:
        """Raise ``ValueError`` if any parameter is physically nonsensical."""
        checks: Dict[str, float] = {
            "lmin_m": self.lmin_m,
            "wmin_m": self.wmin_m,
            "tox_nm": self.tox_nm,
            "vdd": self.vdd,
            "vt0_n": self.vt0_n,
            "u0_n_m2_per_vs": self.u0_n_m2_per_vs,
            "u0_p_m2_per_vs": self.u0_p_m2_per_vs,
            "vsat_m_per_s": self.vsat_m_per_s,
        }
        for field_name, value in checks.items():
            if value <= 0.0:
                raise ValueError(f"{self.name}: {field_name} must be positive, got {value}")
        if self.vt0_p >= 0.0:
            raise ValueError(f"{self.name}: PMOS vt0_p must be negative, got {self.vt0_p}")
        if self.vt0_n >= self.vdd:
            raise ValueError(f"{self.name}: vt0_n={self.vt0_n} does not leave headroom under vdd={self.vdd}")
        if not math.isfinite(self.nominal_oxide_field()):
            raise ValueError(f"{self.name}: non-finite nominal oxide field")
