"""Custom-node synthesis by interpolation of the shipped library.

"What does a 75 nm process look like?" — projects any feature size
inside the library range by log-log interpolation of the primary
parameters between the two bracketing shipped nodes, then rebuilding
the derived coefficient sets (mismatch, aging, interconnect) with the
same calibration functions the library itself uses.  Useful for
trend studies at arbitrary granularity (e.g. plotting E1/E13 curves
with 20 points instead of 8).
"""

from __future__ import annotations

import math

import numpy as np

from repro.technology.library import (
    NODES,
    _aging_for,
    _interconnect_for,
    _mismatch_for,
)
from repro.technology.node import TechnologyNode


def _loglog_interp(x: float, xs, ys) -> float:
    """Log-x linear-y interpolation (parameters vs feature size)."""
    return float(np.interp(math.log(x), [math.log(v) for v in xs], ys))


def interpolated_node(feature_nm: float) -> TechnologyNode:
    """Synthesize a node at an arbitrary feature size [nm].

    The size must lie inside the shipped library range (32–350 nm).
    Primary parameters (t_ox, VDD, V_T0, mobilities) interpolate between
    the bracketing nodes; every derived coefficient set is rebuilt from
    the library's own calibration functions, so the synthetic node obeys
    the same trends (Tuinhout A_VT, aging severity, TDDB/EM anchors) as
    its neighbours.
    """
    nodes = sorted(NODES.values(), key=lambda n: n.lmin_m)
    sizes_nm = [n.lmin_m * 1e9 for n in nodes]
    if not sizes_nm[0] <= feature_nm <= sizes_nm[-1]:
        raise ValueError(
            f"feature size {feature_nm} nm outside library range "
            f"[{sizes_nm[0]:.0f}, {sizes_nm[-1]:.0f}] nm")

    def interp(attr) -> float:
        return _loglog_interp(feature_nm, sizes_nm,
                              [getattr(n, attr) for n in nodes])

    tox_nm = interp("tox_nm")
    vdd = interp("vdd")
    vt0_n = interp("vt0_n")
    lmin_um = feature_nm * 1e-3
    node = TechnologyNode(
        name=f"{feature_nm:g}nm(interp)",
        lmin_m=feature_nm * 1e-9,
        wmin_m=1.4 * feature_nm * 1e-9,
        tox_nm=tox_nm,
        vdd=vdd,
        vt0_n=vt0_n,
        vt0_p=-vt0_n,
        u0_n_m2_per_vs=interp("u0_n_m2_per_vs"),
        u0_p_m2_per_vs=interp("u0_p_m2_per_vs"),
        lambda_per_v_um=interp("lambda_per_v_um"),
        gamma_body_sqrt_v=interp("gamma_body_sqrt_v"),
        phi_surface_v=interp("phi_surface_v"),
        vsat_m_per_s=interp("vsat_m_per_s"),
        theta_mobility_per_v=0.25 + 0.9 / tox_nm,
        subthreshold_slope_factor=interp("subthreshold_slope_factor"),
        mismatch=_mismatch_for(tox_nm, lmin_um),
        aging=_aging_for(feature_nm, tox_nm, vdd, vt0_n),
        interconnect=_interconnect_for(feature_nm),
    )
    node.validate()
    return node
