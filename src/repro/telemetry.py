"""Hierarchical tracing and metrics for the analysis engines.

The production north-star (ROADMAP) needs visibility into *where* a
long Monte-Carlo / aging campaign spends its time and *which* samples
misbehave — not just the final ``YieldResult`` and a post-mortem
``ConvergenceReport``.  This module is the zero-dependency
observability layer the engines and solvers emit into:

* **Spans** — a hierarchical trace
  (``run → chunk → sample → analysis → solve.dc / solve.transient``),
  each span carrying structured attributes (sample index, convergence
  strategy, Newton iterations, worker identity, queue wait).  Span
  timestamps use the epoch clock so spans recorded in different
  processes land on one comparable timeline.  The verification gate
  (:mod:`repro.verify`) emits its own family on the same seams —
  ``verify.differential → verify.oracle / verify.corpus`` and
  ``verify.experiments → verify.experiment`` — plus the
  ``verify.checks`` / ``verify.failures`` counters, so a traced
  ``repro verify --trace`` run is inspectable with ``repro trace``
  exactly like an ``mc`` campaign.
* **Metrics registry** — thread-safe counters, gauges and fixed-bucket
  histograms instrumented at the hot seams: Newton iterations per
  solve, DC-ladder strategy used, transient step rejections, matrix
  factorizations, retries, quarantines, per-chunk queue wait and
  sample durations.
* **Sessions** — :func:`session` activates collection in the calling
  context; :func:`worker_session` gives each parallel chunk a private
  buffer (ContextVar-scoped, so the thread backend never interleaves
  chunks) whose exported payload rides back to the parent *alongside
  the chunk's results* and is merged under the run span.  The process
  backend needs no sockets or shared memory — telemetry is data,
  shipped the same way results are.
* **JSONL trace export** — :meth:`TelemetrySession.write_trace` emits
  one JSON object per line (``meta`` header, then ``span`` / ``event``
  records, then a final ``metrics`` snapshot); :func:`read_trace`
  parses and validates a file; :func:`aggregate_spans` reduces spans
  to per-name totals/self-time for the ``repro trace`` report.

Disabled-path contract: when no session is active, :func:`span`
returns a shared no-op context manager and :func:`active` returns
``None`` — the solver hot path stays flat (see the overhead micro-test
in ``tests/test_telemetry.py`` and the BENCH gate in
``scripts/check_regression.py``).  Call sites therefore follow one of
two idioms::

    with telemetry.span("solve.dc") as sp:   # no-op when disabled
        ...
        sp.set(strategy="newton")

    session = telemetry.active()
    if session is not None:                   # guard bulk metric work
        session.metrics.inc("solver.dc.solves")

Everything in this module is pure stdlib and importable from every
layer (it imports nothing from :mod:`repro`).
"""

from __future__ import annotations

import bisect
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple, Union

#: Trace-file schema version (bump when the JSONL layout changes).
TRACE_SCHEMA = 1

#: Default histogram buckets for durations [s] (log-ish spacing).
TIME_BUCKETS_S = (1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                  1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0)

#: Default histogram buckets for Newton iteration counts.
ITERATION_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128)

#: Histogram buckets for service job latency [s]: finer in the
#: sub-second range an interactive client sits in, coarser toward the
#: multi-minute campaigns (``serve.job.seconds`` in ``repro serve``).
SERVE_LATENCY_BUCKETS_S = (1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
                           30.0, 60.0, 180.0, 600.0, 1800.0)

#: Default histogram buckets for batched-solve lane counts.
LANE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Thread-safe counters, gauges and fixed-bucket histograms.

    Metric names are dotted strings (``solver.dc.newton_iterations``);
    the catalogue lives in ``docs/observability.md``.  A registry
    serialises to a JSON-ready *snapshot* and merges snapshots from
    workers (counters add, gauges last-write-wins, histograms add
    bucket-wise) — the operation that lets chunk metrics accumulate in
    the parent and checkpointed runs accumulate across interruptions.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        # name -> {"bounds": [..], "counts": [..] (len bounds+1),
        #          "sum": float, "count": int, "max": float}
        self._histograms: Dict[str, dict] = {}

    # -- writing -------------------------------------------------------
    def inc(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = TIME_BUCKETS_S) -> None:
        """Record ``value`` into histogram ``name``.

        ``bounds`` are the upper bucket edges; values above the last
        edge land in the overflow bucket.  The bounds of the *first*
        observation stick — later calls may omit them.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = {"bounds": [float(b) for b in bounds],
                        "counts": [0] * (len(bounds) + 1),
                        "sum": 0.0, "count": 0, "max": float("-inf")}
                self._histograms[name] = hist
            hist["counts"][bisect.bisect_left(hist["bounds"], value)] += 1
            hist["sum"] += value
            hist["count"] += 1
            if value > hist["max"]:
                hist["max"] = value

    def reset(self) -> None:
        """Drop every metric (a fresh registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reading -------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """``{suffix: value}`` of every counter under ``prefix``."""
        with self._lock:
            return {name[len(prefix):]: value
                    for name, value in self._counters.items()
                    if name.startswith(prefix)}

    def histogram_stats(self, name: str) -> Optional[dict]:
        """``{"count", "sum", "mean", "max"}`` of a histogram, or None."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None or hist["count"] == 0:
                return None
            return {"count": hist["count"], "sum": hist["sum"],
                    "mean": hist["sum"] / hist["count"], "max": hist["max"]}

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready payload of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: {"bounds": list(h["bounds"]),
                                      "counts": list(h["counts"]),
                                      "sum": h["sum"], "count": h["count"],
                                      "max": h["max"]}
                               for name, h in self._histograms.items()},
            }

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold a :meth:`snapshot` payload into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value.  Histograms with mismatched bucket bounds are merged by
        scalar stats only (sum/count/max stay exact, the incoming
        bucket detail is folded into the overflow-safe union via
        re-observation of nothing — in practice all emitters share the
        module-level bucket constants, so bounds always match).
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, incoming in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    self._histograms[name] = {
                        "bounds": list(incoming["bounds"]),
                        "counts": list(incoming["counts"]),
                        "sum": incoming["sum"], "count": incoming["count"],
                        "max": incoming["max"]}
                    continue
                hist["sum"] += incoming["sum"]
                hist["count"] += incoming["count"]
                hist["max"] = max(hist["max"], incoming["max"])
                if hist["bounds"] == list(incoming["bounds"]):
                    for i, c in enumerate(incoming["counts"]):
                        hist["counts"][i] += c
                else:  # pragma: no cover - emitters share bucket constants
                    hist["counts"][-1] += sum(incoming["counts"])


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class Span:
    """One finished-on-exit trace span (open interval while active)."""

    __slots__ = ("name", "span_id", "parent_id", "t_start", "t_end", "attrs")

    def __init__(self, name: str, span_id: str, parent_id: Optional[str],
                 t_start: float, attrs: Optional[dict] = None):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.t_end: Optional[float] = None
        self.attrs: dict = attrs if attrs is not None else {}

    def set(self, **attrs: Any) -> None:
        """Attach structured attributes to the span."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        """Wall-clock span length [s] (0 while still open)."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """The JSONL ``span`` record."""
        return {"type": "span", "name": self.name, "id": self.span_id,
                "parent": self.parent_id, "t0": self.t_start,
                "t1": self.t_end, "attrs": self.attrs}


class _NullSpan:
    """Shared no-op stand-in returned when telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """No-op."""


NULL_SPAN = _NullSpan()

#: Innermost open span of the current context (thread / task local).
_CURRENT_SPAN: ContextVar[Optional[Span]] = ContextVar(
    "repro_telemetry_span", default=None)


class _SpanContext:
    """Context manager that opens a child of the current span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._span = tracer._open(name, attrs)
        self._token = None

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT_SPAN.reset(self._token)
        if exc is not None and "error" not in self._span.attrs:
            self._span.attrs["error"] = type(exc).__name__
        self._tracer._close(self._span)
        return False


class Tracer:
    """Records spans and point events into an in-memory buffer.

    ``id_prefix`` namespaces span ids so worker buffers merge into the
    parent without collisions (chunk tracers use ``c<start>.``).
    """

    def __init__(self, id_prefix: str = ""):
        self.id_prefix = id_prefix
        self._lock = threading.Lock()
        self._records: List[dict] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span as a context manager (child of the current one)."""
        return _SpanContext(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the current span."""
        current = _CURRENT_SPAN.get()
        record = {"type": "event", "name": name, "t": time.time(),
                  "span": current.span_id if current is not None else None,
                  "attrs": attrs}
        with self._lock:
            self._records.append(record)

    def _open(self, name: str, attrs: dict) -> Span:
        parent = _CURRENT_SPAN.get()
        with self._lock:
            span_id = f"{self.id_prefix}{next(self._ids)}"
        return Span(name, span_id,
                    parent.span_id if parent is not None else None,
                    time.time(), attrs)

    def _close(self, span: Span) -> None:
        span.t_end = time.time()
        with self._lock:
            self._records.append(span.to_dict())

    def export_records(self) -> List[dict]:
        """The buffered span/event records (insertion order)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


def worker_label() -> str:
    """``pid/thread-name`` identity of the executing worker."""
    return f"{os.getpid()}/{threading.current_thread().name}"


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class TelemetrySession:
    """One collection scope: a tracer plus a metrics registry.

    The *main* session lives for a whole CLI command / engine run and
    is what :meth:`write_trace` serialises.  *Worker* sessions are
    short-lived per-chunk buffers whose :meth:`export` payload is
    merged back with :meth:`merge_worker`.
    """

    def __init__(self, id_prefix: str = "",
                 meta: Optional[dict] = None):
        self.tracer = Tracer(id_prefix)
        self.metrics = MetricsRegistry()
        self.meta = dict(meta) if meta else {}
        #: Optional sampling-profiler payload (see
        #: :mod:`repro.obs.profiler`); when set, :meth:`write_trace`
        #: appends it as a ``profile`` record so ``repro trace`` can
        #: render the top wall-time sinks next to the span report.
        self.profile: Optional[dict] = None

    # -- worker round-trip ---------------------------------------------
    def export(self) -> dict:
        """Picklable payload a worker ships back with its results."""
        return {"records": self.tracer.export_records(),
                "metrics": self.metrics.snapshot()}

    def merge_worker(self, payload: Optional[dict],
                     parent_span_id: Optional[str] = None) -> None:
        """Fold a worker's :meth:`export` payload into this session.

        Orphan spans (recorded at the top of the worker's context) are
        re-parented under ``parent_span_id`` — typically the run span —
        so the merged trace is one connected tree.
        """
        if not payload:
            return
        records = payload.get("records", [])
        if parent_span_id is not None:
            for record in records:
                if record.get("type") == "span" \
                        and record.get("parent") is None:
                    record = dict(record)
                    record["parent"] = parent_span_id
                self._append(record)
        else:
            for record in records:
                self._append(record)
        self.metrics.merge(payload.get("metrics"))

    def _append(self, record: dict) -> None:
        with self.tracer._lock:
            self.tracer._records.append(record)

    # -- trace export --------------------------------------------------
    def write_trace(self, path: Union[str, Path]) -> int:
        """Write the JSONL trace file; returns the record count.

        Layout: a ``meta`` header line, every ``span`` / ``event``
        record, then one final ``metrics`` line holding the registry
        snapshot.
        """
        records = self.tracer.export_records()
        path = Path(path)
        with open(path, "w", encoding="utf-8") as handle:
            header = {"type": "meta", "schema": TRACE_SCHEMA,
                      "t": time.time()}
            header.update(self.meta)
            handle.write(json.dumps(header) + "\n")
            for record in records:
                handle.write(json.dumps(record) + "\n")
            handle.write(json.dumps({"type": "metrics",
                                     "data": self.metrics.snapshot()}) + "\n")
            if self.profile:
                handle.write(json.dumps({"type": "profile",
                                         "data": self.profile}) + "\n")
        return len(records)


#: The session collecting in the current context (None = disabled).
_ACTIVE_SESSION: ContextVar[Optional[TelemetrySession]] = ContextVar(
    "repro_telemetry_session", default=None)


def active() -> Optional[TelemetrySession]:
    """The session of the current context, or None when disabled."""
    return _ACTIVE_SESSION.get()


def enabled() -> bool:
    """Whether telemetry is collecting in the current context."""
    return _ACTIVE_SESSION.get() is not None


def span(name: str, **attrs: Any):
    """Open a span in the active session; a shared no-op when disabled.

    This is THE hot-path entry point: with no session active it costs
    one ContextVar read and returns the singleton :data:`NULL_SPAN`.
    """
    session = _ACTIVE_SESSION.get()
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point event in the active session (no-op when disabled)."""
    session = _ACTIVE_SESSION.get()
    if session is not None:
        session.tracer.event(name, **attrs)


@contextmanager
def session(meta: Optional[dict] = None
            ) -> Iterator[TelemetrySession]:
    """Activate a main telemetry session in the calling context."""
    sess = TelemetrySession(meta=meta)
    token = _ACTIVE_SESSION.set(sess)
    span_token = _CURRENT_SPAN.set(None)
    try:
        yield sess
    finally:
        _CURRENT_SPAN.reset(span_token)
        _ACTIVE_SESSION.reset(token)


@contextmanager
def worker_session(collect: bool, id_prefix: str = ""
                   ) -> Iterator[Optional[TelemetrySession]]:
    """Per-chunk collection buffer for parallel workers.

    With ``collect=False`` this yields ``None`` and leaves the context
    untouched (beyond masking any ambient session, so a serial-backend
    chunk behaves exactly like a pooled one).  With ``collect=True`` a
    fresh session becomes active for the chunk; the caller ships
    ``session.export()`` back with the chunk results.  ContextVar
    scoping keeps concurrent thread-backend chunks from interleaving.
    """
    sess = TelemetrySession(id_prefix=id_prefix) if collect else None
    token = _ACTIVE_SESSION.set(sess)
    span_token = _CURRENT_SPAN.set(None)
    try:
        yield sess
    finally:
        _CURRENT_SPAN.reset(span_token)
        _ACTIVE_SESSION.reset(token)


# ----------------------------------------------------------------------
# Trace files: reading and aggregation
# ----------------------------------------------------------------------
class TraceError(RuntimeError):
    """The trace file is malformed or uses an unsupported schema."""


@dataclass
class TraceData:
    """A parsed JSONL trace."""

    meta: dict = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)
    corrupt_lines: int = 0
    """Lines that were not valid JSON (a worker killed mid-write leaves
    a truncated tail) — skipped and counted, never fatal."""

    def spans_named(self, name: str) -> List[dict]:
        """Every span record with the given name."""
        return [s for s in self.spans if s.get("name") == name]

    def validate(self) -> None:
        """Structural checks: ids unique, parents resolvable.

        Raises :class:`TraceError` on the first violation — the CI
        smoke job runs this through ``repro trace`` to assert traces
        parse cleanly.
        """
        seen: Dict[str, dict] = {}
        for record in self.spans:
            span_id = record.get("id")
            if not span_id:
                raise TraceError(f"span without id: {record!r}")
            if span_id in seen:
                raise TraceError(f"duplicate span id {span_id!r}")
            if record.get("t1") is None:
                raise TraceError(f"unfinished span {span_id!r}")
            seen[span_id] = record
        for record in self.spans:
            parent = record.get("parent")
            if parent is not None and parent not in seen:
                raise TraceError(
                    f"span {record['id']!r} references unknown parent "
                    f"{parent!r}")


def read_trace(path: Union[str, Path]) -> TraceData:
    """Parse a JSONL trace file written by :meth:`write_trace`.

    Truncated or otherwise non-JSON lines — the signature a killed
    worker leaves when it dies mid-write — are skipped and counted in
    :attr:`TraceData.corrupt_lines` instead of aborting the parse, so
    one mangled tail line never makes a multi-hour trace unreadable.
    ``repro trace`` surfaces the count as a warning.
    """
    trace = TraceData()
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                trace.corrupt_lines += 1
                continue
            if not isinstance(record, dict):
                trace.corrupt_lines += 1
                continue
            kind = record.get("type")
            if kind == "meta":
                if record.get("schema") != TRACE_SCHEMA:
                    raise TraceError(
                        f"unsupported trace schema {record.get('schema')!r}")
                trace.meta = record
            elif kind == "span":
                trace.spans.append(record)
            elif kind == "event":
                trace.events.append(record)
            elif kind == "metrics":
                trace.metrics = record.get("data", {})
            elif kind == "profile":
                trace.profile = record.get("data", {})
            else:
                raise TraceError(
                    f"line {line_no}: unknown record type {kind!r}")
    if not trace.meta:
        raise TraceError("trace has no meta header")
    return trace


def aggregate_spans(spans: Sequence[dict]) -> Dict[str, dict]:
    """Per-name totals: ``{name: {count, total_s, self_s, max_s}}``.

    *Self* time is a span's duration minus its direct children's —
    the number that makes "top time sinks" honest when spans nest
    (a ``sample`` span fully contains its ``solve.dc`` spans).
    """
    child_time: Dict[str, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None:
            duration = (record.get("t1") or 0) - (record.get("t0") or 0)
            child_time[parent] = child_time.get(parent, 0.0) + duration
    stats: Dict[str, dict] = {}
    for record in spans:
        name = record.get("name", "?")
        duration = (record.get("t1") or 0) - (record.get("t0") or 0)
        entry = stats.setdefault(name, {"count": 0, "total_s": 0.0,
                                        "self_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += duration
        entry["self_s"] += max(0.0, duration
                               - child_time.get(record.get("id"), 0.0))
        entry["max_s"] = max(entry["max_s"], duration)
    return stats


# ----------------------------------------------------------------------
# Phase profiling for the bench harness
# ----------------------------------------------------------------------
def profile_phases(fn: Callable[[], Any], repeats: int = 1
                   ) -> Dict[str, dict]:
    """Run ``fn`` under a private session and return its span totals.

    The bench harness (``benchmarks/run_bench.py``) uses this to attach
    a *phase breakdown* — per-span-name total/self times — to each
    ``BENCH_<n>.json`` entry, so snapshots record where the time went,
    not just how much there was.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    with session() as sess:
        with sess.tracer.span("profile"):
            for _ in range(repeats):
                fn()
        records = sess.tracer.export_records()
    spans = [r for r in records if r.get("type") == "span"
             and r.get("name") != "profile"]
    aggregated = aggregate_spans(spans)
    for entry in aggregated.values():
        entry["total_s"] /= repeats
        entry["self_s"] /= repeats
        entry["count"] = entry["count"] / repeats
    return aggregated
