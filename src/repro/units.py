"""Physical constants and unit helpers used throughout :mod:`repro`.

All internal quantities are SI unless a name says otherwise.  The few
deliberate exceptions follow long-standing CMOS-modelling conventions and
are always spelled out in the symbol name:

* gate-oxide thickness helpers accept/return nanometres where the name
  contains ``_nm``;
* mismatch coefficients ``A_VT`` are in the customary mV·µm (so that
  ``sigma = A_VT / sqrt(W_um * L_um)`` yields millivolts);
* current densities for electromigration are in A/cm^2 where noted.

The tiny conversion helpers below keep those conventions explicit at the
call sites instead of burying magic factors inside models.
"""

from __future__ import annotations

import math

# --- Fundamental constants (CODATA, SI) ---------------------------------

#: Elementary charge [C].
Q_ELECTRON = 1.602176634e-19

#: Boltzmann constant [J/K].
K_BOLTZMANN = 1.380649e-23

#: Boltzmann constant [eV/K] — activation energies are quoted in eV.
K_BOLTZMANN_EV = 8.617333262e-5

#: Vacuum permittivity [F/m].
EPS_0 = 8.8541878128e-12

#: Relative permittivity of SiO2.
EPS_R_SIO2 = 3.9

#: Relative permittivity of silicon.
EPS_R_SI = 11.7

#: Permittivity of SiO2 [F/m].
EPS_SIO2 = EPS_R_SIO2 * EPS_0

#: Permittivity of silicon [F/m].
EPS_SI = EPS_R_SI * EPS_0

#: Intrinsic carrier concentration of silicon at 300 K [1/m^3].
NI_SILICON = 1.45e16

#: Standard simulation temperature [K].
T_ROOM = 300.0

#: Zero Celsius in Kelvin.
T_CELSIUS_0 = 273.15

# --- Convenient scale factors -------------------------------------------

NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def thermal_voltage(temperature: float = T_ROOM) -> float:
    """Return the thermal voltage ``kT/q`` [V] at ``temperature`` [K].

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return K_BOLTZMANN * temperature / Q_ELECTRON


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from Celsius to Kelvin."""
    kelvin = temp_c + T_CELSIUS_0
    if kelvin < 0.0:
        raise ValueError(f"{temp_c} degC is below absolute zero")
    return kelvin


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from Kelvin to Celsius."""
    if temp_k < 0.0:
        raise ValueError(f"negative absolute temperature: {temp_k}")
    return temp_k - T_CELSIUS_0


def oxide_capacitance_per_area(tox_m: float) -> float:
    """Gate-oxide capacitance per unit area ``C_ox = eps_SiO2 / t_ox`` [F/m^2].

    ``tox_m`` is the (electrical) oxide thickness in metres.
    """
    if tox_m <= 0.0:
        raise ValueError(f"oxide thickness must be positive, got {tox_m}")
    return EPS_SIO2 / tox_m


def oxide_field(v_gate: float, tox_m: float) -> float:
    """Vertical oxide field magnitude ``|V| / t_ox`` [V/m]."""
    if tox_m <= 0.0:
        raise ValueError(f"oxide thickness must be positive, got {tox_m}")
    return abs(v_gate) / tox_m


def nm(value_nm: float) -> float:
    """Convert nanometres to metres (readability helper)."""
    return value_nm * NANO


def um(value_um: float) -> float:
    """Convert micrometres to metres (readability helper)."""
    return value_um * MICRO


def to_nm(value_m: float) -> float:
    """Convert metres to nanometres."""
    return value_m / NANO


def to_um(value_m: float) -> float:
    """Convert metres to micrometres."""
    return value_m / MICRO


def db(ratio: float) -> float:
    """Convert an amplitude ratio to decibels (20·log10)."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert decibels back to an amplitude ratio."""
    return 10.0 ** (decibels / 20.0)


def seconds_per_year() -> float:
    """Length of a Julian year in seconds (lifetime conventions)."""
    return 365.25 * 24.0 * 3600.0


def years_to_seconds(years: float) -> float:
    """Convert years to seconds."""
    return years * seconds_per_year()


def seconds_to_years(seconds: float) -> float:
    """Convert seconds to years."""
    return seconds / seconds_per_year()
