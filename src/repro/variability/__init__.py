"""Time-zero variability models and Monte-Carlo sampling (paper §2).

* :class:`PelgromModel` — Eq 1 mismatch law with short/narrow extensions;
* :class:`LerModel` — line-edge-roughness σ(V_T) (ref [11]);
* :class:`MismatchSampler` — draws :class:`repro.circuit.DeviceVariation`
  offsets for whole circuits, with layout :class:`Placement` support for
  the distance term;
* :class:`ProcessCorner` / :func:`standard_corners` — inter-die
  systematic corners (TT/FF/SS/FS/SF).
"""

from repro.variability.decomposition import (
    AvtDecomposition,
    decompose_avt,
    ler_component_mv_um,
    oxide_component_mv_um,
    rdf_component_mv_um,
)
from repro.variability.ler import LerModel
from repro.variability.pelgrom import PelgromModel
from repro.variability.sampler import (
    MismatchSampler,
    Placement,
    ProcessCorner,
    standard_corners,
)

__all__ = [
    "AvtDecomposition",
    "LerModel",
    "decompose_avt",
    "ler_component_mv_um",
    "oxide_component_mv_um",
    "rdf_component_mv_um",
    "MismatchSampler",
    "PelgromModel",
    "Placement",
    "ProcessCorner",
    "standard_corners",
]
