"""Variance decomposition of V_T mismatch — what bends Fig 1.

The paper's Fig 1 discussion: Tuinhout's benchmark (A_VT tracks t_ox)
"no longer holds" below 10 nm because variation sources that do NOT
scale with the oxide start to dominate.  This module decomposes A_VT
into its physical contributors so the Fig 1 floor is *emergent* rather
than a fitted constant:

* **oxide/gate-stack component** — interface-charge and gate-granularity
  variation, the part Tuinhout's 1 mV·µm/nm benchmark captures:
  ``A_ox = k_ox · t_ox``;
* **random dopant fluctuation (RDF)** — Poisson statistics of the
  depletion-charge count (Stolk's formula): for a fixed doping profile
  the ΔV_T contribution scales with ``t_ox·N_A^{1/4}``; channel doping
  RISES with scaling (to control short-channel effects), so this term
  refuses to follow the oxide down;
* **line-edge roughness** — gate-length noise times the V_T roll-off
  slope, area-normalized (from :mod:`repro.variability.ler`).

Components are independent → they RSS into the total:

    A_VT² = A_ox² + A_RDF² + A_LER²
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.technology.node import TechnologyNode
from repro.variability.ler import LerModel

#: Tuinhout slope of the gate-stack component [mV·µm per nm of t_ox].
K_OXIDE_MV_UM_PER_NM = 0.95

#: RDF proportionality constant, calibrated so the three components RSS
#: to the shipped library A_VT within a few percent at every node.
K_RDF = 1.0


def channel_doping_cm3(tech: TechnologyNode) -> float:
    """Synthetic channel doping N_A per node [cm⁻³].

    Doping (halo-averaged effective value) rises steeply as L shrinks
    to hold short-channel effects at bay — 1e17 cm⁻³ at 350 nm to the
    low-1e19 range at 32 nm.  The 2.2 exponent is the calibration knob
    that makes the RDF component refuse to follow the oxide down,
    reproducing the measured Fig 1 saturation.
    """
    lmin_nm = tech.lmin_m / units.NANO
    return 1.0e17 * (350.0 / lmin_nm) ** 2.2


@dataclass(frozen=True)
class AvtDecomposition:
    """The RSS components of A_VT for one node [mV·µm]."""

    node: str
    oxide_mv_um: float
    rdf_mv_um: float
    ler_mv_um: float

    @property
    def total_mv_um(self) -> float:
        """RSS total A_VT [mV·µm]."""
        return math.sqrt(self.oxide_mv_um ** 2 + self.rdf_mv_um ** 2
                         + self.ler_mv_um ** 2)

    @property
    def benchmark_mv_um(self) -> float:
        """Tuinhout's forecast (oxide tracking only) [mV·µm]."""
        return self.oxide_mv_um

    @property
    def floor_fraction(self) -> float:
        """Share of variance NOT tracking the oxide (the Fig 1 bend)."""
        total_var = self.total_mv_um ** 2
        return (self.rdf_mv_um ** 2 + self.ler_mv_um ** 2) / total_var


def oxide_component_mv_um(tech: TechnologyNode) -> float:
    """Gate-stack A_VT component: the Tuinhout-tracking part."""
    return K_OXIDE_MV_UM_PER_NM * tech.tox_nm


def rdf_component_mv_um(tech: TechnologyNode) -> float:
    """Random-dopant-fluctuation A_VT component (Stolk-style scaling).

    ``A_RDF ∝ t_ox · N_A^{1/4}`` with N_A in 1e18 cm⁻³ units — the
    depletion charge count is Poisson, its V_T leverage is C_ox⁻¹.
    """
    na_1e18 = channel_doping_cm3(tech) / 1e18
    return K_RDF * tech.tox_nm * na_1e18 ** 0.25


def ler_component_mv_um(tech: TechnologyNode) -> float:
    """LER A_VT component, area-normalized to mV·µm.

    The LER model gives σ(V_T) for one geometry; multiplying by
    √(W·L) at minimum geometry expresses it as an equivalent Pelgrom
    coefficient (approximately geometry-independent near minimum L).
    """
    ler = LerModel.for_technology(tech)
    w, l = 4 * tech.wmin_m, tech.lmin_m
    sigma_pair_v = ler.sigma_delta_vt_v(w, l)
    area_um = math.sqrt((w / units.MICRO) * (l / units.MICRO))
    return sigma_pair_v * 1e3 * area_um


def decompose_avt(tech: TechnologyNode) -> AvtDecomposition:
    """Full A_VT decomposition for one technology node."""
    return AvtDecomposition(
        node=tech.name,
        oxide_mv_um=oxide_component_mv_um(tech),
        rdf_mv_um=rdf_component_mv_um(tech),
        ler_mv_um=ler_component_mv_um(tech),
    )
