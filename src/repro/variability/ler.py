"""Line-edge-roughness (LER) variability model (paper §2, ref [11]).

The gate edge produced by lithography/etch is rough: its deviation from
the drawn line is a random process with an RMS amplitude Δ (≈ 1–2 nm)
and a correlation length Λ (≈ 20–40 nm).  Along the width W, a device
averages over roughly ``N = max(1, W/Λ)`` independent gate-length
samples, so the effective channel length fluctuates with

    σ(L_eff) = Δ_rms / sqrt(max(1, W / Λ))

and the resulting threshold fluctuation is that length noise times the
V_T roll-off sensitivity ``|dV_T/dL|`` — which grows steeply at short
channels because of short-channel effects:

    |dV_T/dL|(L) = S0 · exp(−(L − L_min)/L_roll)

LER therefore becomes "a serious yield-threatening problem" (the paper's
words) exactly when L shrinks toward Λ: it adds variance on top of the
Pelgrom area law and does NOT average away with larger L at fixed W.
Experiment E11 regenerates this divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.technology.node import TechnologyNode


@dataclass(frozen=True)
class LerModel:
    """Synthetic LER → σ(V_T) model."""

    rms_amplitude_m: float = 1.5e-9
    """RMS edge deviation Δ [m] (≈1.5 nm, roughly constant over nodes)."""

    correlation_length_m: float = 30e-9
    """Edge autocorrelation length Λ [m]."""

    sensitivity_mv_per_nm: float = 2.0
    """|dV_T/dL| at the technology's minimum length S0 [mV/nm]."""

    rolloff_length_m: float = 40e-9
    """Decay length L_roll of the V_T roll-off sensitivity [m]."""

    lmin_m: float = 65e-9
    """Reference minimum channel length of the technology [m]."""

    def __post_init__(self) -> None:
        for name in ("rms_amplitude_m", "correlation_length_m",
                     "sensitivity_mv_per_nm", "rolloff_length_m", "lmin_m"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")

    @staticmethod
    def for_technology(tech: TechnologyNode) -> "LerModel":
        """Build an LER model scaled to a technology node.

        The roll-off sensitivity at L_min grows for smaller nodes (halo/
        pocket implants steepen V_T(L)); the roughness amplitude itself
        barely improves with scaling — which is why LER's *relative*
        impact explodes (ref [11]).  The ~7 mV/nm anchor at 90 nm is in
        the range reported for halo-implanted V_T roll-off slopes.
        """
        lmin = tech.lmin_m
        sensitivity = 7.0 * (90e-9 / lmin)
        return LerModel(
            rms_amplitude_m=1.5e-9,
            correlation_length_m=30e-9,
            sensitivity_mv_per_nm=sensitivity,
            rolloff_length_m=0.6 * lmin,
            lmin_m=lmin,
        )

    # ------------------------------------------------------------------
    def independent_segments(self, w_m: float) -> float:
        """Number of statistically independent edge segments along W."""
        if w_m <= 0.0:
            raise ValueError(f"W must be positive, got {w_m}")
        return max(1.0, w_m / self.correlation_length_m)

    def sigma_leff_m(self, w_m: float) -> float:
        """σ of the width-averaged effective channel length [m]."""
        return self.rms_amplitude_m / math.sqrt(self.independent_segments(w_m))

    def dvt_dl_v_per_m(self, l_m: float) -> float:
        """V_T roll-off sensitivity |dV_T/dL| at channel length L [V/m]."""
        if l_m <= 0.0:
            raise ValueError(f"L must be positive, got {l_m}")
        s0_v_per_m = self.sensitivity_mv_per_nm * units.MILLI / units.NANO
        return s0_v_per_m * math.exp(-(l_m - self.lmin_m) / self.rolloff_length_m)

    def sigma_vt_v(self, w_m: float, l_m: float) -> float:
        """LER-induced σ(V_T) of a single device [V]."""
        return self.dvt_dl_v_per_m(l_m) * self.sigma_leff_m(w_m)

    def sigma_delta_vt_v(self, w_m: float, l_m: float) -> float:
        """LER contribution to the PAIR mismatch σ(ΔV_T) [V] (×√2)."""
        return math.sqrt(2.0) * self.sigma_vt_v(w_m, l_m)
