"""Pelgrom-law mismatch model (paper §2, Eq 1).

The paper's Eq 1 for the threshold-voltage mismatch of two identically
drawn transistors at mutual distance D::

    σ²(ΔV_T) = A_VT² / (W·L)  +  S_VT² · D²

with the widely used extension for short/narrow channels (refs [5],
[41]) implemented as multiplicative variance corrections ``(1 + L*/L)``
and ``(1 + W*/W)``.  The same functional form, with its own
coefficients, applies to the current factor β and body factor γ
(refs [23], [31]).

Conventions: W, L, D in µm inside the formulas (matching how A_VT is
quoted in mV·µm); the public API takes SI metres and returns SI volts /
fractions, doing the conversion internally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.technology.node import MismatchCoefficients, TechnologyNode


@dataclass(frozen=True)
class PelgromModel:
    """Evaluates Eq 1 (and its β/γ analogues) for one technology."""

    coefficients: MismatchCoefficients

    @staticmethod
    def for_technology(tech: TechnologyNode) -> "PelgromModel":
        """Build the model from a technology node's coefficient set."""
        return PelgromModel(tech.mismatch)

    # ------------------------------------------------------------------
    # Geometry handling
    # ------------------------------------------------------------------
    @staticmethod
    def _geometry_um(w_m: float, l_m: float) -> tuple:
        if w_m <= 0.0 or l_m <= 0.0:
            raise ValueError(f"W and L must be positive, got W={w_m}, L={l_m}")
        return w_m / units.MICRO, l_m / units.MICRO

    def _geometry_correction(self, w_um: float, l_um: float) -> float:
        """Short/narrow-channel variance multiplier (≥ 1)."""
        c = self.coefficients
        return 1.0 + c.short_channel_l_um / l_um + c.narrow_channel_w_um / w_um

    # ------------------------------------------------------------------
    # Pair mismatch sigmas (Eq 1 — difference between two devices)
    # ------------------------------------------------------------------
    def sigma_delta_vt_v(self, w_m: float, l_m: float,
                         distance_m: float = 0.0) -> float:
        """σ(ΔV_T) of a device pair [V] — Eq 1 with extensions."""
        if distance_m < 0.0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        w_um, l_um = self._geometry_um(w_m, l_m)
        d_um = distance_m / units.MICRO
        c = self.coefficients
        area_var_mv2 = (c.a_vt_mv_um ** 2 / (w_um * l_um)
                        * self._geometry_correction(w_um, l_um))
        dist_var_mv2 = (c.s_vt_mv_per_um * d_um) ** 2
        return math.sqrt(area_var_mv2 + dist_var_mv2) * units.MILLI

    def sigma_delta_beta_fraction(self, w_m: float, l_m: float,
                                  distance_m: float = 0.0) -> float:
        """σ(Δβ/β) of a device pair [fraction, e.g. 0.01 = 1 %]."""
        if distance_m < 0.0:
            raise ValueError(f"distance must be non-negative, got {distance_m}")
        w_um, l_um = self._geometry_um(w_m, l_m)
        d_um = distance_m / units.MICRO
        c = self.coefficients
        area_var_pct2 = c.a_beta_pct_um ** 2 / (w_um * l_um)
        dist_var_pct2 = (c.s_beta_pct_per_um * d_um) ** 2
        return math.sqrt(area_var_pct2 + dist_var_pct2) / 100.0

    def sigma_delta_gamma_v(self, w_m: float, l_m: float) -> float:
        """σ(Δγ) of a device pair, expressed as an equivalent V_T
        contribution at nominal back bias [V]."""
        w_um, l_um = self._geometry_um(w_m, l_m)
        return (self.coefficients.a_gamma_mv_um / math.sqrt(w_um * l_um)
                * units.MILLI)

    # ------------------------------------------------------------------
    # Single-device sigmas (deviation from the wafer mean)
    # ------------------------------------------------------------------
    def sigma_single_vt_v(self, w_m: float, l_m: float) -> float:
        """σ of ONE device's V_T deviation [V].

        A pair difference of two iid deviations has √2 larger sigma, so
        the single-device value is the Eq 1 area term divided by √2.
        """
        return self.sigma_delta_vt_v(w_m, l_m) / math.sqrt(2.0)

    def sigma_single_beta_fraction(self, w_m: float, l_m: float) -> float:
        """σ of ONE device's relative β deviation [fraction]."""
        return self.sigma_delta_beta_fraction(w_m, l_m) / math.sqrt(2.0)

    # ------------------------------------------------------------------
    # Design helpers
    # ------------------------------------------------------------------
    def area_for_sigma_vt(self, target_sigma_v: float,
                          aspect_ratio: float = 1.0) -> tuple:
        """Smallest (W, L) [m] with pair σ(ΔV_T) ≤ ``target_sigma_v``.

        ``aspect_ratio`` is W/L.  Ignores the distance term (D = 0) but
        includes the short/narrow correction, solved by bisection.  This
        is the sizing rule behind "intrinsic accuracy costs area"
        (paper §5.1).
        """
        if target_sigma_v <= 0.0:
            raise ValueError("target sigma must be positive")
        if aspect_ratio <= 0.0:
            raise ValueError("aspect ratio must be positive")

        def sigma_for_length(l_um: float) -> float:
            w_um = aspect_ratio * l_um
            return self.sigma_delta_vt_v(w_um * units.MICRO, l_um * units.MICRO)

        lo, hi = 1e-3, 1.0
        while sigma_for_length(hi) > target_sigma_v:
            hi *= 2.0
            if hi > 1e5:
                raise ValueError("target sigma unreachable within sane area")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if sigma_for_length(mid) > target_sigma_v:
                lo = mid
            else:
                hi = mid
        l_um = hi
        return aspect_ratio * l_um * units.MICRO, l_um * units.MICRO
