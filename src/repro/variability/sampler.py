"""Monte-Carlo sampling of device variations (paper §2).

The sampler turns the analytic mismatch laws of
:mod:`repro.variability.pelgrom` (and optionally
:mod:`repro.variability.ler`) into concrete :class:`DeviceVariation`
offsets attached to the MOSFETs of a circuit:

* every device receives an independent *local* deviation with the
  single-device sigma (Eq 1 area term / √2, including the short/narrow
  extension and, if enabled, the LER contribution);
* a wafer-level random *gradient* reproduces the distance term
  ``S_VT·D``: devices placed with :class:`Placement` coordinates pick up
  a systematic offset ``g · position`` where the gradient components are
  drawn once per sample with σ = S_VT (so a pair separated by D differs
  by σ = S_VT·D in any direction).

The sampler is deterministic given its ``numpy.random.Generator`` —
the Monte-Carlo yield engine (:mod:`repro.core.yield_analysis`) seeds it
per trial.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import units
from repro.circuit.mosfet import DeviceVariation, Mosfet
from repro.circuit.netlist import Circuit
from repro.technology.node import TechnologyNode
from repro.variability.ler import LerModel
from repro.variability.pelgrom import PelgromModel


@dataclass(frozen=True)
class Placement:
    """Layout position of a device [m] (for the distance term of Eq 1)."""

    x_m: float
    y_m: float

    def distance_to(self, other: "Placement") -> float:
        """Euclidean distance to another placement [m]."""
        return math.hypot(self.x_m - other.x_m, self.y_m - other.y_m)


class MismatchSampler:
    """Draws :class:`DeviceVariation` offsets for whole circuits."""

    def __init__(self, tech: TechnologyNode,
                 rng: Optional[np.random.Generator] = None,
                 include_ler: bool = False,
                 ler_model: Optional[LerModel] = None):
        self.tech = tech
        self.pelgrom = PelgromModel.for_technology(tech)
        self.include_ler = include_ler
        self.ler = ler_model if ler_model is not None else LerModel.for_technology(tech)
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Per-device sigmas
    # ------------------------------------------------------------------
    def sigma_single_vt_v(self, w_m: float, l_m: float) -> float:
        """Single-device σ(V_T) [V] including LER when enabled."""
        pelgrom = self.pelgrom.sigma_single_vt_v(w_m, l_m)
        if not self.include_ler:
            return pelgrom
        return math.hypot(pelgrom, self.ler.sigma_vt_v(w_m, l_m))

    def sigma_single_beta_fraction(self, w_m: float, l_m: float) -> float:
        """Single-device σ(β)/β [fraction]."""
        return self.pelgrom.sigma_single_beta_fraction(w_m, l_m)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_gradient_v_per_m(self) -> Tuple[float, float]:
        """Draw the wafer V_T gradient (gx, gy) [V/m] for one MC sample."""
        s_vt_v_per_m = (self.tech.mismatch.s_vt_mv_per_um
                        * units.MILLI / units.MICRO)
        gx, gy = self.rng.normal(0.0, s_vt_v_per_m, size=2)
        return float(gx), float(gy)

    def sample_device(self, w_m: float, l_m: float,
                      placement: Optional[Placement] = None,
                      gradient_v_per_m: Tuple[float, float] = (0.0, 0.0),
                      ) -> DeviceVariation:
        """Draw one device's random offsets."""
        sigma_vt = self.sigma_single_vt_v(w_m, l_m)
        sigma_beta = self.sigma_single_beta_fraction(w_m, l_m)
        sigma_gamma_v = self.pelgrom.sigma_delta_gamma_v(w_m, l_m) / math.sqrt(2.0)
        delta_vt = float(self.rng.normal(0.0, sigma_vt))
        if placement is not None:
            gx, gy = gradient_v_per_m
            delta_vt += gx * placement.x_m + gy * placement.y_m
        beta_factor = float(1.0 + self.rng.normal(0.0, sigma_beta))
        beta_factor = max(beta_factor, 0.05)
        gamma_rel_sigma = sigma_gamma_v / max(self.tech.gamma_body_sqrt_v, 1e-9)
        gamma_factor = float(1.0 + self.rng.normal(0.0, gamma_rel_sigma))
        gamma_factor = max(gamma_factor, 0.05)
        return DeviceVariation(delta_vt_v=delta_vt, beta_factor=beta_factor,
                               gamma_factor=gamma_factor)

    def sample_devices_batch(self, w_m: float, l_m: float, n_samples: int
                             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized draw of ``n_samples`` independent device offsets.

        Returns ``(delta_vt_v, beta_factor, gamma_factor)`` arrays with
        the same per-draw distributions (and the same 0.05 clamping) as
        :meth:`sample_device`, but in three ``Generator`` calls instead
        of ``3 · n_samples`` — the fast path for characterization
        sweeps and high-sigma tail studies that need 10⁴–10⁶ variates
        of one geometry.  The stream differs from an equivalent scalar
        loop (array draws consume the generator in blocks), so use one
        style or the other consistently within an experiment.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        sigma_vt = self.sigma_single_vt_v(w_m, l_m)
        sigma_beta = self.sigma_single_beta_fraction(w_m, l_m)
        sigma_gamma_v = self.pelgrom.sigma_delta_gamma_v(w_m, l_m) / math.sqrt(2.0)
        gamma_rel_sigma = sigma_gamma_v / max(self.tech.gamma_body_sqrt_v, 1e-9)
        delta_vt = self.rng.normal(0.0, sigma_vt, size=n_samples)
        beta = np.maximum(1.0 + self.rng.normal(0.0, sigma_beta, n_samples),
                          0.05)
        gamma = np.maximum(1.0 + self.rng.normal(0.0, gamma_rel_sigma,
                                                 n_samples), 0.05)
        return delta_vt, beta, gamma

    def sample_pair_delta_vt_batch_v(self, w_m: float, l_m: float,
                                     n_samples: int,
                                     distance_m: float = 0.0) -> np.ndarray:
        """Vectorized :meth:`sample_pair_delta_vt_v` — ``n_samples`` ΔV_T
        draws of one matched pair in four ``Generator`` calls."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        local = self.sigma_single_vt_v(w_m, l_m)
        d1 = self.rng.normal(0.0, local, size=n_samples)
        d2 = self.rng.normal(0.0, local, size=n_samples)
        s_vt_v_per_m = (self.tech.mismatch.s_vt_mv_per_um
                        * units.MILLI / units.MICRO)
        gx = self.rng.normal(0.0, s_vt_v_per_m, size=n_samples)
        # The scalar path draws (and discards) a y gradient component
        # per sample; consume the same number of variates here.
        self.rng.normal(0.0, s_vt_v_per_m, size=n_samples)
        return (d1 - d2) + gx * distance_m

    def assign(self, circuit: Circuit,
               placements: Optional[Dict[str, Placement]] = None) -> None:
        """Draw and attach fresh variations to every MOSFET in ``circuit``.

        ``placements`` maps device names to layout positions; devices
        without a placement see only the local (area-law) component.
        One gradient is drawn per call — i.e. per Monte-Carlo sample.
        """
        gradient = self.sample_gradient_v_per_m() if placements else (0.0, 0.0)
        for device in circuit.mosfets:
            placement = placements.get(device.name) if placements else None
            device.variation = self.sample_device(
                device.params.w_m, device.params.l_m, placement, gradient)

    def clear(self, circuit: Circuit) -> None:
        """Reset every MOSFET in ``circuit`` to nominal (no variation)."""
        for device in circuit.mosfets:
            device.variation = DeviceVariation()

    # ------------------------------------------------------------------
    # Matched pairs (the measurement the Eq 1 literature quotes)
    # ------------------------------------------------------------------
    def sample_pair_delta_vt_v(self, w_m: float, l_m: float,
                               distance_m: float = 0.0) -> float:
        """Draw ΔV_T of one matched pair [V] (local + distance terms).

        Used by the tests and E2 to verify the sampled statistics
        reproduce Eq 1.
        """
        local = self.pelgrom.sigma_single_vt_v(w_m, l_m)
        if self.include_ler:
            local = math.hypot(local, self.ler.sigma_vt_v(w_m, l_m))
        d1 = self.rng.normal(0.0, local)
        d2 = self.rng.normal(0.0, local)
        gx, _ = self.sample_gradient_v_per_m()
        return float((d1 - d2) + gx * distance_m)


@dataclass(frozen=True)
class ProcessCorner:
    """A global (inter-die) process corner: systematic shifts applied to
    every device of a die.  Complements the intra-die mismatch above —
    the paper's "systematic errors" bucket."""

    name: str
    vt_shift_n_v: float
    vt_shift_p_v: float
    beta_factor_n: float
    beta_factor_p: float

    def apply(self, circuit: Circuit) -> None:
        """Overwrite every device's variation with this corner's shift."""
        for device in circuit.mosfets:
            is_n = device.params.polarity == "n"
            device.variation = DeviceVariation(
                delta_vt_v=self.vt_shift_n_v if is_n else self.vt_shift_p_v,
                beta_factor=self.beta_factor_n if is_n else self.beta_factor_p,
            )


def standard_corners(tech: TechnologyNode,
                     vt_sigma_v: float = 0.03,
                     beta_sigma: float = 0.05) -> Dict[str, ProcessCorner]:
    """The five classic corners (TT/FF/SS/FS/SF) at ±3σ global spread.

    "F" (fast) = lower |V_T| and higher β; first letter NMOS, second PMOS.
    """
    dv = 3.0 * vt_sigma_v
    db = 3.0 * beta_sigma
    corners = {
        "TT": ProcessCorner("TT", 0.0, 0.0, 1.0, 1.0),
        "FF": ProcessCorner("FF", -dv, -dv, 1.0 + db, 1.0 + db),
        "SS": ProcessCorner("SS", dv, dv, 1.0 - db, 1.0 - db),
        "FS": ProcessCorner("FS", -dv, dv, 1.0 + db, 1.0 - db),
        "SF": ProcessCorner("SF", dv, -dv, 1.0 - db, 1.0 + db),
    }
    return corners
