"""Differential verification: analytic oracles, cross-path agreement
checks, and golden paper-figure artifacts (the `repro verify` gate)."""

from repro.verify.differential import (
    BATCH_AGREEMENT_FACTORS,
    Deviation,
    VerificationReport,
    batch_state_bound,
    check_oracle,
    run_corpus,
    run_differential,
    run_oracles,
    ulp_diff,
)
from repro.verify.experiments import (
    EXPERIMENTS,
    Experiment,
    Quantity,
    experiment_index,
    run_experiments,
)
from repro.verify.golden import (
    GOLDEN_SCHEMA,
    GoldenDrift,
    GoldenError,
    diff_goldens,
    load_goldens,
    load_manifest,
    write_goldens,
)
from repro.verify.oracles import Oracle, Tolerance, default_oracles

__all__ = [
    "BATCH_AGREEMENT_FACTORS",
    "Deviation",
    "VerificationReport",
    "batch_state_bound",
    "check_oracle",
    "run_corpus",
    "run_differential",
    "run_oracles",
    "ulp_diff",
    "EXPERIMENTS",
    "Experiment",
    "Quantity",
    "experiment_index",
    "run_experiments",
    "GOLDEN_SCHEMA",
    "GoldenDrift",
    "GoldenError",
    "diff_goldens",
    "load_goldens",
    "load_manifest",
    "write_goldens",
    "Oracle",
    "Tolerance",
    "default_oracles",
]
