"""Differential harness: every solver path against every oracle.

Two layers of checks feed one structured :class:`VerificationReport`:

* **oracle checks** — each oracle in :mod:`repro.verify.oracles` is
  measured through every solver path it advertises and compared against
  its closed form within the oracle's documented :class:`Tolerance`;
* **cross-path checks** — a corpus of paper circuits is pushed through
  redundant solver paths that must agree with *each other*: scalar vs
  batched DC sweeps (within the per-circuit-class factors below),
  sparse-vs-dense factorisation and finite-difference-vs-analytic
  Jacobians on the OTA operating point (within the Newton stopping
  band), backward-Euler vs trapezoidal transient (within the BE band),
  and serial/thread/process Monte-Carlo with identical seeds
  (bit-identical by the repo's determinism contract; ``batch_size=``
  within Newton tolerance).

Deviations are ULP-aware: every record carries the distance in
representable doubles alongside the absolute error, so "equal",
"arithmetic noise" and "genuinely different fixed point" are
distinguishable in the report.

Telemetry: the harness opens ``verify.differential`` /
``verify.oracle`` / ``verify.corpus`` spans and counts
``verify.checks`` / ``verify.failures`` when a session is active, so a
traced `repro verify --trace` run slots into the standard span tree.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.circuit import NewtonOptions, dc_sweep, transient
from repro.verify.oracles import Oracle, RcStepOracle, Tolerance, default_oracles

#: Residual batched-vs-scalar gap per circuit class, in multiples of the
#: Newton stopping criterion ``vtol + reltol·max(|x|, 1)`` per unknown.
#: Both paths iterate to the same fixed point with the same criterion,
#: so each can stop anywhere inside one stopping-band of it; the sum of
#: two such stops plus the damped-path difference is what these factors
#: bound.  Measured worst cases (see docs/verification.md): linear
#: circuits agree to machine epsilon; mirrors/references land well under
#: 1x; the differential pair and OTA need the pilot-seeded lanes a bit
#: more slack; the inverter VTC's high-gain transition region is the
#: worst measured case.  The old blanket 10x bound in tests/test_batch.py
#: is replaced by these.
BATCH_AGREEMENT_FACTORS: Dict[str, float] = {
    "linear": 0.1,
    "simple_current_mirror": 1.0,
    "beta_multiplier_reference": 1.0,
    "differential_pair": 2.0,
    "five_transistor_ota": 2.0,
    "inverter_vtc": 4.0,
}


def ulp_diff(a: float, b: float) -> float:
    """Distance between two doubles in units of representable values.

    0 for exact equality (including two zeros of different sign);
    ``inf`` when either value is NaN/inf.
    """
    if a == b:
        return 0.0
    if not (math.isfinite(a) and math.isfinite(b)):
        return math.inf
    return float(abs(_ordinal(a) - _ordinal(b)))


def _ordinal(x: float) -> int:
    """Map a finite double onto the integer line, order-preserving."""
    (n,) = struct.unpack("<q", struct.pack("<d", x))
    return n if n >= 0 else -(n & 0x7FFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class Deviation:
    """One measured-vs-reference comparison."""

    subject: str
    """Oracle or corpus-circuit name."""

    path: str
    """Solver path that produced ``measured``."""

    quantity: str
    reference: float
    measured: float
    bound: float
    """Absolute acceptance bound at ``reference``."""

    note: str = ""

    @property
    def error(self) -> float:
        return abs(self.measured - self.reference)

    @property
    def ulp(self) -> float:
        return ulp_diff(self.measured, self.reference)

    @property
    def passed(self) -> bool:
        return self.error <= self.bound

    @property
    def margin(self) -> float:
        """error/bound — < 1 passes; ``inf`` for a zero bound miss."""
        if self.bound > 0.0:
            return self.error / self.bound
        return 0.0 if self.error == 0.0 else math.inf

    def to_dict(self) -> dict:
        return {
            "subject": self.subject, "path": self.path,
            "quantity": self.quantity, "reference": self.reference,
            "measured": self.measured, "bound": self.bound,
            "error": self.error, "ulp": self.ulp, "passed": self.passed,
            "note": self.note,
        }


@dataclass
class VerificationReport:
    """Structured outcome of a differential (or golden-diff) run."""

    deviations: List[Deviation] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def n_checks(self) -> int:
        return len(self.deviations)

    @property
    def failures(self) -> List[Deviation]:
        return [d for d in self.deviations if not d.passed]

    @property
    def passed(self) -> bool:
        return not self.failures

    def worst_per_subject(self) -> Dict[str, Deviation]:
        """The largest error/bound ratio seen per subject."""
        worst: Dict[str, Deviation] = {}
        for dev in self.deviations:
            key = f"{dev.subject}:{dev.path}"
            if key not in worst or dev.margin > worst[key].margin:
                worst[key] = dev
        return worst

    def extend(self, deviations: Sequence[Deviation]) -> None:
        self.deviations.extend(deviations)

    def to_dict(self) -> dict:
        return {"meta": dict(self.meta), "passed": self.passed,
                "n_checks": self.n_checks,
                "deviations": [d.to_dict() for d in self.deviations]}


def _count(metric: str, value: float = 1.0) -> None:
    session = telemetry.active()
    if session is not None:
        session.metrics.inc(metric, value)


def check_oracle(oracle: Oracle,
                 paths: Optional[Sequence[str]] = None) -> List[Deviation]:
    """Measure ``oracle`` through each path and compare to its closed form."""
    reference = oracle.analytic()
    out: List[Deviation] = []
    for path in (paths if paths is not None else oracle.paths()):
        with telemetry.span("verify.oracle", oracle=oracle.name, path=path):
            measured = oracle.measure(path)
            tol = oracle.tolerance(path)
            for quantity, ref in reference.items():
                got = measured[quantity]
                bound = tol.bound(ref)
                dev = Deviation(subject=oracle.name, path=path,
                                quantity=quantity, reference=ref,
                                measured=got, bound=bound, note=tol.note)
                if not dev.passed and tol.ulps and dev.ulp <= tol.ulps:
                    dev = Deviation(subject=oracle.name, path=path,
                                    quantity=quantity, reference=ref,
                                    measured=got, bound=max(bound, dev.error),
                                    note=tol.note + " (ulp-accepted)")
                out.append(dev)
                _count("verify.checks")
                if not dev.passed:
                    _count("verify.failures")
    return out


def run_oracles(oracles: Optional[Sequence[Oracle]] = None
                ) -> VerificationReport:
    """Run the full oracle library (or a custom list)."""
    report = VerificationReport(meta={"kind": "oracles"})
    for oracle in (oracles if oracles is not None else default_oracles()):
        report.extend(check_oracle(oracle))
    return report


# ----------------------------------------------------------------------
# Cross-path corpus checks
# ----------------------------------------------------------------------
def _batch_corpus(tech) -> list:
    """(class key, circuit, swept source, values) corpus rows."""
    from repro.circuits import (
        beta_multiplier_reference,
        differential_pair,
        five_transistor_ota,
        inverter,
        simple_current_mirror,
    )

    pair = differential_pair(tech)
    vcm = pair.circuit["vinp"].spec.dc_value()
    ota = five_transistor_ota(tech)
    vcm_ota = ota.circuit["vinp"].spec.dc_value()
    return [
        ("differential_pair", pair.circuit, "vinp",
         np.linspace(vcm - 0.2, vcm + 0.2, 21)),
        ("five_transistor_ota", ota.circuit, "vinp",
         np.linspace(vcm_ota - 0.1, vcm_ota + 0.1, 11)),
        ("simple_current_mirror", simple_current_mirror(tech).circuit,
         "vout", np.linspace(0.05, tech.vdd, 17)),
        ("inverter_vtc", inverter(tech).circuit, "vin",
         np.linspace(0.0, tech.vdd, 21)),
        ("beta_multiplier_reference",
         beta_multiplier_reference(tech).circuit, "vdd",
         np.linspace(0.8 * tech.vdd, 1.1 * tech.vdd, 9)),
    ]


def batch_state_bound(x_scalar: np.ndarray, factor: float,
                      options: Optional[NewtonOptions] = None) -> np.ndarray:
    """Per-unknown agreement bound: ``factor·(vtol + reltol·scale)``."""
    opts = options if options is not None else NewtonOptions()
    scale = np.maximum(np.abs(np.asarray(x_scalar)), 1.0)
    return factor * (opts.vtol + opts.reltol * scale)


def _check_batch_vs_scalar(name, circuit, source, values) -> Deviation:
    factor = BATCH_AGREEMENT_FACTORS[name]
    scalar = dc_sweep(circuit, source, values, batch=False)
    batched = dc_sweep(circuit, source, values, batch=True)
    worst = None
    for sol_s, sol_b in zip(scalar, batched):
        bound = batch_state_bound(sol_s.x, factor)
        ratio = np.abs(sol_b.x - sol_s.x) / bound
        i = int(np.argmax(ratio))
        if worst is None or ratio[i] > worst[0]:
            worst = (float(ratio[i]), float(sol_s.x[i]), float(sol_b.x[i]),
                     float(bound[i]))
    _, ref, got, bound = worst
    return Deviation(
        subject=name, path="dc.batch-vs-scalar",
        quantity="worst_state_delta", reference=ref, measured=got,
        bound=bound,
        note=f"per-class factor {factor:g}x Newton stopping criterion")


def _check_solver_variants(tech) -> List[Deviation]:
    """Linear-solver and Jacobian variants must share the fixed point.

    The sparse (CSC/``splu``) factorisation and the finite-difference
    Jacobian fallback run the same Newton loop with the same residual
    and stopping criterion as the default dense/analytic path, so on
    the five-transistor OTA each must land within the stopping band of
    the dense/analytic solution (FD gets 2x: its Jacobian carries
    O(h²) truncation error, which perturbs the final damped step).
    """
    from repro.circuit import dc_operating_point, fd_jacobians, sparse_mode
    from repro.circuits import five_transistor_ota

    fx = five_transistor_ota(tech)
    base = dc_operating_point(fx.circuit)
    # The threshold is read at engine *build* time and engines are
    # cached per circuit object, so the sparse leg needs a fresh build.
    with sparse_mode(1):
        fx_sparse = five_transistor_ota(tech)
        sparse = dc_operating_point(fx_sparse.circuit)
    with fd_jacobians():
        fd = dc_operating_point(fx.circuit)
    out = []
    for path, sol, factor in (("dc.sparse-vs-dense", sparse, 1.0),
                              ("dc.fd-vs-analytic", fd, 2.0)):
        bound = batch_state_bound(base.x, factor)
        ratio = np.abs(sol.x - base.x) / bound
        i = int(np.argmax(ratio))
        out.append(Deviation(
            subject="five_transistor_ota", path=path,
            quantity="worst_state_delta", reference=float(base.x[i]),
            measured=float(sol.x[i]), bound=float(bound[i]),
            note=f"{factor:g}x Newton stopping criterion"))
    return out


def _check_transient_cross() -> Deviation:
    """BE vs trapezoidal on the RC oracle — must agree within BE's band."""
    oracle = RcStepOracle()
    be = oracle.measure("tran.be")
    trap = oracle.measure("tran.trap")
    quantity = f"v_at_{oracle.n_tau}tau_v"
    return Deviation(
        subject=oracle.name, path="tran.be-vs-trap", quantity=quantity,
        reference=trap[quantity], measured=be[quantity],
        bound=oracle.tolerance("tran.be").bound(trap[quantity]),
        note="methods differ by at most the lower-order (BE) band")


def _check_mc_backends(tech, quick: bool) -> List[Deviation]:
    """Identical seeds across MC backends: bit-identical metric arrays."""
    from repro.circuits import differential_pair, input_referred_offset_v
    from repro.core import MonteCarloYield, Specification

    fx = differential_pair(tech)
    spec = Specification("offset", input_referred_offset_v,
                         lower=-5e-3, upper=5e-3)
    mc = MonteCarloYield(fx, [spec], tech)
    n = 16
    baseline = mc.run(n_samples=n, seed=11)
    backends = [("mc.thread", {"jobs": 2, "backend": "thread"})]
    if not quick:
        backends.append(("mc.process", {"jobs": 2, "backend": "process"}))
    out = []
    for path, kwargs in backends:
        result = mc.run(n_samples=n, seed=11, **kwargs)
        delta = np.abs(result.values["offset"] - baseline.values["offset"])
        i = int(np.argmax(delta))
        out.append(Deviation(
            subject="differential_pair.mc", path=path,
            quantity="offset_values",
            reference=float(baseline.values["offset"][i]),
            measured=float(result.values["offset"][i]), bound=0.0,
            note="SeedSequence-per-chunk contract: bit-identical"))
    batched = mc.run(n_samples=n, seed=11, batch_size=32)
    delta = np.abs(batched.values["offset"] - baseline.values["offset"])
    i = int(np.argmax(delta))
    out.append(Deviation(
        subject="differential_pair.mc", path="mc.batch",
        quantity="offset_values",
        reference=float(baseline.values["offset"][i]),
        measured=float(batched.values["offset"][i]), bound=1e-7,
        note="batched lanes within Newton tolerance on the metric"))
    return out


def _check_highsigma(quick: bool) -> List[Deviation]:
    """Cross-path contracts of the high-sigma engine on the linear oracle.

    Three properties the estimator math depends on, checked against the
    engine itself rather than the closed form (which the oracle layer
    already gates):

    * importance *weights* are identical with screening on and off —
      screening only chooses who gets a full solve, never touches the
      density ratio (bound 0.0, bit-identical);
    * parallel chunks are bit-identical to serial ones (the same
      SeedSequence-per-chunk contract the MC engine carries);
    * the self-normalized estimate agrees with the unnormalized one
      within their combined (realized) standard errors — the standing
      diagnostic for a mis-weighted proposal.
    """
    from repro.verify.oracles import HighSigmaLinearOracle

    n = 1024 if quick else 2048
    oracle = HighSigmaLinearOracle(n_samples=n)
    engine = oracle._engine()
    kwargs = dict(shift_sigma=oracle.k_sigma, seed=oracle.seed,
                  adapt=False)
    plain = engine.run(n, surrogate=None, **kwargs)
    screened = engine.run(n, surrogate="poly", **kwargs)
    threaded = engine.run(n, surrogate=None, jobs=2, backend="thread",
                          **kwargs)
    out = []
    delta = np.abs(screened.weights - plain.weights)
    i = int(np.argmax(delta))
    out.append(Deviation(
        subject=oracle.name, path="is.weights-screened-vs-plain",
        quantity="weights", reference=float(plain.weights[i]),
        measured=float(screened.weights[i]), bound=0.0,
        note="screening reorders solves, never reweights: bit-identical"))
    delta = np.abs(threaded.weights - plain.weights)
    i = int(np.argmax(delta))
    out.append(Deviation(
        subject=oracle.name, path="is.thread-vs-serial",
        quantity="weights", reference=float(plain.weights[i]),
        measured=float(threaded.weights[i]), bound=0.0,
        note="SeedSequence-per-chunk contract: bit-identical"))
    combined_se = math.hypot(plain.standard_error,
                             plain.standard_error_self_normalized)
    out.append(Deviation(
        subject=oracle.name, path="is.selfnorm-vs-unnorm",
        quantity="p_fail", reference=plain.failure_probability,
        measured=plain.failure_probability_self_normalized,
        bound=5.0 * combined_se,
        note="estimators agree within 5 combined standard errors"))
    return out


def run_corpus(quick: bool = False) -> List[Deviation]:
    """Cross-path agreement checks over the paper-circuit corpus."""
    from repro.technology import get_node

    tech = get_node("90nm")
    out: List[Deviation] = []
    with telemetry.span("verify.corpus", quick=quick):
        for name, circuit, source, values in _batch_corpus(tech):
            with telemetry.span("verify.corpus.batch", circuit=name):
                out.append(_check_batch_vs_scalar(name, circuit, source,
                                                 values))
        out.extend(_check_solver_variants(tech))
        out.append(_check_transient_cross())
        out.extend(_check_mc_backends(tech, quick))
        with telemetry.span("verify.corpus.highsigma", quick=quick):
            out.extend(_check_highsigma(quick))
    for dev in out:
        _count("verify.checks")
        if not dev.passed:
            _count("verify.failures")
    return out


def run_differential(quick: bool = False,
                     oracles: Optional[Sequence[Oracle]] = None
                     ) -> VerificationReport:
    """The full differential harness: oracles + cross-path corpus."""
    with telemetry.span("verify.differential", quick=quick):
        report = run_oracles(oracles)
        report.meta = {"kind": "differential", "quick": quick}
        report.extend(run_corpus(quick=quick))
    return report
