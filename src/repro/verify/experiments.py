"""Golden-quantity functions for every EXPERIMENTS.md entry (E1–E15).

Each experiment exposes a *cheap, deterministic* subset of the headline
quantities its benchmark measures — small fixed seeds, reduced grids and
shortened transients, so the whole registry runs in seconds while still
pinning the physics every figure/equation claim rests on.  The values
are NOT asserted against the paper here (the benches do that); they are
snapshotted by ``repro verify --update-golden`` and diffed on every
subsequent ``repro verify`` run within the per-quantity bands declared
below.

Band policy:

* ``BAND_EXACT`` — pure closed-form arithmetic, seeded numpy sampling
  and pure-array pipelines: 1e-9 relative (the numpy Generator stream
  is stable across platforms by policy);
* ``BAND_SOLVER`` — quantities that go through the MNA engine (Newton
  iterates depend on the BLAS): 2e-3 relative, far below the ≥ 1 %
  movement any genuine model/solver change produces;
* statistical fits keep ``BAND_EXACT`` because their seeds are fixed.

Experiments marked ``cost="slow"`` run transient/MC workloads (a few
seconds each); ``repro verify --quick`` skips them.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import telemetry, units
from repro.verify.oracles import Tolerance

BAND_EXACT = Tolerance(rtol=1e-9, atol=1e-12, note="deterministic")
BAND_SOLVER = Tolerance(rtol=2e-3, atol=1e-12, note="MNA-path (BLAS-dependent)")

#: Quantity name → (value, band); what every experiment function returns.
Quantities = Dict[str, "Quantity"]


class Quantity:
    """A golden-tracked value with its drift band."""

    __slots__ = ("value", "tol")

    def __init__(self, value: float, tol: Tolerance = BAND_EXACT):
        self.value = float(value)
        self.tol = tol

    def __repr__(self) -> str:
        return f"Quantity({self.value:g}, {self.tol!r})"


class Experiment:
    """One EXPERIMENTS.md entry: id, title, cost tier and a compute fn."""

    def __init__(self, exp_id: str, title: str, cost: str,
                 compute: Callable[[], Quantities]):
        if cost not in ("fast", "slow"):
            raise ValueError(f"cost must be fast|slow, got {cost!r}")
        self.id = exp_id
        self.title = title
        self.cost = cost
        self.compute = compute

    def run(self) -> Quantities:
        with telemetry.span("verify.experiment", experiment=self.id,
                            cost=self.cost):
            return self.compute()


# ----------------------------------------------------------------------
# E1–E7, E11, E12: closed forms, samplers and array pipelines (fast)
# ----------------------------------------------------------------------
def _e1_avt_vs_tox() -> Quantities:
    from repro.technology import get_node, modeled_avt, tuinhout_benchmark_avt
    from repro.variability import decompose_avt

    out = {}
    for tox in (25.0, 2.6, 1.1):
        out[f"avt_ratio_tox{tox:g}nm"] = Quantity(
            modeled_avt(tox) / tuinhout_benchmark_avt(tox))
    for name in ("350nm", "32nm"):
        out[f"nonoxide_share_{name}"] = Quantity(
            decompose_avt(get_node(name)).floor_fraction)
    return out


def _e2_pelgrom() -> Quantities:
    from repro.technology import get_node
    from repro.variability import MismatchSampler, PelgromModel

    tech = get_node("90nm")
    model = PelgromModel.for_technology(tech)
    out = {
        "sigma_1um2_v": Quantity(model.sigma_delta_vt_v(1e-6, 1e-6)),
        "sigma_64um2_v": Quantity(model.sigma_delta_vt_v(8e-6, 8e-6)),
        "sigma_d2mm_v": Quantity(model.sigma_delta_vt_v(1e-6, 1e-6, 2e-3)),
    }
    sampler = MismatchSampler(tech, np.random.default_rng(1))
    draws = sampler.sample_pair_delta_vt_batch_v(1e-6, 1e-6, 1200)
    out["sampled_over_analytic_1um2"] = Quantity(
        float(np.std(draws, ddof=1)) / out["sigma_1um2_v"].value)
    return out


def _e3_iv_degradation() -> Quantities:
    from repro.aging import DeviceStress, HciModel
    from repro.aging.base import MechanismState
    from repro.circuit import Mosfet
    from repro.technology import get_node

    tech = get_node("90nm")
    device = Mosfet.from_technology("m1", "d", "g", "0", "0", tech, "n",
                                    w_m=1e-6, l_m=tech.lmin_m)
    fresh = device.drain_current(1.2, tech.vdd, 0.0)
    hci = HciModel(tech.aging)
    stress = DeviceStress.static(0.5 * 1.4 * tech.vdd, 1.4 * tech.vdd,
                                 units.celsius_to_kelvin(125.0))
    state = MechanismState()
    hci.advance(device, stress, state, units.years_to_seconds(1.0))
    hci.contribute(device, state)
    device.degradation.delta_vt_v += 0.03
    device.degradation.beta_factor *= 0.95
    aged = device.drain_current(1.2, tech.vdd, 0.0)
    return {
        "hci_dvt_v": Quantity(state.delta_vt_v),
        "fresh_isat_a": Quantity(fresh),
        "aged_isat_a": Quantity(aged),
        "isat_drop_frac": Quantity(1.0 - aged / fresh),
    }


def _e4_tddb() -> Quantities:
    from repro.aging import BreakdownMode, TddbModel, weibit
    from repro.technology import get_node

    tech = get_node("90nm")
    model = TddbModel(tech.aging)
    eox = tech.nominal_oxide_field()
    rng = np.random.default_rng(3)
    samples = np.sort([model.sample_breakdown(rng, tech.tox_nm, eox, 1.0)
                       .t_first_bd_s for _ in range(300)])
    ranks = (np.arange(1, len(samples) + 1) - 0.3) / (len(samples) + 0.4)
    slope = float(np.polyfit(np.log(samples),
                             [weibit(r) for r in ranks], 1)[0])
    return {
        "weibull_slope_fit": Quantity(slope),
        "model_shape": Quantity(tech.aging.tddb_weibull_shape),
        "modes_tox6nm": Quantity(len(model.mode_sequence(6.0))),
        "modes_tox4nm": Quantity(len(model.mode_sequence(4.0))),
        "modes_tox2nm": Quantity(len(model.mode_sequence(2.0))),
        "eta_nominal_s": Quantity(model.characteristic_life_s(eox, 1.0)),
    }


def _e5_hci() -> Quantities:
    from repro.aging import HciModel
    from repro.circuit import Mosfet
    from repro.technology import get_node

    tech = get_node("65nm")
    hci = HciModel(tech.aging)
    ten_years = units.years_to_seconds(10.0)
    vgs_wc = tech.vdd / 2.0

    def device(polarity, l_factor=1.0):
        return Mosfet.from_technology("m", "d", "g", "s", "b", tech,
                                      polarity, w_m=1e-6,
                                      l_m=l_factor * tech.lmin_m)

    nmos, pmos = device("n"), device("p")
    long_n = device("n", 10.0)
    d_n = hci.delta_vt_v(nmos, vgs_wc, tech.vdd, 300.0, ten_years)
    return {
        "nmos_10yr_dvt_v": Quantity(d_n),
        "pmos_over_nmos": Quantity(
            hci.delta_vt_v(pmos, vgs_wc, tech.vdd, 300.0, ten_years) / d_n),
        "long_channel_over_min": Quantity(
            hci.delta_vt_v(long_n, vgs_wc, tech.vdd, 300.0, ten_years) / d_n),
        "vds_acceleration": Quantity(
            hci.delta_vt_v(nmos, vgs_wc, 1.5, 300.0, 1e6)
            / hci.delta_vt_v(nmos, vgs_wc, 0.7, 300.0, 1e6)),
        "time_exponent": Quantity(tech.aging.hci_time_exponent),
    }


def _e6_nbti() -> Quantities:
    from repro.aging import NbtiModel
    from repro.technology import get_node

    tech = get_node("65nm")
    nbti = NbtiModel(tech.aging)
    eox = tech.nominal_oxide_field()
    t_hot = units.celsius_to_kelvin(125.0)
    ten_years = units.years_to_seconds(10.0)
    total = nbti.delta_vt_v(eox, t_hot, 1e3)
    return {
        "dvt_10yr_v": Quantity(nbti.delta_vt_v(eox, t_hot, ten_years)),
        "remaining_1us": Quantity(
            nbti.relaxed_delta_vt_v(total, 1e3, 1e-6) / total),
        "remaining_1e5s": Quantity(
            nbti.relaxed_delta_vt_v(total, 1e3, 1e5) / total),
        "ac50_over_dc": Quantity(
            nbti.delta_vt_v(eox, t_hot, 1e6, duty=0.5)
            / nbti.delta_vt_v(eox, t_hot, 1e6)),
        "time_exponent": Quantity(tech.aging.nbti_time_exponent),
    }


def _e7_em() -> Quantities:
    from repro.aging import ElectromigrationModel, WireSegment
    from repro.technology import get_node

    tech = get_node("65nm")
    em = ElectromigrationModel(tech.aging)
    hot = units.celsius_to_kelvin(105.0)
    year = units.years_to_seconds(1.0)
    out = {}
    for j_ma in (0.5, 1.0, 2.0):
        out[f"mttf_{j_ma:g}ma_cm2_yr"] = Quantity(
            em.black_mttf_s(j_ma * 1e10, hot) / year)
    out["temp_accel_27_125"] = Quantity(
        em.black_mttf_s(1e10, units.celsius_to_kelvin(27.0))
        / em.black_mttf_s(1e10, units.celsius_to_kelvin(125.0)))
    # J = 1e9 A/m² on a 0.2×0.2 µm wire: J·L crosses the Blech product
    # (2e5 A/m) between 10 µm and 1000 µm.
    current_a = 1e9 * 0.2e-6 * 0.2e-6
    short = WireSegment("w", "a", "b", 0.2e-6, 10e-6, 0.2e-6)
    long = WireSegment("w", "a", "b", 0.2e-6, 1000e-6, 0.2e-6)
    out["blech_immune_10um"] = Quantity(
        float(em.is_blech_immune(short, current_a)))
    out["blech_immune_1000um"] = Quantity(
        float(em.is_blech_immune(long, current_a)))
    return out


def _e11_ler() -> Quantities:
    from repro.technology import get_node
    from repro.variability import LerModel, PelgromModel

    out = {}
    tech65 = get_node("65nm")
    ler = LerModel.for_technology(tech65)
    w = 0.5e-6
    out["sigma_lmin_over_8lmin"] = Quantity(
        ler.sigma_vt_v(w, tech65.lmin_m) / ler.sigma_vt_v(w, 8 * tech65.lmin_m))
    for name in ("350nm", "65nm", "32nm"):
        tech = get_node(name)
        lm = LerModel.for_technology(tech)
        pm = PelgromModel.for_technology(tech)
        s_l = lm.sigma_vt_v(4 * tech.wmin_m, tech.lmin_m)
        s_p = pm.sigma_single_vt_v(4 * tech.wmin_m, tech.lmin_m)
        out[f"ler_share_{name}"] = Quantity(s_l / math.hypot(s_p, s_l))
    return out


def _e12_ablations() -> Quantities:
    from repro.aging import ElectromigrationModel, NbtiModel, WireSegment
    from repro.technology import get_node

    tech = get_node("65nm")
    nbti = NbtiModel(tech.aging)
    eox = tech.nominal_oxide_field()
    t_hot = units.celsius_to_kelvin(125.0)
    day = 86400.0
    total = nbti.delta_vt_v(eox, t_hot, day)
    rested = nbti.relaxed_delta_vt_v(total, day, day)
    em = ElectromigrationModel(tech.aging)
    # Two wires at identical J = 1 MA/cm²: a via-terminated spine vs a
    # sub-grain-width bamboo wire — naive Black cannot tell them apart.
    hot = units.celsius_to_kelvin(105.0)
    spine = WireSegment("spine", "a", "b", 1e-6, 200e-6, 0.2e-6,
                        has_via=True)
    bamboo = WireSegment("bamboo", "a", "b", 0.1e-6, 200e-6, 0.2e-6)
    j = 1e10
    return {
        "norelax_over_relax_1day": Quantity(total / rested),
        "em_corrected_spread": Quantity(
            em.segment_mttf_s(bamboo, j * bamboo.cross_section_m2, hot)
            / em.segment_mttf_s(spine, j * spine.cross_section_m2, hot)),
        "analytic_4sigma_tail": Quantity(math.erfc(4.0 / math.sqrt(2.0))),
    }


# ----------------------------------------------------------------------
# E9: DAC calibration (fast — pure array pipeline)
# ----------------------------------------------------------------------
def _e9_dac() -> Quantities:
    from repro.solutions import (
        CurrentSteeringDac,
        DacConfig,
        area_tradeoff,
        calibrate,
        intrinsic_sigma_for_inl,
    )
    from repro.technology import get_node

    config = DacConfig(n_bits=14, n_unary_bits=6)
    intrinsic = intrinsic_sigma_for_inl(config)
    dac = CurrentSteeringDac(config, 3.0 * intrinsic,
                             np.random.default_rng(9))
    result = calibrate(dac)
    trade = area_tradeoff(config, get_node("90nm"), n_samples=60, seed=0)
    return {
        "intrinsic_sigma": Quantity(intrinsic),
        "inl_before_lsb": Quantity(result.inl_before_lsb),
        "inl_after_lsb": Quantity(result.inl_after_lsb),
        "area_ratio": Quantity(trade.area_ratio),
    }


# ----------------------------------------------------------------------
# E8, E10, E13, E14: MNA-backed (slow tier)
# ----------------------------------------------------------------------
def _e8_emc() -> Quantities:
    from repro.circuits import filtered_current_reference, resistor_divider_bias
    from repro.core import EmcAnalyzer
    from repro.emc import add_dpi_injection
    from repro.technology import get_node

    tech = get_node("90nm")
    fx = filtered_current_reference(tech, filtered=True)
    injection = add_dpi_injection(fx.circuit, fx.nodes["diode"],
                                  coupling_c_f=500e-15)
    analyzer = EmcAnalyzer(fx.circuit, injection,
                           lambda r: -r.source_current("vout"),
                           n_periods=8, samples_per_period=24,
                           settle_periods=3)
    nominal = analyzer.nominal_value()
    shift = analyzer.measure_point(0.4, 50e6, nominal).relative_shift

    div = resistor_divider_bias(tech)
    inj = add_dpi_injection(div.circuit, "mid", coupling_c_f=500e-15)
    linear = EmcAnalyzer(div.circuit, inj, lambda r: r.voltage("mid"),
                         n_periods=8, samples_per_period=24,
                         settle_periods=3)
    linear_shift = linear.measure_point(
        0.4, 50e6, linear.nominal_value()).relative_shift
    return {
        "iout_nominal_a": Quantity(nominal, BAND_SOLVER),
        "rel_shift_0v4_50mhz": Quantity(shift, BAND_SOLVER),
        "linear_victim_shift": Quantity(linear_shift,
                                        Tolerance(rtol=2e-3, atol=1e-5)),
    }


def _ring_frequency(circuit) -> float:
    from repro.circuit import transient

    result = transient(circuit, t_stop=1.0e-9, dt=4e-12)
    return result.voltage("s0").dominant_frequency()


def _e10_knobs() -> Quantities:
    from repro.aging import NbtiModel
    from repro.circuits import ring_oscillator
    from repro.technology import get_node

    tech = get_node("65nm")
    fx = ring_oscillator(tech, n_stages=3)
    fresh = _ring_frequency(fx.circuit)
    nbti = NbtiModel(tech.aging)
    dvt = nbti.delta_vt_v(tech.nominal_oxide_field(),
                          units.celsius_to_kelvin(105.0),
                          units.years_to_seconds(10.0), duty=0.5)
    pmos = [m for m in fx.circuit.mosfets if m.params.polarity == "p"]
    for device in pmos:
        device.degradation.delta_vt_v += dvt
    try:
        aged = _ring_frequency(fx.circuit)
    finally:
        for device in pmos:
            device.degradation.delta_vt_v -= dvt
    return {
        "fresh_freq_hz": Quantity(fresh, BAND_SOLVER),
        "aged_freq_hz": Quantity(aged, BAND_SOLVER),
        "freq_drop_frac": Quantity(1.0 - aged / fresh,
                                   Tolerance(rtol=5e-2, atol=1e-4)),
        "nbti_10yr_dvt_v": Quantity(dvt),
    }


def _e13_guardband() -> Quantities:
    from repro.aging import HciModel, NbtiModel
    from repro.circuit import dc_operating_point
    from repro.circuits import simple_current_mirror
    from repro.core import MissionProfile, guardband_analysis
    from repro.technology import get_node

    def iout(fixture):
        return -dc_operating_point(fixture.circuit).source_current("vout")

    out = {}
    for name in ("180nm", "45nm"):
        tech = get_node(name)
        fx = simple_current_mirror(tech, w_m=4 * tech.wmin_m,
                                   l_m=tech.lmin_m, v_out_v=0.9 * tech.vdd)
        report = guardband_analysis(
            fx, iout, tech,
            mechanisms=[NbtiModel(tech.aging), HciModel(tech.aging)],
            profile=MissionProfile(n_epochs=2), n_mc_samples=16,
            sigma_level=3.0, seed=7)
        out[f"guardband_{name}"] = Quantity(report.total_fraction,
                                            BAND_SOLVER)
        out[f"overdesign_{name}"] = Quantity(
            report.design_target / report.nominal, BAND_SOLVER)
    return out


def _e14_timing() -> Quantities:
    from repro.aging import NbtiModel
    from repro.circuits import inverter
    from repro.digitalflow import TimingGraph, characterize_cell, path_derate
    from repro.technology import get_node

    tech = get_node("65nm")
    fx = inverter(tech, load_c_f=2e-15)
    slews, loads = [20e-12, 80e-12], [1e-15, 6e-15]
    fresh = characterize_cell(fx, tech, slews, loads, rising_input=False)
    nbti = NbtiModel(tech.aging)
    dvt = nbti.delta_vt_v(tech.nominal_oxide_field(),
                          units.celsius_to_kelvin(105.0),
                          units.years_to_seconds(10.0), duty=0.5)
    pmos = fx.circuit["mp_inv"]
    pmos.degradation.delta_vt_v += dvt
    try:
        aged = characterize_cell(fx, tech, slews, loads, rising_input=False)
    finally:
        pmos.degradation.delta_vt_v -= dvt

    def chain(table, n=5):
        graph = TimingGraph()
        graph.add_input("a", slew_s=30e-12)
        prev = "a"
        for k in range(n):
            graph.add_cell(f"u{k}", table, inputs=[prev], output=f"n{k}")
            prev = f"n{k}"
        graph.add_output(prev, load_f=4e-15)
        return graph

    graph_fresh = chain(fresh)
    graph_aged = graph_fresh.with_tables({f"u{k}": aged for k in range(5)})
    return {
        "fresh_path_s": Quantity(graph_fresh.critical_path()[0],
                                 BAND_SOLVER),
        "aged_path_s": Quantity(graph_aged.critical_path()[0], BAND_SOLVER),
        "path_derate": Quantity(path_derate(graph_fresh, graph_aged),
                                Tolerance(rtol=5e-3, atol=1e-6)),
        "pmos_dvt_v": Quantity(dvt),
    }


def _e15_highsigma() -> Quantities:
    """High-sigma IS estimate on the linear tail oracle, both paths.

    No MNA solve anywhere in the pipeline (the metric is arithmetic on
    the drawn variates), so every quantity is seed-deterministic and
    golden-tracked at ``BAND_EXACT`` — including the full-solver-call
    count, which pins the surrogate's screening behaviour: a routing
    regression (screener solving everything, or nothing) moves it far
    outside any float band.
    """
    from repro.verify.oracles import HighSigmaLinearOracle

    oracle = HighSigmaLinearOracle()
    plain = oracle.run("is.plain")
    screened = oracle.run("is.screened")
    return {
        "p_fail_plain": Quantity(plain.failure_probability),
        "p_fail_self_normalized": Quantity(
            plain.failure_probability_self_normalized),
        "p_fail_screened": Quantity(screened.failure_probability),
        "kish_ess_plain": Quantity(plain.effective_samples),
        "sigma_level_plain": Quantity(plain.sigma_level),
        "full_solves_screened": Quantity(screened.full_solver_calls),
        "p_fail_closed_form": Quantity(oracle.analytic()["p_fail"]),
    }


#: The registry, in EXPERIMENTS.md order.
EXPERIMENTS: List[Experiment] = [
    Experiment("E1", "Fig 1: A_VT vs gate-oxide thickness", "fast",
               _e1_avt_vs_tox),
    Experiment("E2", "Eq 1: Pelgrom mismatch law", "fast", _e2_pelgrom),
    Experiment("E3", "Fig 2: fresh vs degraded I-V", "fast",
               _e3_iv_degradation),
    Experiment("E4", "S3.1: TDDB Weibull statistics", "fast", _e4_tddb),
    Experiment("E5", "Eq 2: HCI dVT", "fast", _e5_hci),
    Experiment("E6", "Eq 3: NBTI dVT and relaxation", "fast", _e6_nbti),
    Experiment("E7", "Eq 4: electromigration", "fast", _e7_em),
    Experiment("E8", "Figs 3-4: EMI rectification", "slow", _e8_emc),
    Experiment("E9", "Fig 5 / S5.1: SSPA-calibrated DAC", "fast", _e9_dac),
    Experiment("E10", "Fig 6 / S5.2: knobs and monitors", "slow",
               _e10_knobs),
    Experiment("E11", "S2: line-edge roughness", "fast", _e11_ler),
    Experiment("E12", "Ablations (DESIGN.md S6)", "fast", _e12_ablations),
    Experiment("E13", "S5: over-design penalty", "slow", _e13_guardband),
    Experiment("E14", "S2/S3.2: digital timing", "slow", _e14_timing),
    Experiment("E15", "S2: high-sigma tail yield (IS + surrogate)", "fast",
               _e15_highsigma),
]


def experiment_index() -> Dict[str, Experiment]:
    return {e.id: e for e in EXPERIMENTS}


def run_experiments(include_slow: bool = True,
                    ids: Optional[List[str]] = None
                    ) -> Dict[str, Quantities]:
    """Run the registry (optionally the fast tier only) in order."""
    index = experiment_index()
    if ids is not None:
        unknown = [i for i in ids if i not in index]
        if unknown:
            raise KeyError(f"unknown experiment ids: {unknown}")
    results: Dict[str, Quantities] = {}
    with telemetry.span("verify.experiments", include_slow=include_slow):
        for exp in EXPERIMENTS:
            if ids is not None and exp.id not in ids:
                continue
            if exp.cost == "slow" and not include_slow:
                continue
            results[exp.id] = exp.run()
    return results
