"""Golden artifact store: tolerance-banded snapshots of E1–E15 results.

Layout under the goldens directory (committed to the repo)::

    goldens/
      manifest.json     {"schema": 1, "experiments": {"E1": "E1.json", ...}}
      E1.json           {"schema": 1, "id": "E1", "title": ..., "cost": ...,
                         "quantities": {"name": {"value": v, "tol": {...}}}}

``repro verify --update-golden`` rewrites the files from a fresh run
(merging, so ``--quick`` refreshes only the fast tier and keeps the
committed slow-tier entries); plain ``repro verify`` recomputes and
diffs within each quantity's *stored* band, so tolerance policy is
versioned together with the values it protects.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Dict, List, Optional

from repro.verify.experiments import EXPERIMENTS, Quantities, Quantity
from repro.verify.oracles import Tolerance

GOLDEN_SCHEMA = 1
MANIFEST_NAME = "manifest.json"


class GoldenError(ValueError):
    """Malformed or incomplete golden store (corrupt JSON, bad schema,
    manifest pointing at missing files)."""


class GoldenDrift:
    """One divergence between a fresh run and the committed goldens."""

    #: kinds, in decreasing severity
    DRIFT = "drift"
    MISSING_EXPERIMENT = "missing-experiment"
    MISSING_QUANTITY = "missing-quantity"
    NEW_QUANTITY = "new-quantity"

    __slots__ = ("kind", "experiment", "quantity", "golden", "measured",
                 "bound")

    def __init__(self, kind: str, experiment: str, quantity: str = "",
                 golden: float = math.nan, measured: float = math.nan,
                 bound: float = math.nan):
        self.kind = kind
        self.experiment = experiment
        self.quantity = quantity
        self.golden = golden
        self.measured = measured
        self.bound = bound

    @property
    def error(self) -> float:
        return abs(self.measured - self.golden)

    def describe(self) -> str:
        where = (f"{self.experiment}.{self.quantity}" if self.quantity
                 else self.experiment)
        if self.kind == self.DRIFT:
            return (f"{where}: golden {self.golden:.9g} vs measured "
                    f"{self.measured:.9g} (|err| {self.error:.3g} "
                    f"> bound {self.bound:.3g})")
        if self.kind == self.MISSING_EXPERIMENT:
            return f"{where}: experiment has no committed golden"
        if self.kind == self.MISSING_QUANTITY:
            return f"{where}: golden quantity no longer produced"
        return f"{where}: new quantity not in goldens (run --update-golden)"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind,
                                  "experiment": self.experiment}
        if self.quantity:
            out["quantity"] = self.quantity
        if not math.isnan(self.golden):
            out.update(golden=self.golden, measured=self.measured,
                       bound=self.bound)
        return out


def _atomic_write_json(path: str, payload: dict) -> None:
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _experiment_payload(exp_id: str, quantities: Quantities) -> dict:
    index = {e.id: e for e in EXPERIMENTS}
    exp = index.get(exp_id)
    return {
        "schema": GOLDEN_SCHEMA,
        "id": exp_id,
        "title": exp.title if exp else "",
        "cost": exp.cost if exp else "fast",
        "quantities": {
            name: {"value": q.value, "tol": q.tol.to_dict()}
            for name, q in sorted(quantities.items())
        },
    }


def write_goldens(results: Dict[str, Quantities], directory: str) -> List[str]:
    """Write/refresh golden files for ``results``; returns written paths.

    Merge semantics: experiments already in the manifest but absent from
    ``results`` (e.g. the slow tier under ``--quick``) keep their files
    and manifest entries untouched.
    """
    os.makedirs(directory, exist_ok=True)
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    experiments: Dict[str, str] = {}
    if os.path.exists(manifest_path):
        experiments = dict(load_manifest(directory))
    written = []
    for exp_id, quantities in results.items():
        fname = f"{exp_id}.json"
        path = os.path.join(directory, fname)
        _atomic_write_json(path, _experiment_payload(exp_id, quantities))
        experiments[exp_id] = fname
        written.append(path)
    _atomic_write_json(manifest_path, {
        "schema": GOLDEN_SCHEMA,
        "experiments": dict(sorted(experiments.items())),
    })
    written.append(manifest_path)
    return written


def load_manifest(directory: str) -> Dict[str, str]:
    """``{experiment id: file name}`` from ``manifest.json``."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        raise GoldenError(
            f"no golden manifest at {manifest_path}; "
            f"generate one with `repro verify --update-golden`")
    try:
        with open(manifest_path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise GoldenError(f"corrupt golden manifest {manifest_path}: {exc}")
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise GoldenError(
            f"golden manifest {manifest_path} has schema "
            f"{payload.get('schema')!r}, expected {GOLDEN_SCHEMA}")
    experiments = payload.get("experiments")
    if not isinstance(experiments, dict):
        raise GoldenError(f"golden manifest {manifest_path} has no "
                          f"'experiments' mapping")
    return experiments


def load_goldens(directory: str) -> Dict[str, Quantities]:
    """All golden quantities keyed by experiment id.

    Raises :class:`GoldenError` when the manifest references a file that
    does not exist — a silently-dropped artifact must fail loudly.
    """
    out: Dict[str, Quantities] = {}
    for exp_id, fname in load_manifest(directory).items():
        path = os.path.join(directory, fname)
        if not os.path.exists(path):
            raise GoldenError(
                f"golden manifest references {fname} for {exp_id}, "
                f"but {path} does not exist")
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise GoldenError(f"corrupt golden file {path}: {exc}")
        if payload.get("schema") != GOLDEN_SCHEMA:
            raise GoldenError(f"golden file {path} has schema "
                              f"{payload.get('schema')!r}, expected "
                              f"{GOLDEN_SCHEMA}")
        quantities: Quantities = {}
        for name, entry in payload.get("quantities", {}).items():
            quantities[name] = Quantity(
                float(entry["value"]), Tolerance.from_dict(entry["tol"]))
        out[exp_id] = quantities
    return out


def diff_goldens(results: Dict[str, Quantities],
                 goldens: Dict[str, Quantities],
                 ids: Optional[List[str]] = None) -> List[GoldenDrift]:
    """Compare a fresh run against loaded goldens within stored bands.

    Only experiments present in ``results`` are compared (a ``--quick``
    run must not flag the skipped slow tier), unless ``ids`` names a
    subset explicitly.
    """
    drifts: List[GoldenDrift] = []
    for exp_id in sorted(results):
        if ids is not None and exp_id not in ids:
            continue
        fresh = results[exp_id]
        if exp_id not in goldens:
            drifts.append(GoldenDrift(GoldenDrift.MISSING_EXPERIMENT, exp_id))
            continue
        stored = goldens[exp_id]
        for name in sorted(set(fresh) | set(stored)):
            if name not in fresh:
                drifts.append(GoldenDrift(
                    GoldenDrift.MISSING_QUANTITY, exp_id, name,
                    golden=stored[name].value))
                continue
            if name not in stored:
                drifts.append(GoldenDrift(
                    GoldenDrift.NEW_QUANTITY, exp_id, name,
                    measured=fresh[name].value))
                continue
            ref = stored[name]
            bound = ref.tol.bound(ref.value)
            err = abs(fresh[name].value - ref.value)
            if not err <= bound:  # catches NaN too
                drifts.append(GoldenDrift(
                    GoldenDrift.DRIFT, exp_id, name, golden=ref.value,
                    measured=fresh[name].value, bound=bound))
    return drifts
