"""Analytic oracle library: circuits and laws with closed-form answers.

Every oracle pairs a *measurable* configuration (a netlist solved by the
MNA engine, a sampler, or a reliability law evaluated through the public
model API) with an independently coded ``analytic()`` reference and a
documented :class:`Tolerance` per solver path.  The differential harness
(:mod:`repro.verify.differential`) drives ``measure(path)`` for every
advertised path and compares against ``analytic()`` — this is the
ground-truth half of the `repro verify` correctness gate.

Tolerance policy (see docs/verification.md):

* **linear DC** — machine epsilon plus the documented ``gmin`` floor
  leakage (every node carries a 1 pS shunt to ground, so a ladder of
  total resistance R sees a relative perturbation of order ``R·gmin``);
* **nonlinear DC** — the Newton stopping criterion
  ``vtol + reltol·max(|x|, 1)`` on the solution vector, which bounds the
  bias of any converged fixed point;
* **transient** — the integrator's order: O(dt/τ) for backward Euler,
  O((dt/τ)²) for trapezoidal, measured against the exact exponential;
* **statistical** — the sampling error of the estimator itself
  (≈ ``4/√(2n)`` relative on a standard deviation from n pair draws);
* **laws** — closed forms re-derived here from the coefficient tables,
  so agreement is arithmetic-only (1e-9 relative).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from repro import units
from repro.aging import ElectromigrationModel, HciModel, NbtiModel, weibull_cdf, weibull_quantile
from repro.circuit import (
    Circuit,
    DcSpec,
    Mosfet,
    NewtonOptions,
    PulseSpec,
    dc_operating_point,
    dc_sweep,
    fd_jacobians,
    sparse_mode,
    transient,
)
from repro.circuit.dc import GMIN_FLOOR
from repro.technology import TechnologyNode, get_node
from repro.variability import MismatchSampler, PelgromModel


class Tolerance:
    """A per-path acceptance band: ``|measured - ref| ≤ atol + rtol·|ref|``.

    ``ulps`` optionally *also* accepts deviations within that many
    representable doubles of the reference — useful where the band would
    otherwise have to chase denormal-scale references.
    """

    __slots__ = ("rtol", "atol", "ulps", "note")

    def __init__(self, rtol: float = 0.0, atol: float = 0.0,
                 ulps: int = 0, note: str = ""):
        if rtol < 0.0 or atol < 0.0 or ulps < 0:
            raise ValueError("tolerances must be non-negative")
        self.rtol = rtol
        self.atol = atol
        self.ulps = ulps
        self.note = note

    def bound(self, reference: float) -> float:
        """Absolute acceptance bound at ``reference``."""
        return self.atol + self.rtol * abs(reference)

    def to_dict(self) -> dict:
        return {"rtol": self.rtol, "atol": self.atol, "ulps": self.ulps,
                "note": self.note}

    @staticmethod
    def from_dict(data: dict) -> "Tolerance":
        return Tolerance(rtol=float(data.get("rtol", 0.0)),
                         atol=float(data.get("atol", 0.0)),
                         ulps=int(data.get("ulps", 0)),
                         note=str(data.get("note", "")))

    def __repr__(self) -> str:
        return f"Tolerance(rtol={self.rtol:g}, atol={self.atol:g})"


class Oracle:
    """Base class: a measurable configuration with a closed-form answer.

    Subclasses define ``paths()`` (the solver paths they exercise),
    ``analytic()`` (quantity name → reference value), ``measure(path)``
    (the same quantities through the named path) and
    ``tolerance(path)``.  Circuit-backed oracles also expose ``build()``
    so callers can inspect the netlist.
    """

    name: str = "oracle"
    category: str = "law"

    def paths(self) -> Sequence[str]:
        raise NotImplementedError

    def analytic(self) -> Dict[str, float]:
        raise NotImplementedError

    def measure(self, path: str) -> Dict[str, float]:
        raise NotImplementedError

    def tolerance(self, path: str) -> Tolerance:
        raise NotImplementedError

    def build(self) -> Optional[Circuit]:
        """The oracle's netlist, when it has one."""
        return None

    def _unknown_path(self, path: str) -> ValueError:
        return ValueError(f"{self.name}: unknown solver path {path!r} "
                          f"(have {tuple(self.paths())})")


# ----------------------------------------------------------------------
# DC: resistive ladder (linear) and single-MOSFET operating points
# ----------------------------------------------------------------------
class ResistiveLadderOracle(Oracle):
    """A series ladder of ``n_rungs`` equal resistors across a source.

    Closed form: node k of n sits at ``vdd·(n-k)/n`` and the supply
    delivers ``vdd/(n·R)``.  The linear solve is exact to machine
    epsilon; the only systematic deviation is the documented ``gmin``
    shunt at every node, bounded by ``2·n·R·gmin`` relative.
    """

    category = "dc"

    def __init__(self, n_rungs: int = 5, r_ohms: float = 1e3,
                 vdd_v: float = 1.2):
        if n_rungs < 2:
            raise ValueError("need at least two rungs")
        if r_ohms <= 0.0 or vdd_v <= 0.0:
            raise ValueError("resistance and supply must be positive")
        self.n_rungs = n_rungs
        self.r_ohms = r_ohms
        self.vdd_v = vdd_v
        self.name = f"ladder-{n_rungs}x{r_ohms:g}ohm"

    def build(self) -> Circuit:
        ckt = Circuit(self.name)
        ckt.voltage_source("vdd", "n0", "0", self.vdd_v)
        for k in range(self.n_rungs):
            lower = f"n{k + 1}" if k < self.n_rungs - 1 else "0"
            ckt.resistor(f"r{k}", f"n{k}", lower, self.r_ohms)
        return ckt

    def paths(self) -> Sequence[str]:
        return ("dc.scalar", "dc.sparse", "dc.batch")

    def analytic(self) -> Dict[str, float]:
        n = self.n_rungs
        out = {f"v_n{k}_v": self.vdd_v * (n - k) / n for k in range(1, n)}
        out["i_supply_a"] = self.vdd_v / (n * self.r_ohms)
        return out

    def _read(self, solution) -> Dict[str, float]:
        out = {f"v_n{k}_v": solution.voltage(f"n{k}")
               for k in range(1, self.n_rungs)}
        out["i_supply_a"] = -solution.source_current("vdd")
        return out

    def measure(self, path: str) -> Dict[str, float]:
        ckt = self.build()
        if path == "dc.scalar":
            return self._read(dc_operating_point(ckt))
        if path == "dc.sparse":
            # Forcing the threshold to 1 routes this (small) system
            # through the CSC factorisation instead of dense LAPACK.
            with sparse_mode(1):
                return self._read(dc_operating_point(ckt))
        if path == "dc.batch":
            # Three lanes; the middle one is the nominal supply and the
            # first (the pilot) deliberately is not, so the measured
            # lane really went through the batched Newton loop.
            values = [0.5 * self.vdd_v, self.vdd_v, 1.5 * self.vdd_v]
            sols = dc_sweep(ckt, "vdd", values, batch=True)
            return self._read(sols[1])
        raise self._unknown_path(path)

    def tolerance(self, path: str) -> Tolerance:
        leak = 2.0 * self.n_rungs * self.r_ohms * GMIN_FLOOR
        return Tolerance(rtol=leak + 1e-9, atol=2e-9, ulps=256,
                         note="linear solve: machine eps + gmin leakage")


class MosfetRegionOracle(Oracle):
    """A single MOSFET with both terminals forced by voltage sources.

    With V_GS and V_DS pinned by ideal sources the node voltages are
    exact, so the solved drain-source current must equal the model's own
    ``drain_current(vgs, vds, vbs)`` — an exact closed-form reference in
    each operating region.  The residual is the Newton stopping
    tolerance on the source branch current plus the ``gmin`` shunt at
    the drain node.
    """

    category = "dc"

    #: region → (vgs, vds) as (offset from vt0, fraction of vdd).
    REGIONS = {
        "subthreshold": (-0.15, 0.5),
        "triode": (+0.55, 0.04),
        "saturation": (+0.35, 1.0),
    }

    def __init__(self, region: str, tech_name: str = "90nm",
                 w_m: float = 1e-6, l_m: Optional[float] = None):
        if region not in self.REGIONS:
            raise ValueError(f"unknown region {region!r} "
                             f"(have {tuple(self.REGIONS)})")
        self.region = region
        self.tech = get_node(tech_name)
        self.w_m = w_m
        self.l_m = l_m if l_m is not None else self.tech.lmin_m
        self.name = f"mosfet-{region}-{tech_name}"

    def _device(self) -> Mosfet:
        return Mosfet.from_technology("m1", "d", "g", "0", "0", self.tech,
                                      "n", w_m=self.w_m, l_m=self.l_m)

    def bias(self) -> tuple:
        """The (vgs, vds) pair this oracle solves at."""
        dvgs, fvds = self.REGIONS[self.region]
        vgs = self._device().params.vt0_v + dvgs
        return vgs, fvds * self.tech.vdd

    def build(self) -> Circuit:
        vgs, vds = self.bias()
        ckt = Circuit(self.name)
        ckt.voltage_source("vg", "g", "0", vgs)
        ckt.voltage_source("vd", "d", "0", vds)
        ckt.add(self._device())
        return ckt

    def paths(self) -> Sequence[str]:
        return ("dc.scalar", "dc.fd", "dc.sparse", "dc.batch")

    def analytic(self) -> Dict[str, float]:
        vgs, vds = self.bias()
        return {"ids_a": self._device().drain_current(vgs, vds, 0.0)}

    def measure(self, path: str) -> Dict[str, float]:
        ckt = self.build()
        vgs, vds = self.bias()
        if path == "dc.scalar":
            sol = dc_operating_point(ckt)
            return {"ids_a": -sol.source_current("vd")}
        if path == "dc.fd":
            # Finite-difference Jacobians: the debugging fallback for
            # the analytic derivatives must land on the same fixed
            # point (the residual — the stamped currents — is shared).
            with fd_jacobians():
                sol = dc_operating_point(ckt)
            return {"ids_a": -sol.source_current("vd")}
        if path == "dc.sparse":
            with sparse_mode(1):
                sol = dc_operating_point(ckt)
            return {"ids_a": -sol.source_current("vd")}
        if path == "dc.batch":
            # Sweep the drain through the bias point; the pilot lane is
            # elsewhere so the measured lane is a genuine batched lane.
            values = [0.6 * vds + 0.01, 0.8 * vds + 0.005, vds,
                      min(1.1 * vds + 0.02, 1.5 * self.tech.vdd)]
            sols = dc_sweep(ckt, "vd", values, batch=True)
            return {"ids_a": -sols[2].source_current("vd")}
        raise self._unknown_path(path)

    def tolerance(self, path: str) -> Tolerance:
        opts = NewtonOptions()
        _, vds = self.bias()
        # gmin shunt at the forced drain node flows through the vd
        # source alongside the channel current.
        leak = 4.0 * GMIN_FLOOR * max(vds, 1.0)
        factor = 2.0 if path == "dc.batch" else 1.0
        return Tolerance(rtol=factor * opts.reltol,
                         atol=factor * (opts.vtol + leak),
                         note="Newton stopping criterion + drain gmin")


# ----------------------------------------------------------------------
# Transient: RC step response
# ----------------------------------------------------------------------
class RcStepOracle(Oracle):
    """A one-grid-step ramp into an RC low-pass.

    The source rises 0 → V linearly over exactly one time step (so the
    input is piecewise-linear on the grid — the discontinuity a true
    ideal step would put *inside* the first step would cost both
    integrators an O(dt) startup error and mask their order).  The
    closed form for a ramp of duration T is::

        v(t ≥ T) = V·(1 − (τ/T)·(1 − e^(−T/τ))·e^(−(t−T)/τ))

    Backward Euler carries its documented O(dt/τ) band, trapezoidal its
    O((dt/τ)²) band.
    """

    category = "transient"

    def __init__(self, r_ohms: float = 1e3, c_f: float = 1e-9,
                 vstep_v: float = 1.0, points_per_tau: int = 50,
                 n_tau: int = 3):
        if r_ohms <= 0.0 or c_f <= 0.0 or vstep_v <= 0.0:
            raise ValueError("R, C and the step must be positive")
        if points_per_tau < 8 or n_tau < 1:
            raise ValueError("grid too coarse for the oracle bands")
        self.r_ohms = r_ohms
        self.c_f = c_f
        self.vstep_v = vstep_v
        self.points_per_tau = points_per_tau
        self.n_tau = n_tau
        self.name = f"rc-step-{r_ohms:g}ohm-{c_f:g}F"

    @property
    def tau_s(self) -> float:
        return self.r_ohms * self.c_f

    @property
    def dt_s(self) -> float:
        return self.tau_s / self.points_per_tau

    def build(self) -> Circuit:
        t_stop = self.n_tau * self.tau_s
        ckt = Circuit(self.name)
        ckt.voltage_source("vin", "in", "0", PulseSpec(
            v1=0.0, v2=self.vstep_v, delay_s=0.0,
            rise_s=self.dt_s, fall_s=self.dt_s,
            width_s=100.0 * t_stop, period_s=400.0 * t_stop))
        ckt.resistor("r1", "in", "out", self.r_ohms)
        ckt.capacitor("c1", "out", "0", self.c_f)
        return ckt

    def paths(self) -> Sequence[str]:
        return ("tran.be", "tran.trap")

    def _exact(self, t_s: float) -> float:
        tau, rise = self.tau_s, self.dt_s
        ramp_gain = (tau / rise) * (1.0 - math.exp(-rise / tau))
        return self.vstep_v * (
            1.0 - ramp_gain * math.exp(-(t_s - rise) / tau))

    def analytic(self) -> Dict[str, float]:
        return {
            "v_at_1tau_v": self._exact(self.tau_s),
            f"v_at_{self.n_tau}tau_v": self._exact(self.n_tau * self.tau_s),
        }

    def measure(self, path: str) -> Dict[str, float]:
        methods = {"tran.be": "backward_euler", "tran.trap": "trapezoidal"}
        if path not in methods:
            raise self._unknown_path(path)
        result = transient(self.build(), t_stop=self.n_tau * self.tau_s,
                           dt=self.dt_s, method=methods[path])
        wave = result.voltage("out")
        return {
            "v_at_1tau_v": float(wave.sample(self.tau_s)),
            f"v_at_{self.n_tau}tau_v":
                float(wave.sample(self.n_tau * self.tau_s)),
        }

    def tolerance(self, path: str) -> Tolerance:
        h = 1.0 / self.points_per_tau  # dt/τ
        if path == "tran.be":
            # Global error of BE on y' = (u-y)/τ is ≤ (h/2)·(t/τ)·e^(1-t/τ)
            # per unit step; h covers it with ~2x margin on this grid.
            return Tolerance(atol=self.vstep_v * h,
                             note="backward Euler O(dt/tau) band")
        return Tolerance(atol=self.vstep_v * h * h,
                         note="trapezoidal O((dt/tau)^2) band")


# ----------------------------------------------------------------------
# Statistical: the Pelgrom sigma law through the sampler
# ----------------------------------------------------------------------
class PelgromSigmaOracle(Oracle):
    """Sampled pair ΔV_T standard deviation vs Eq 1's closed form.

    ``σ²(ΔV_T) = A_VT²/WL + S_VT²·D²`` — the sampler must reproduce the
    law it was built from, within the sampling error of an n-draw
    standard-deviation estimate (≈ ``1/√(2n)`` relative, taken at 4σ).
    """

    category = "statistical"

    def __init__(self, tech_name: str = "90nm", w_um: float = 1.0,
                 l_um: float = 1.0, distance_m: float = 0.0,
                 n_samples: int = 2000, seed: int = 20080310):
        if n_samples < 100:
            raise ValueError("need at least 100 draws for the sigma band")
        self.tech = get_node(tech_name)
        self.w_m = w_um * 1e-6
        self.l_m = l_um * 1e-6
        self.distance_m = distance_m
        self.n_samples = n_samples
        self.seed = seed
        self.name = f"pelgrom-{tech_name}-{w_um:g}x{l_um:g}um"

    def paths(self) -> Sequence[str]:
        return ("mc.sample",)

    def analytic(self) -> Dict[str, float]:
        model = PelgromModel.for_technology(self.tech)
        sigma = model.sigma_delta_vt_v(self.w_m, self.l_m, self.distance_m)
        return {"sigma_pair_vt_v": sigma, "mean_pair_vt_v": 0.0}

    def measure(self, path: str) -> Dict[str, float]:
        if path != "mc.sample":
            raise self._unknown_path(path)
        sampler = MismatchSampler(self.tech,
                                  np.random.default_rng(self.seed))
        deltas = sampler.sample_pair_delta_vt_batch_v(
            self.w_m, self.l_m, self.n_samples, self.distance_m)
        return {"sigma_pair_vt_v": float(np.std(deltas, ddof=1)),
                "mean_pair_vt_v": float(np.mean(deltas))}

    def tolerance(self, path: str) -> Tolerance:
        rel = 4.0 / math.sqrt(2.0 * self.n_samples)
        sigma = self.analytic()["sigma_pair_vt_v"]
        return Tolerance(rtol=rel,
                         atol=4.0 * sigma / math.sqrt(self.n_samples),
                         note="4-sigma sampling error of the estimator")


# ----------------------------------------------------------------------
# Reliability laws: closed forms re-derived from the coefficient tables
# ----------------------------------------------------------------------
class WeibullOracle(Oracle):
    """TDDB Weibull quantile/CDF round trips against the closed form."""

    def __init__(self, eta_s: float = 1e8, shape: float = 1.91):
        self.eta_s = eta_s
        self.shape = shape
        self.name = f"weibull-beta{shape:g}"

    def paths(self) -> Sequence[str]:
        return ("law",)

    def analytic(self) -> Dict[str, float]:
        return {
            "median_s": self.eta_s * math.log(2.0) ** (1.0 / self.shape),
            "cdf_at_eta": 1.0 - math.exp(-1.0),
            "quantile_roundtrip": 0.25,
        }

    def measure(self, path: str) -> Dict[str, float]:
        if path != "law":
            raise self._unknown_path(path)
        return {
            "median_s": weibull_quantile(0.5, self.eta_s, self.shape),
            "cdf_at_eta": weibull_cdf(self.eta_s, self.eta_s, self.shape),
            "quantile_roundtrip": weibull_cdf(
                weibull_quantile(0.25, self.eta_s, self.shape),
                self.eta_s, self.shape),
        }

    def tolerance(self, path: str) -> Tolerance:
        return Tolerance(rtol=1e-9, atol=1e-15, note="arithmetic only")


class NbtiLawOracle(Oracle):
    """Eq 3 with relaxation, re-derived from the coefficient table."""

    def __init__(self, tech_name: str = "65nm",
                 temperature_c: float = 125.0):
        self.tech = get_node(tech_name)
        self.t_k = units.celsius_to_kelvin(temperature_c)
        self.name = f"nbti-law-{tech_name}"

    def paths(self) -> Sequence[str]:
        return ("law",)

    def _cases(self):
        ten_years = units.years_to_seconds(10.0)
        return self.tech.nominal_oxide_field(), ten_years

    def analytic(self) -> Dict[str, float]:
        c = self.tech.aging
        eox, ten_years = self._cases()
        k = (c.nbti_prefactor_v * math.exp(eox / c.nbti_e0_v_per_m)
             * math.exp(-c.nbti_ea_ev / (units.K_BOLTZMANN_EV * self.t_k)))
        n = c.nbti_time_exponent
        total_1000s = k * 1e3 ** n
        p = c.nbti_permanent_fraction
        relax = NbtiModel(c).relaxation
        remaining = 1.0 / (1.0 + relax.b * (1e5 / 1e3) ** relax.beta)
        return {
            "dvt_10yr_v": k * ten_years ** n,
            "relaxed_frac_1e5s": p + (1.0 - p) * remaining,
            "ac50_ratio": 0.5 ** n,
            "_total_1000s_v": total_1000s,
        }

    def measure(self, path: str) -> Dict[str, float]:
        if path != "law":
            raise self._unknown_path(path)
        nbti = NbtiModel(self.tech.aging)
        eox, ten_years = self._cases()
        total = nbti.delta_vt_v(eox, self.t_k, 1e3)
        return {
            "dvt_10yr_v": nbti.delta_vt_v(eox, self.t_k, ten_years),
            "relaxed_frac_1e5s":
                nbti.relaxed_delta_vt_v(total, 1e3, 1e5) / total,
            "ac50_ratio": (nbti.delta_vt_v(eox, self.t_k, 1e6, duty=0.5)
                           / nbti.delta_vt_v(eox, self.t_k, 1e6)),
            "_total_1000s_v": total,
        }

    def tolerance(self, path: str) -> Tolerance:
        return Tolerance(rtol=1e-9, atol=1e-15, note="arithmetic only")


class HciLawOracle(Oracle):
    """Eq 2 power-law time scaling through the HCI model."""

    def __init__(self, tech_name: str = "65nm"):
        self.tech = get_node(tech_name)
        self.name = f"hci-law-{tech_name}"

    def paths(self) -> Sequence[str]:
        return ("law",)

    def _device(self) -> Mosfet:
        return Mosfet.from_technology("mn", "d", "g", "s", "b", self.tech,
                                      "n", w_m=1e-6, l_m=self.tech.lmin_m)

    def analytic(self) -> Dict[str, float]:
        n = self.tech.aging.hci_time_exponent
        return {"decade_ratio": 10.0 ** n, "four_decade_ratio": 1e4 ** n}

    def measure(self, path: str) -> Dict[str, float]:
        if path != "law":
            raise self._unknown_path(path)
        hci = HciModel(self.tech.aging)
        device = self._device()
        vgs, vds = self.tech.vdd / 2.0, self.tech.vdd
        d = [hci.delta_vt_v(device, vgs, vds, 300.0, t)
             for t in (1e4, 1e5, 1e8)]
        return {"decade_ratio": d[1] / d[0], "four_decade_ratio": d[2] / d[0]}

    def tolerance(self, path: str) -> Tolerance:
        return Tolerance(rtol=1e-9, atol=1e-15, note="arithmetic only")


class EmLawOracle(Oracle):
    """Eq 4: the J⁻² current exponent and Arrhenius acceleration."""

    def __init__(self, tech_name: str = "65nm"):
        self.tech = get_node(tech_name)
        self.name = f"em-law-{tech_name}"

    def paths(self) -> Sequence[str]:
        return ("law",)

    def analytic(self) -> Dict[str, float]:
        c = self.tech.aging
        t_cold = units.celsius_to_kelvin(27.0)
        t_hot = units.celsius_to_kelvin(125.0)
        return {
            "j_double_ratio": 2.0 ** c.em_current_exponent,
            "arrhenius_27_125": math.exp(
                c.em_ea_ev / units.K_BOLTZMANN_EV
                * (1.0 / t_cold - 1.0 / t_hot)),
        }

    def measure(self, path: str) -> Dict[str, float]:
        if path != "law":
            raise self._unknown_path(path)
        em = ElectromigrationModel(self.tech.aging)
        j = 1e10  # 1 MA/cm²
        t_cold = units.celsius_to_kelvin(27.0)
        t_hot = units.celsius_to_kelvin(125.0)
        return {
            "j_double_ratio": (em.black_mttf_s(j, t_hot)
                               / em.black_mttf_s(2.0 * j, t_hot)),
            "arrhenius_27_125": (em.black_mttf_s(j, t_cold)
                                 / em.black_mttf_s(j, t_hot)),
        }

    def tolerance(self, path: str) -> Tolerance:
        return Tolerance(rtol=1e-9, atol=1e-15, note="arithmetic only")


# ----------------------------------------------------------------------
# Statistical: the high-sigma engine on a linear performance model
# ----------------------------------------------------------------------
class _LinearTailMetric:
    """Picklable ``Σ cᵢ·ΔV_T,i/σᵢ`` spec extractor.

    Under nominal sampling each term is an independent standard normal
    scaled by ``cᵢ``, so the metric is exactly ``N(0, ‖c‖)`` and every
    tail probability has a closed form — the one configuration where an
    importance-sampling estimate can be checked against ground truth.
    """

    def __init__(self, coeffs: Dict[str, float], sigmas: Dict[str, float]):
        self.coeffs = coeffs
        self.sigmas = sigmas

    def __call__(self, fixture) -> float:
        total = 0.0
        for device in fixture.circuit.mosfets:
            total += (self.coeffs[device.name]
                      * device.variation.delta_vt_v
                      / self.sigmas[device.name])
        return total


class HighSigmaLinearOracle(Oracle):
    """:class:`~repro.core.HighSigmaYield` vs an exact Gaussian tail.

    The metric is linear in the normalized ΔV_T draws (see
    :class:`_LinearTailMetric`), the spec bound sits at ``k·‖c‖`` below
    nominal, and the failure probability is exactly ``Φ(−k)``.  Because
    the probe direction recovers the gradient exactly and the engine
    shifts along it by ``s = k`` sigmas, the estimator's variance ALSO
    has a closed form: for the 1-D projection ``u ~ N(s, 1)`` under the
    proposal, ``w(u) = exp(s²/2 − s·u)`` and

        E_q[w²·1_fail] = e^{s²}·Φ(−(k + s))
        Var[p̂]        = (e^{s²}·Φ(−(k + s)) − p²) / n

    so the tolerance band is *derived*, not tuned: 4 standard errors
    for the plain path, 6 for the surrogate-screened path (the extra
    slack covers boundary samples the screener may classify from its
    fit rather than a solve).  Both paths run ``adapt=False`` with the
    explicit ``shift_sigma = k`` so the formula applies to every chunk.
    """

    category = "statistical"

    #: Deliberately anisotropic coefficients — the probe has to *find*
    #: the failure direction, not just scale a symmetric one.
    COEFFS = (1.0, -0.7)

    def __init__(self, tech_name: str = "65nm", k_sigma: float = 4.5,
                 n_samples: int = 4096, seed: int = 20080310):
        if k_sigma <= 0.0:
            raise ValueError("k_sigma must be positive")
        if n_samples < 512:
            raise ValueError("need at least 512 samples for the band")
        self.tech = get_node(tech_name)
        self.k_sigma = k_sigma
        self.n_samples = n_samples
        self.seed = seed
        self.name = f"highsigma-linear-{k_sigma:g}sigma"

    def _engine(self):
        from repro.circuits import differential_pair
        from repro.core.importance import HighSigmaYield
        from repro.core.yield_analysis import Specification

        fixture = differential_pair(self.tech, w_m=2e-6, l_m=0.13e-6)
        sampler = MismatchSampler(self.tech, np.random.default_rng(0))
        devices = fixture.circuit.mosfets
        sigmas = {d.name: sampler.sigma_single_vt_v(d.params.w_m,
                                                    d.params.l_m)
                  for d in devices}
        coeffs = {d.name: self.COEFFS[i % len(self.COEFFS)]
                  for i, d in enumerate(devices)}
        norm_c = math.sqrt(sum(c * c for c in coeffs.values()))
        spec = Specification("linear_tail",
                             _LinearTailMetric(coeffs, sigmas),
                             lower=-self.k_sigma * norm_c)
        return HighSigmaYield(fixture, spec, self.tech)

    def paths(self) -> Sequence[str]:
        return ("is.plain", "is.screened")

    def analytic(self) -> Dict[str, float]:
        from repro.core.importance import normal_sf

        return {"p_fail": normal_sf(self.k_sigma)}

    def closed_form_se(self) -> float:
        """Exact standard error of the unnormalized estimator."""
        from repro.core.importance import normal_sf

        s = k = self.k_sigma
        second_moment = math.exp(s * s) * normal_sf(k + s)
        p = normal_sf(k)
        return math.sqrt(max(second_moment - p * p, 0.0) / self.n_samples)

    def run(self, path: str):
        """The full engine result behind ``measure`` (reused by E15)."""
        from repro.core.importance import SurrogateConfig

        if path not in self.paths():
            raise self._unknown_path(path)
        surrogate = SurrogateConfig() if path == "is.screened" else None
        return self._engine().run(
            self.n_samples, shift_sigma=self.k_sigma, seed=self.seed,
            adapt=False, surrogate=surrogate)

    def measure(self, path: str) -> Dict[str, float]:
        return {"p_fail": self.run(path).failure_probability}

    def tolerance(self, path: str) -> Tolerance:
        z = 4.0 if path == "is.plain" else 6.0
        return Tolerance(atol=z * self.closed_form_se(),
                         note=f"{z:g} closed-form IS standard errors "
                              "(e^{s^2}·Φ(−(k+s)) second moment)")


def default_oracles() -> list:
    """The standing oracle library run by ``repro verify``."""
    return [
        ResistiveLadderOracle(),
        MosfetRegionOracle("subthreshold"),
        MosfetRegionOracle("triode"),
        MosfetRegionOracle("saturation"),
        RcStepOracle(),
        PelgromSigmaOracle(),
        PelgromSigmaOracle(w_um=8.0, l_um=8.0),
        PelgromSigmaOracle(distance_m=2e-3),
        WeibullOracle(),
        NbtiLawOracle(),
        HciLawOracle(),
        EmLawOracle(),
        HighSigmaLinearOracle(),
    ]
