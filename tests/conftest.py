"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.technology import get_node


@pytest.fixture(scope="session")
def tech90():
    """The 90 nm node — the default testbench technology."""
    return get_node("90nm")


@pytest.fixture(scope="session")
def tech65():
    """The 65 nm node."""
    return get_node("65nm")


@pytest.fixture(scope="session")
def tech350():
    """The 350 nm node (old, thick-oxide reference point)."""
    return get_node("350nm")


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
