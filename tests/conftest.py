"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.technology import get_node


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_registry(tmp_path_factory):
    """Point the run registry at a session-temporary directory.

    CLI tests invoke ``main(["mc", ...])`` from the repo working
    directory; without this, every such test would append a record to
    the developer's real ``.repro/runs/``.
    """
    import os

    runs_dir = tmp_path_factory.mktemp("runs")
    old = os.environ.get("REPRO_RUNS_DIR")
    os.environ["REPRO_RUNS_DIR"] = str(runs_dir)
    yield runs_dir
    if old is None:
        os.environ.pop("REPRO_RUNS_DIR", None)
    else:
        os.environ["REPRO_RUNS_DIR"] = old


@pytest.fixture(scope="session")
def tech90():
    """The 90 nm node — the default testbench technology."""
    return get_node("90nm")


@pytest.fixture(scope="session")
def tech65():
    """The 65 nm node."""
    return get_node("65nm")


@pytest.fixture(scope="session")
def tech350():
    """The 350 nm node (old, thick-oxide reference point)."""
    return get_node("350nm")


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
