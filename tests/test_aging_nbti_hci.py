"""Unit tests for the NBTI (Eq 3) and HCI (Eq 2) engines."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import DeviceStress, HciModel, NbtiModel, RelaxationParams
from repro.aging.base import MechanismState, power_law_advance
from repro.circuit import Mosfet, Waveform


def make_device(tech, polarity="p", w=1e-6, l=None):
    return Mosfet.from_technology("m1", "d", "g", "s", "b", tech, polarity,
                                  w_m=w, l_m=l if l else tech.lmin_m)


class TestPowerLawAdvance:
    def test_constant_stress_reduces_to_power_law(self):
        k, n = 1e-3, 0.2
        delta = 0.0
        for _ in range(10):
            delta = power_law_advance(delta, k, n, 100.0)
        assert delta == pytest.approx(k * 1000.0 ** n, rel=1e-9)

    def test_zero_stress_freezes_damage(self):
        assert power_law_advance(0.05, 0.0, 0.2, 1e6) == 0.05

    def test_zero_dt_is_identity(self):
        assert power_law_advance(0.05, 1e-3, 0.2, 0.0) == 0.05

    def test_higher_stress_continues_from_equivalent_time(self):
        # After damage D at stress k1, switching to k2 > k1 must continue
        # from the time at which k2 WOULD have produced D — i.e. damage
        # stays continuous and grows faster afterwards.
        d1 = power_law_advance(0.0, 1e-3, 0.5, 100.0)
        d2 = power_law_advance(d1, 2e-3, 0.5, 100.0)
        assert d2 > power_law_advance(d1, 1e-3, 0.5, 100.0)
        assert d2 < 2e-3 * (200.0) ** 0.5  # less than pure-k2 history

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            power_law_advance(0.0, 1e-3, 0.0, 1.0)
        with pytest.raises(ValueError):
            power_law_advance(-0.1, 1e-3, 0.2, 1.0)
        with pytest.raises(ValueError):
            power_law_advance(0.0, 1e-3, 0.2, -1.0)


class TestNbtiLaw:
    def test_power_law_exponent(self, tech90):
        nbti = NbtiModel(tech90.aging)
        eox = tech90.nominal_oxide_field()
        d1 = nbti.delta_vt_v(eox, 398.0, 1e4)
        d2 = nbti.delta_vt_v(eox, 398.0, 1e6)
        measured_n = math.log(d2 / d1) / math.log(100.0)
        assert measured_n == pytest.approx(tech90.aging.nbti_time_exponent,
                                           rel=1e-6)

    def test_field_acceleration(self, tech90):
        nbti = NbtiModel(tech90.aging)
        low = nbti.delta_vt_v(4e8, 398.0, 1e6)
        high = nbti.delta_vt_v(8e8, 398.0, 1e6)
        assert high / low == pytest.approx(
            math.exp(4e8 / tech90.aging.nbti_e0_v_per_m), rel=1e-6)

    def test_temperature_acceleration(self, tech90):
        nbti = NbtiModel(tech90.aging)
        eox = tech90.nominal_oxide_field()
        assert nbti.delta_vt_v(eox, 423.0, 1e6) > nbti.delta_vt_v(eox, 300.0, 1e6)

    def test_ten_year_magnitude_sensible(self, tech90):
        # Tens of mV at hot temperature over a 10-year life.
        nbti = NbtiModel(tech90.aging)
        d = nbti.delta_vt_v(tech90.nominal_oxide_field(), 398.0,
                            units.years_to_seconds(10.0))
        assert 0.01 < d < 0.2

    def test_ac_duty_scaling(self, tech90):
        # ΔV_T(duty) = ΔV_T(DC)·duty^n for periodic stress.
        nbti = NbtiModel(tech90.aging)
        eox = tech90.nominal_oxide_field()
        full = nbti.delta_vt_v(eox, 398.0, 1e6, duty=1.0)
        half = nbti.delta_vt_v(eox, 398.0, 1e6, duty=0.5)
        n = tech90.aging.nbti_time_exponent
        assert half / full == pytest.approx(0.5 ** n, rel=1e-6)

    def test_rejects_bad_inputs(self, tech90):
        nbti = NbtiModel(tech90.aging)
        with pytest.raises(ValueError):
            nbti.delta_vt_v(1e8, 300.0, 1e3, duty=1.5)
        with pytest.raises(ValueError):
            nbti.delta_vt_v(-1e8, 300.0, 1e3)
        with pytest.raises(ValueError):
            nbti.prefactor(1e8, -300.0)


class TestNbtiRelaxation:
    def test_universal_recovery_monotone(self):
        relax = RelaxationParams()
        fracs = [relax.remaining_fraction(t, 1e3)
                 for t in [0.0, 1.0, 1e2, 1e4, 1e6]]
        assert fracs[0] == 1.0
        assert all(b < a for a, b in zip(fracs, fracs[1:]))

    def test_recovery_spans_microseconds_to_days(self):
        # Observable relaxation from µs to days (refs [29], [34]).
        relax = RelaxationParams()
        early = relax.remaining_fraction(1e-6, 1e3)
        late = relax.remaining_fraction(1e5, 1e3)
        assert early > 0.9
        assert late < 0.65

    def test_permanent_component_survives(self, tech90):
        nbti = NbtiModel(tech90.aging)
        total = 0.05
        after_long_relax = nbti.relaxed_delta_vt_v(total, 1e3, 1e12)
        p = tech90.aging.nbti_permanent_fraction
        assert after_long_relax >= p * total
        assert after_long_relax < total

    def test_no_recovery_mode(self, tech90):
        nbti = NbtiModel(tech90.aging, model_recovery=False)
        assert nbti.relaxed_delta_vt_v(0.05, 1e3, 1e12) == pytest.approx(0.05)

    def test_split_adds_up(self, tech90):
        nbti = NbtiModel(tech90.aging)
        perm, rec = nbti.split(0.04)
        assert perm + rec == pytest.approx(0.04)
        assert perm == pytest.approx(
            tech90.aging.nbti_permanent_fraction * 0.04)


class TestNbtiMechanismInterface:
    def test_affects_pmos_only(self, tech90):
        nbti = NbtiModel(tech90.aging)
        assert nbti.affects(make_device(tech90, "p"))
        assert not nbti.affects(make_device(tech90, "n"))

    def test_dc_stress_accumulates(self, tech90):
        nbti = NbtiModel(tech90.aging)
        dev = make_device(tech90, "p")
        state = MechanismState()
        stress = DeviceStress.static(-tech90.vdd, 0.0, 398.0)
        nbti.advance(dev, stress, state, 1e6)
        assert state.delta_vt_v > 0.0
        assert state.stress_time_s == 1e6

    def test_positive_gate_bias_is_no_stress(self, tech90):
        nbti = NbtiModel(tech90.aging)
        dev = make_device(tech90, "p")
        state = MechanismState()
        stress = DeviceStress.static(+0.5, 0.0, 398.0)
        nbti.advance(dev, stress, state, 1e6)
        assert state.delta_vt_v == 0.0

    def test_waveform_duty_extraction(self, tech90):
        nbti = NbtiModel(tech90.aging)
        dev = make_device(tech90, "p")
        t = np.linspace(0.0, 1e-6, 1001)
        # Square-ish wave: stressed half the time at -vdd.
        vgs = np.where((t * 4e6).astype(int) % 2 == 0, -tech90.vdd, 0.0)
        stress = DeviceStress.from_waveforms(
            Waveform(t, vgs), Waveform(t, np.zeros_like(t)),
            temperature_k=398.0)
        eox, duty = nbti.stress_measures(dev, stress)
        assert duty == pytest.approx(0.5, abs=0.05)
        assert eox == pytest.approx(dev.oxide_field(tech90.vdd), rel=0.01)

    def test_contribute_writes_degradation(self, tech90):
        nbti = NbtiModel(tech90.aging)
        dev = make_device(tech90, "p")
        state = MechanismState(delta_vt_v=0.03, stress_time_s=1e6)
        nbti.contribute(dev, state)
        assert dev.degradation.delta_vt_v == pytest.approx(0.03)
        assert dev.degradation.beta_factor < 1.0


class TestHciLaw:
    def test_power_law_exponent(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        d1 = hci.delta_vt_v(dev, 0.6, 1.2, 300.0, 1e4)
        d2 = hci.delta_vt_v(dev, 0.6, 1.2, 300.0, 1e6)
        n = math.log(d2 / d1) / math.log(100.0)
        assert n == pytest.approx(tech90.aging.hci_time_exponent, rel=1e-6)

    def test_needs_conduction(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        assert hci.delta_vt_v(dev, 0.0, 1.2, 300.0, 1e6) == 0.0

    def test_needs_pinchoff_field(self, tech90):
        # Deep triode: no velocity-saturated region, no hot carriers.
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        assert hci.delta_vt_v(dev, 1.2, 0.05, 300.0, 1e6) == 0.0

    def test_vds_acceleration_is_exponential(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        d_low = hci.delta_vt_v(dev, 0.6, 1.0, 300.0, 1e4)
        d_high = hci.delta_vt_v(dev, 0.6, 1.4, 300.0, 1e4)
        assert d_high / d_low > 3.0

    def test_worst_case_near_half_vdd_gate(self, tech90):
        # The substrate-current peak: vgs ≈ vdd/2 beats vgs = vdd.
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        mid = hci.delta_vt_v(dev, 0.6, 1.2, 300.0, 1e6)
        full = hci.delta_vt_v(dev, 1.2, 1.2, 300.0, 1e6)
        assert mid > full

    def test_nmos_worse_than_pmos(self, tech90):
        hci = HciModel(tech90.aging)
        dn = make_device(tech90, "n")
        dp = make_device(tech90, "p")
        d_n = hci.delta_vt_v(dn, 0.6, 1.2, 300.0, 1e6)
        d_p = hci.delta_vt_v(dp, 0.6, 1.2, 300.0, 1e6)
        assert d_n > 5.0 * d_p

    def test_long_channel_immune(self, tech90):
        hci = HciModel(tech90.aging)
        short = make_device(tech90, "n", l=tech90.lmin_m)
        long_ = make_device(tech90, "n", l=10e-6)
        d_short = hci.delta_vt_v(short, 0.6, 1.2, 300.0, 1e6)
        d_long = hci.delta_vt_v(long_, 0.6, 1.2, 300.0, 1e6)
        assert d_long < 1e-3 * d_short


class TestHciMechanismInterface:
    def test_affects_both_polarities(self, tech90):
        hci = HciModel(tech90.aging)
        assert hci.affects(make_device(tech90, "n"))
        assert hci.affects(make_device(tech90, "p"))

    def test_waveform_averaged_prefactor(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        t = np.linspace(0.0, 1e-6, 1001)
        # Half the time at worst-case stress, half off.
        on = ((t * 4e6).astype(int) % 2 == 0)
        vgs = np.where(on, 0.6, 0.0)
        vds = np.where(on, 1.2, 0.0)
        stress = DeviceStress.from_waveforms(Waveform(t, vgs),
                                             Waveform(t, vds))
        k_wave = hci.effective_prefactor(dev, stress)
        k_dc = hci.prefactor(dev, 0.6, 1.2, units.T_ROOM)
        assert k_wave == pytest.approx(0.5 * k_dc, rel=0.05)

    def test_contribute_degrades_beta_and_ro(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        state = MechanismState(delta_vt_v=0.04)
        hci.contribute(dev, state)
        assert dev.degradation.delta_vt_v == pytest.approx(0.04)
        assert dev.degradation.beta_factor < 1.0
        assert dev.degradation.lambda_factor > 1.0

    def test_advance_accumulates(self, tech90):
        hci = HciModel(tech90.aging)
        dev = make_device(tech90, "n")
        state = MechanismState()
        stress = DeviceStress.static(0.6, 1.2, 378.0)
        hci.advance(dev, stress, state, 1e5)
        d1 = state.delta_vt_v
        hci.advance(dev, stress, state, 1e5)
        assert state.delta_vt_v > d1
        # Sub-linear accumulation (n < 1).
        assert state.delta_vt_v < 2.0 * d1
