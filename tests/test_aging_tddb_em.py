"""Unit tests for TDDB (§3.1) and electromigration (§3.4, Eq 4)."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import (
    BreakdownMode,
    ElectromigrationModel,
    InterconnectNetwork,
    TddbModel,
    WireSegment,
    weibit,
    weibull_cdf,
    weibull_quantile,
)
from repro.circuit import Mosfet


class TestWeibullHelpers:
    def test_cdf_at_eta(self):
        assert weibull_cdf(1e3, 1e3, 2.0) == pytest.approx(1 - math.exp(-1))

    def test_cdf_zero_time(self):
        assert weibull_cdf(0.0, 1e3, 2.0) == 0.0

    def test_quantile_roundtrip(self):
        t = weibull_quantile(0.1, 1e3, 1.4)
        assert weibull_cdf(t, 1e3, 1.4) == pytest.approx(0.1)

    def test_weibit_transform(self):
        # At F = 1-1/e the weibit is 0.
        assert weibit(1 - math.exp(-1)) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            weibull_cdf(1.0, -1.0, 2.0)
        with pytest.raises(ValueError):
            weibull_quantile(1.5, 1e3, 2.0)
        with pytest.raises(ValueError):
            weibit(0.0)


class TestTddbStatistics:
    def test_field_acceleration(self, tech90):
        tddb = TddbModel(tech90.aging)
        eta_low = tddb.characteristic_life_s(5e8, 1.0)
        eta_high = tddb.characteristic_life_s(7e8, 1.0)
        assert eta_low > 100.0 * eta_high

    def test_area_scaling_poisson(self, tech90):
        tddb = TddbModel(tech90.aging)
        beta = tech90.aging.tddb_weibull_shape
        eta1 = tddb.characteristic_life_s(6e8, 1.0)
        eta100 = tddb.characteristic_life_s(6e8, 100.0)
        assert eta1 / eta100 == pytest.approx(100.0 ** (1.0 / beta), rel=1e-6)

    def test_temperature_acceleration(self, tech90):
        tddb = TddbModel(tech90.aging)
        assert (tddb.characteristic_life_s(6e8, 1.0, 398.0)
                < tddb.characteristic_life_s(6e8, 1.0, 300.0))

    def test_nominal_life_after_scaling_storyline(self, tech350, tech65):
        # η at nominal field: centuries at 350 nm, ~decades at 65 nm.
        eta_old = TddbModel(tech350.aging).characteristic_life_s(
            tech350.nominal_oxide_field(), 1.0)
        eta_new = TddbModel(tech65.aging).characteristic_life_s(
            tech65.nominal_oxide_field(), 1.0)
        assert units.seconds_to_years(eta_old) > 300.0
        assert 2.0 < units.seconds_to_years(eta_new) < 100.0

    def test_failure_probability_monotone(self, tech90):
        tddb = TddbModel(tech90.aging)
        eox = tech90.nominal_oxide_field()
        probs = [tddb.failure_probability(t, eox, 1.0)
                 for t in [1e3, 1e6, 1e9]]
        assert all(b > a for a, b in zip(probs, probs[1:]))

    def test_time_to_fraction_inverse(self, tech90):
        tddb = TddbModel(tech90.aging)
        eox = tech90.nominal_oxide_field()
        t1 = tddb.time_to_fraction_s(0.01, eox, 1.0)
        assert tddb.failure_probability(t1, eox, 1.0) == pytest.approx(0.01)

    def test_sampled_times_follow_weibull(self, tech90, rng):
        tddb = TddbModel(tech90.aging)
        eox = 8e8  # accelerated
        events = [tddb.sample_breakdown(rng, tech90.tox_nm, eox, 1.0)
                  for _ in range(2000)]
        times = np.array([e.t_first_bd_s for e in events])
        eta = tddb.characteristic_life_s(eox, 1.0)
        # At t = η the empirical CDF should be 1 − 1/e.
        frac = float(np.mean(times <= eta))
        assert frac == pytest.approx(1 - math.exp(-1), abs=0.03)


class TestBreakdownModes:
    def test_mode_sequences_by_thickness(self, tech90):
        tddb = TddbModel(tech90.aging)
        assert tddb.mode_sequence(7.5) == [BreakdownMode.HARD]
        assert tddb.mode_sequence(4.0) == [BreakdownMode.SOFT,
                                           BreakdownMode.HARD]
        assert tddb.mode_sequence(2.0) == [BreakdownMode.SOFT,
                                           BreakdownMode.PROGRESSIVE,
                                           BreakdownMode.HARD]

    def test_event_mode_at(self, tech90, rng):
        tddb = TddbModel(tech90.aging)
        event = tddb.sample_breakdown(rng, 2.0, 8e8, 1.0)
        assert event.mode_at(0.0) is None
        assert event.mode_at(event.t_first_bd_s) is BreakdownMode.PROGRESSIVE
        assert event.mode_at(event.t_hard_bd_s) is BreakdownMode.HARD
        assert event.t_hard_bd_s > event.t_first_bd_s

    def test_progressive_leak_grows_to_hbd(self, tech90):
        from repro.aging.tddb import HBD_LEAK_S, SBD_LEAK_S

        tddb = TddbModel(tech90.aging)
        g0 = tddb.progressive_leak_s(0.0, 1e7)
        g_mid = tddb.progressive_leak_s(1e6, 1e7)
        g_end = tddb.progressive_leak_s(1e9, 1e7)
        assert g0 == pytest.approx(SBD_LEAK_S)
        assert g0 < g_mid < g_end
        assert g_end == pytest.approx(HBD_LEAK_S)

    def test_channel_impact_hard_worse_than_soft(self, tech90):
        tddb = TddbModel(tech90.aging)
        soft = tddb.channel_impact_factor(BreakdownMode.SOFT, 0.5, 1e-6)
        hard = tddb.channel_impact_factor(BreakdownMode.HARD, 0.5, 1e-6)
        assert hard < soft <= 1.0

    def test_channel_impact_mid_channel_worst(self, tech90):
        tddb = TddbModel(tech90.aging)
        mid = tddb.channel_impact_factor(BreakdownMode.HARD, 0.5, 1e-6)
        edge = tddb.channel_impact_factor(BreakdownMode.HARD, 0.0, 1e-6)
        assert mid < edge

    def test_narrow_devices_hit_harder(self, tech90):
        tddb = TddbModel(tech90.aging)
        narrow = tddb.channel_impact_factor(BreakdownMode.HARD, 0.5, 0.2e-6)
        wide = tddb.channel_impact_factor(BreakdownMode.HARD, 0.5, 5e-6)
        assert narrow < wide

    def test_apply_breakdown_sets_device(self, tech90):
        from repro.aging.tddb import HBD_LEAK_S

        tddb = TddbModel(tech90.aging)
        dev = Mosfet.from_technology("m", "d", "g", "s", "b", tech90, "n",
                                     w_m=1e-6, l_m=0.09e-6)
        tddb.apply_breakdown(dev, BreakdownMode.HARD, spot_position=0.8)
        assert dev.degradation.gate_leak_s == pytest.approx(HBD_LEAK_S)
        assert dev.degradation.bd_spot_position == pytest.approx(0.8)
        assert dev.degradation.beta_factor < 1.0


class TestBlackEquation:
    def test_current_exponent(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        m1 = em.black_mttf_s(1e10)
        m2 = em.black_mttf_s(2e10)
        assert m1 / m2 == pytest.approx(4.0, rel=1e-6)

    def test_temperature_acceleration(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        assert em.black_mttf_s(1e10, 378.0) < em.black_mttf_s(1e10, 300.0)

    def test_zero_current_immortal(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        assert em.black_mttf_s(0.0) == math.inf

    def test_magnitude_at_design_jmax(self, tech65):
        # Years-scale life at the design-rule current density at the
        # 105 C sign-off corner; centuries at room temperature.
        em = ElectromigrationModel(tech65.aging)
        hot = units.seconds_to_years(
            em.black_mttf_s(1e10, units.celsius_to_kelvin(105.0)))
        cold = units.seconds_to_years(em.black_mttf_s(1e10))
        assert 1.0 < hot < 100.0
        assert cold > 100.0 * hot


class TestWireSegment:
    def seg(self, **kw):
        defaults = dict(name="w", node_a="a", node_b="b", width_m=0.2e-6,
                        length_m=50e-6, thickness_m=0.2e-6)
        defaults.update(kw)
        return WireSegment(**defaults)

    def test_resistance(self):
        s = self.seg(width_m=1e-6, length_m=100e-6, thickness_m=0.5e-6,
                     resistivity_ohm_m=2.2e-8)
        assert s.resistance_ohm == pytest.approx(2.2e-8 * 100e-6 / 0.5e-12)

    def test_current_density(self):
        s = self.seg(width_m=1e-6, thickness_m=1e-6)
        assert s.current_density(1e-3) == pytest.approx(1e9)

    def test_widened(self):
        s = self.seg()
        w2 = s.widened(2.0)
        assert w2.width_m == pytest.approx(2 * s.width_m)
        assert s.width_m == pytest.approx(0.2e-6)  # original untouched

    def test_reservoir_requires_via(self):
        with pytest.raises(ValueError, match="reservoir"):
            self.seg(has_via=False, has_reservoir=True)


class TestEmCorrections:
    def seg(self, **kw):
        defaults = dict(name="w", node_a="a", node_b="b", width_m=0.2e-6,
                        length_m=100e-6, thickness_m=0.2e-6)
        defaults.update(kw)
        return WireSegment(**defaults)

    def test_blech_immunity(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        short = self.seg(length_m=1e-6)
        # J·L = I/(w·t)·L: pick I so J·L is below 3e3 A/m.
        i_small = 0.5 * tech65.aging.em_blech_product_a_per_m * (
            short.cross_section_m2 / short.length_m)
        assert em.is_blech_immune(short, i_small)
        assert em.segment_mttf_s(short, i_small) == math.inf

    def test_long_wire_not_immune(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        long_ = self.seg(length_m=1e-3)
        assert not em.is_blech_immune(long_, 1e-3)
        assert em.segment_mttf_s(long_, 1e-3) < math.inf

    def test_bamboo_bonus(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        narrow = self.seg(width_m=0.5 * tech65.aging.em_bamboo_width_m)
        wide = self.seg(width_m=4.0 * tech65.aging.em_bamboo_width_m)
        # Same current DENSITY: scale current with cross-section.
        i_n = 1e10 * narrow.cross_section_m2
        i_w = 1e10 * wide.cross_section_m2
        assert (em.segment_mttf_s(narrow, i_n)
                == pytest.approx(tech65.aging.em_bamboo_bonus
                                 * em.segment_mttf_s(wide, i_w), rel=1e-6))

    def test_via_penalty_and_reservoir(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        plain = self.seg()
        via = self.seg(has_via=True)
        res = self.seg(has_via=True, has_reservoir=True)
        i = 1e-3
        assert em.segment_mttf_s(via, i) < em.segment_mttf_s(plain, i)
        assert (em.segment_mttf_s(via, i)
                < em.segment_mttf_s(res, i)
                < em.segment_mttf_s(plain, i))

    def test_required_width_meets_target(self, tech65):
        em = ElectromigrationModel(tech65.aging)
        seg = self.seg(width_m=0.1e-6)
        target = units.years_to_seconds(10.0)
        i = 2e-3
        hot = units.celsius_to_kelvin(105.0)
        w_req = em.required_width_m(seg, i, target, temperature_k=hot)
        assert w_req > seg.width_m
        widened = seg.widened(w_req / seg.width_m)
        assert em.segment_mttf_s(widened, i, hot) >= target * 0.99


class TestInterconnectNetwork:
    def build_net(self, tech65):
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("trunk", "src", "mid", width_m=0.3e-6, length_m=200e-6,
                 has_via=True)
        net.wire("branch_a", "mid", "gnd", width_m=0.2e-6, length_m=100e-6)
        net.wire("branch_b", "mid", "gnd", width_m=0.6e-6, length_m=100e-6)
        net.inject("src", 3e-3)
        net.inject("gnd", -3e-3)
        net.set_ground("gnd")
        return net

    def test_current_conservation(self, tech65):
        net = self.build_net(tech65)
        currents = net.solve_currents()
        assert currents["trunk"] == pytest.approx(3e-3, rel=1e-9)
        assert (currents["branch_a"] + currents["branch_b"]
                == pytest.approx(3e-3, rel=1e-9))

    def test_current_divides_by_conductance(self, tech65):
        net = self.build_net(tech65)
        currents = net.solve_currents()
        # branch_b is 3× wider → 3× the conductance → 3× the current.
        assert (currents["branch_b"] / currents["branch_a"]
                == pytest.approx(3.0, rel=1e-9))

    def test_analysis_ranks_weakest_first(self, tech65):
        net = self.build_net(tech65)
        reports = net.analyze(ElectromigrationModel(tech65.aging))
        mttfs = [r.mttf_s for r in reports]
        assert mttfs == sorted(mttfs)
        assert reports[0].segment.name == "trunk"  # all current + via

    def test_system_mttf_is_weakest(self, tech65):
        net = self.build_net(tech65)
        em = ElectromigrationModel(tech65.aging)
        assert net.system_mttf_s(em) == net.analyze(em)[0].mttf_s

    def test_jmax_violation_flag(self, tech65):
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("hot", "a", "gnd", width_m=0.1e-6, length_m=100e-6)
        net.inject("a", 10e-3)
        net.inject("gnd", -10e-3)
        net.set_ground("gnd")
        reports = net.analyze(ElectromigrationModel(tech65.aging))
        assert reports[0].violates_jmax

    def test_fix_em_violations_widens(self, tech65):
        net = self.build_net(tech65)
        em = ElectromigrationModel(tech65.aging)
        target = units.years_to_seconds(10.0)
        hot = units.celsius_to_kelvin(105.0)
        before = net.system_mttf_s(em, hot)
        assert before < target  # the grid starts in violation at 105 C
        widened = net.fix_em_violations(em, target, temperature_k=hot)
        assert net.system_mttf_s(em, hot) >= target * 0.95
        assert widened  # something had to change

    def test_requires_ground(self, tech65):
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("w", "a", "b", width_m=0.2e-6, length_m=10e-6)
        with pytest.raises(ValueError, match="set_ground"):
            net.solve_currents()

    def test_duplicate_segment_rejected(self, tech65):
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("w", "a", "b", width_m=0.2e-6, length_m=10e-6)
        with pytest.raises(ValueError, match="duplicate"):
            net.wire("w", "b", "c", width_m=0.2e-6, length_m=10e-6)
        # Parallel segments between the same nodes are fine (real layouts
        # strap wires in parallel); only names must be unique.
        net.wire("w2", "a", "b", width_m=0.2e-6, length_m=10e-6)

    def test_unknown_injection_node(self, tech65):
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("w", "a", "gnd", width_m=0.2e-6, length_m=10e-6)
        net.inject("zz", 1e-3)
        net.set_ground("gnd")
        with pytest.raises(ValueError, match="unknown node"):
            net.solve_currents()
