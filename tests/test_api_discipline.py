"""API-discipline meta-tests: every public symbol documented and exported.

Production hygiene, enforced: public functions/classes/methods carry
docstrings, ``__all__`` lists are sorted and resolvable, and the package
imports cleanly without circular-import surprises.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.technology",
    "repro.circuit",
    "repro.variability",
    "repro.aging",
    "repro.emc",
    "repro.circuits",
    "repro.core",
    "repro.solutions",
    "repro.digitalflow",
    "repro.obs",
]


def iter_modules():
    """All repro modules, recursively."""
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(importlib.import_module(
                    f"{pkg_name}.{info.name}"))
    return {m.__name__: m for m in seen}.values()


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in iter_modules()
                        if not (m.__doc__ or "").strip()]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_callable_documented(self):
        missing = []
        for module in iter_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(obj) or inspect.isclass(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public API: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in iter_modules():
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for meth_name, meth in vars(cls).items():
                    if meth_name.startswith("_"):
                        continue
                    func = meth.fget if isinstance(meth, property) else meth
                    if isinstance(meth, (staticmethod, classmethod)):
                        func = meth.__func__
                    if not callable(func):
                        continue
                    if (getattr(func, "__doc__", "") or "").strip():
                        continue
                    # An override inherits its contract from a documented
                    # base-class method (stamp_dc, advance, ...).
                    inherited = any(
                        (getattr(getattr(base, meth_name, None), "__doc__",
                                 "") or "").strip()
                        for base in cls.__mro__[1:])
                    if not inherited:
                        missing.append(
                            f"{module.__name__}.{cls_name}.{meth_name}")
        assert not missing, f"undocumented methods: {missing}"


class TestExports:
    @pytest.mark.parametrize("pkg_name", PACKAGES[1:])
    def test_all_lists_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", None)
        assert exported, f"{pkg_name} has no __all__"
        for name in exported:
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists {name!r} " \
                                       f"but it is not importable"

    @pytest.mark.parametrize("pkg_name", PACKAGES[1:])
    def test_no_duplicate_exports(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = list(getattr(pkg, "__all__", []))
        assert len(exported) == len(set(exported))
