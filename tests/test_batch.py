"""Batched ensemble DC engine vs the scalar path (repro.circuit.batch).

The contract under test: batched and scalar solves iterate to the same
fixed point with the same stopping criterion, so their answers agree
within a small multiple of the Newton tolerance — across the circuits
library, under forced lane fallback, in dies-as-lanes per-lane mode,
and end-to-end through ``MonteCarloYield(batch_size=)`` on every
backend.  The multiple is no longer a blanket 10x: each circuit class
carries the measured factor documented in
``repro.verify.differential.BATCH_AGREEMENT_FACTORS`` (worst observed
gaps are ~1e-6x the criterion — see docs/verification.md), so a real
divergence between the paths can no longer hide under a loose bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faultinject, telemetry
from repro.circuit import (
    BatchUnsupportedError,
    NewtonOptions,
    batch_engine,
    batched_sweeps,
    can_batch,
    dc_operating_point,
    dc_sweep,
)
from repro.circuits import (
    beta_multiplier_reference,
    differential_pair,
    five_transistor_ota,
    input_referred_offset_v,
    inverter,
    simple_current_mirror,
)
from repro.core import MonteCarloYield, Specification
from repro.variability.sampler import MismatchSampler
from repro.verify.differential import BATCH_AGREEMENT_FACTORS, batch_state_bound

#: Dies-as-lanes / forced-fallback paths re-enter the scalar ladder from
#: a pilot-seeded start, so they get the differential pair's sweep
#: factor with the same measured headroom (worst observed ~4e-6x).
_LANE_FACTOR = BATCH_AGREEMENT_FACTORS["differential_pair"]


def _assert_states_close(x_batch, x_scalar, factor, options=None):
    """Per-unknown |Δx| ≤ factor·(vtol + reltol·scale) — the solver's
    own convergence criterion scaled by the documented per-class
    factor."""
    limit = batch_state_bound(x_scalar, factor, options)
    np.testing.assert_array_less(np.abs(np.asarray(x_batch) - x_scalar),
                                 limit)


def _compare_sweep(circuit, source, values, class_key):
    factor = BATCH_AGREEMENT_FACTORS[class_key]
    scalar = dc_sweep(circuit, source, values, batch=False)
    batched = dc_sweep(circuit, source, values, batch=True)
    assert len(scalar) == len(batched) == len(values)
    for sol_b, sol_s in zip(batched, scalar):
        _assert_states_close(sol_b.x, sol_s.x, factor)


# ----------------------------------------------------------------------
# Corpus: batched sweep matches scalar on the circuits library
# ----------------------------------------------------------------------
class TestBatchedSweepCorpus:
    def test_differential_pair(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        _compare_sweep(fx.circuit, "vinp",
                       np.linspace(vcm - 0.2, vcm + 0.2, 41),
                       "differential_pair")

    def test_five_transistor_ota(self, tech90):
        fx = five_transistor_ota(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        _compare_sweep(fx.circuit, "vinp",
                       np.linspace(vcm - 0.1, vcm + 0.1, 21),
                       "five_transistor_ota")

    def test_simple_current_mirror(self, tech90):
        fx = simple_current_mirror(tech90)
        _compare_sweep(fx.circuit, "vout",
                       np.linspace(0.05, tech90.vdd, 33),
                       "simple_current_mirror")

    def test_inverter_full_vtc(self, tech90):
        # The full VTC crosses the high-gain transition region — the
        # hardest stretch for a shared pilot seed.
        fx = inverter(tech90)
        _compare_sweep(fx.circuit, "vin",
                       np.linspace(0.0, tech90.vdd, 41), "inverter_vtc")

    def test_beta_multiplier_supply_sweep(self, tech90):
        fx = beta_multiplier_reference(tech90)
        _compare_sweep(fx.circuit, "vdd",
                       np.linspace(0.8 * tech90.vdd, 1.1 * tech90.vdd, 13),
                       "beta_multiplier_reference")

    def test_multiple_slabs(self, tech90):
        # More points than max_lanes → several slabs with x-carry.
        fx = inverter(tech90)
        values = np.linspace(0.0, tech90.vdd, 23)
        scalar = dc_sweep(fx.circuit, "vin", values, batch=False)
        from repro.circuit import batched_dc_sweep
        batched = batched_dc_sweep(fx.circuit, "vin", values, max_lanes=8)
        for sol_b, sol_s in zip(batched, scalar):
            _assert_states_close(sol_b.x, sol_s.x,
                                 BATCH_AGREEMENT_FACTORS["inverter_vtc"])

    def test_single_point_stays_scalar(self, tech90):
        fx = inverter(tech90)
        with telemetry.session() as sess:
            dc_sweep(fx.circuit, "vin", [0.5], batch=True)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.dc.batch" not in names
        assert "solve.dc" in names

    @settings(max_examples=8, deadline=None)
    @given(start=st.floats(0.0, 0.3), span=st.floats(0.1, 0.9),
           n=st.integers(3, 17))
    def test_property_arbitrary_ranges(self, start, span, n):
        from repro.technology import get_node

        fx = inverter(get_node("90nm"))
        _compare_sweep(fx.circuit, "vin",
                       np.linspace(start, start + span, n), "inverter_vtc")


# ----------------------------------------------------------------------
# Routing and scope
# ----------------------------------------------------------------------
class TestRouting:
    def test_batched_sweeps_context_routes(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 9)
        with telemetry.session() as sess, batched_sweeps():
            dc_sweep(fx.circuit, "vinp", values)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.dc.batch" in names

    def test_batch_false_overrides_context(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 9)
        with telemetry.session() as sess, batched_sweeps():
            dc_sweep(fx.circuit, "vinp", values, batch=False)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.dc.batch" not in names

    def test_context_lane_cap_slabs(self, tech90):
        fx = inverter(tech90)
        values = np.linspace(0.0, tech90.vdd, 20)
        with telemetry.session() as sess, batched_sweeps(max_lanes=8):
            dc_sweep(fx.circuit, "vin", values)
        spans = [r for r in sess.tracer.export_records()
                 if r["name"] == "solve.dc.batch"]
        assert [s["attrs"]["lanes"] for s in spans] == [8, 8, 4]

    def test_other_nonlinear_falls_back_to_scalar(self, tech90):
        from repro.circuit import Circuit

        ckt = Circuit("diode-load")
        ckt.voltage_source("vdd", "vdd", "0", 1.0)
        ckt.resistor("r1", "vdd", "a", 1e3)
        ckt.diode("d1", "a", "0")
        assert not can_batch(ckt)
        values = np.linspace(0.4, 1.2, 7)
        with telemetry.session() as sess:
            batched = dc_sweep(ckt, "vdd", values, batch=True)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.dc.batch" not in names  # silently scalar
        scalar = dc_sweep(ckt, "vdd", values, batch=False)
        for sol_b, sol_s in zip(batched, scalar):
            np.testing.assert_allclose(sol_b.x, sol_s.x, rtol=0, atol=1e-12)

    def test_invalid_lane_cap_rejected(self):
        with pytest.raises(ValueError):
            with batched_sweeps(max_lanes=0):
                pass


# ----------------------------------------------------------------------
# Forced scalar fallback (faultinject)
# ----------------------------------------------------------------------
class TestLaneFallback:
    def test_forced_fallback_lane_matches_scalar(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.2, vcm + 0.2, 17)
        scalar = dc_sweep(fx.circuit, "vinp", values, batch=False)
        faultinject.force_batch_lane_fallback(fx.circuit, [3, 11])
        try:
            with telemetry.session() as sess:
                batched = dc_sweep(fx.circuit, "vinp", values, batch=True)
            assert sess.metrics.counter(
                "solver.dc.batch.fallback_lanes") == 2
            span = next(r for r in sess.tracer.export_records()
                        if r["name"] == "solve.dc.batch")
            assert span["attrs"]["fallback_lanes"] == 2
            # Ladder-solved lanes obey the same agreement contract.
            for sol_b, sol_s in zip(batched, scalar):
                _assert_states_close(sol_b.x, sol_s.x, _LANE_FACTOR)
        finally:
            faultinject.clear_batch_lane_fallback(fx.circuit)

    def test_fallback_preserves_convergence_error(self, tech90):
        # A lane that cannot converge anywhere must surface the scalar
        # ladder's ConvergenceError, not a batch-specific failure.
        from repro.circuit import ConvergenceError

        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        faultinject.force_nonconvergence(fx.circuit,
                                         fx.circuit.mosfets[0].name)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_sweep(fx.circuit, "vinp",
                     np.linspace(vcm - 0.1, vcm + 0.1, 5), batch=True)
        assert excinfo.value.report is not None


# ----------------------------------------------------------------------
# Dies-as-lanes: per-lane parameter snapshots
# ----------------------------------------------------------------------
class TestDiesAsLanes:
    def test_load_lane_matches_per_die_scalar(self, tech90):
        fx = differential_pair(tech90)
        n_lanes = 4
        engine = batch_engine(fx.circuit, n_lanes)
        assert engine.group is not None
        sampler = MismatchSampler(tech90, np.random.default_rng(42))
        dies = []
        for lane in range(n_lanes):
            sampler.assign(fx.circuit)
            dies.append({m.name: m.variation
                         for m in fx.circuit.mosfets})
            engine.group.load_lane(lane)
        assert engine.group.lane_mode
        opts = NewtonOptions()
        pilot = dc_operating_point(fx.circuit)
        engine.stamp_base(opts.gmin)
        X0 = np.tile(pilot.x, (n_lanes, 1))
        X, converged, iters, _ = engine.solve(X0, opts)
        assert converged.all()
        assert (iters > 0).all()
        for lane in range(n_lanes):
            for m in fx.circuit.mosfets:
                m.variation = dies[lane][m.name]
            reference = dc_operating_point(fx.circuit)
            _assert_states_close(X[lane], reference.x, _LANE_FACTOR, opts)

    def test_params_object_swap_raises(self, tech90):
        from dataclasses import replace

        fx = differential_pair(tech90)
        engine = batch_engine(fx.circuit, 2)
        engine.group.set_uniform()
        engine.group.load_lane(0)
        device = fx.circuit.mosfets[0]
        device.params = replace(device.params)
        with pytest.raises(BatchUnsupportedError):
            engine.group.load_lane(1)


# ----------------------------------------------------------------------
# Monte-Carlo seam: batch_size= agrees with scalar on every backend
# ----------------------------------------------------------------------
class TestMonteCarloBatch:
    def _mc(self, tech90):
        fx = differential_pair(tech90)
        spec = Specification("offset", input_referred_offset_v,
                             lower=-5e-3, upper=5e-3)
        return MonteCarloYield(fx, [spec], tech90)

    @pytest.mark.parametrize("backend,jobs", [("serial", 1),
                                              ("thread", 2),
                                              ("process", 2)])
    def test_batched_mc_matches_scalar(self, tech90, backend, jobs):
        mc = self._mc(tech90)
        scalar = mc.run(n_samples=16, seed=5)
        batched = mc.run(n_samples=16, seed=5, jobs=jobs, backend=backend,
                         batch_size=32)
        # Identical variates → identical verdicts; metrics agree within
        # Newton tolerance (the extractor interpolates between sweep
        # points, which only tightens the agreement).
        np.testing.assert_array_equal(scalar.passes, batched.passes)
        np.testing.assert_allclose(batched.values["offset"],
                                   scalar.values["offset"],
                                   rtol=0, atol=1e-7)
        assert scalar.yield_fraction == batched.yield_fraction

    def test_batch_size_validation(self, tech90):
        mc = self._mc(tech90)
        with pytest.raises(ValueError):
            mc.run(n_samples=4, batch_size=0)

    def test_batched_mc_emits_batch_spans(self, tech90):
        mc = self._mc(tech90)
        with telemetry.session() as sess:
            mc.run(n_samples=4, seed=1, batch_size=64)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.dc.batch" in names
        assert sess.metrics.counter("solver.dc.batch.solves") > 0
