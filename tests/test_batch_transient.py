"""Lockstep batched transient vs the scalar integrator.

The contract under test (``repro.circuit.batch_transient``): every lane
of a batched integration lands on the same fixed output grid as the
scalar :func:`~repro.circuit.transient.transient` and agrees with it
within the batch/scalar Newton-agreement bound — with uniform lanes,
with per-die mismatch configurations, under LTE step control, and when
lanes are forced out of the batch onto the scalar fallback.  The same
seam is then checked end-to-end through ``MonteCarloYield`` transient
specs and the ``aging_ensemble(batch_size=)`` lockstep driver.
"""

import numpy as np
import pytest

from repro import faultinject, telemetry
from repro.aging import HciModel, NbtiModel
from repro.circuit import ConvergenceError, batched_transient, transient
from repro.circuits import (
    differential_pair,
    oscillation_frequency,
    ring_oscillator,
)
from repro.core import (
    MissionProfile,
    MonteCarloYield,
    aging_ensemble,
    transient_specification,
)
from repro.variability.sampler import MismatchSampler
from repro.verify.differential import BATCH_AGREEMENT_FACTORS, batch_state_bound

#: Per-state agreement bound between the batched and scalar integrators.
#: Each accepted step re-converges both paths to the same companion
#: system within the Newton criterion; the differential pair's measured
#: sweep factor bounds the per-step gap with the same headroom.
_LANE_FACTOR = BATCH_AGREEMENT_FACTORS["differential_pair"]


def _assert_traces_close(result_batch, result_scalar):
    np.testing.assert_array_equal(result_batch.times, result_scalar.times)
    limit = batch_state_bound(result_scalar.states, _LANE_FACTOR)
    np.testing.assert_array_less(
        np.abs(result_batch.states - result_scalar.states), limit)


# ----------------------------------------------------------------------
# Agreement with the scalar integrator
# ----------------------------------------------------------------------
class TestBatchedTransientAgreement:
    def test_uniform_lanes_match_scalar(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        scalar = transient(fx.circuit, t_stop=0.5e-9, dt=5e-12)
        results = batched_transient(fx.circuit, 4, t_stop=0.5e-9, dt=5e-12)
        assert len(results) == 4
        for res in results:
            assert res.states.shape == scalar.states.shape
            _assert_traces_close(res, scalar)

    def test_mismatch_lanes_match_per_die_scalar(self, tech90):
        fx = differential_pair(tech90)
        devices = fx.circuit.mosfets
        sampler = MismatchSampler(tech90, np.random.default_rng(7))
        dies = []
        for _ in range(4):
            sampler.assign(fx.circuit)
            dies.append([m.variation for m in devices])

        def configure(lane):
            for m, v in zip(devices, dies[lane]):
                m.variation = v

        results = batched_transient(fx.circuit, 4, t_stop=1e-9, dt=2e-11,
                                    configure=configure)
        for lane in range(4):
            configure(lane)
            scalar = transient(fx.circuit, t_stop=1e-9, dt=2e-11)
            _assert_traces_close(results[lane], scalar)
        sampler.clear(fx.circuit)

    def test_lte_controlled_grid_matches_scalar(self, tech90):
        # Step halving is internal: the output grid must stay fixed and
        # the answers must track the scalar integrator run with the
        # same LTE control.
        fx = ring_oscillator(tech90, n_stages=3)
        scalar = transient(fx.circuit, t_stop=0.4e-9, dt=1e-11,
                           lte_rtol=5e-3)
        results = batched_transient(fx.circuit, 3, t_stop=0.4e-9, dt=1e-11,
                                    lte_rtol=5e-3)
        for res in results:
            _assert_traces_close(res, scalar)

    def test_waveform_metric_agreement(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        scalar = transient(fx.circuit, t_stop=2.5e-9, dt=5e-12)
        f_ref = oscillation_frequency(scalar.voltage("s0"), tech90.vdd / 2)
        results = batched_transient(fx.circuit, 2, t_stop=2.5e-9, dt=5e-12)
        for res in results:
            f = oscillation_frequency(res.voltage("s0"), tech90.vdd / 2)
            assert f == pytest.approx(f_ref, rel=1e-6)


# ----------------------------------------------------------------------
# Validation and routing
# ----------------------------------------------------------------------
class TestValidation:
    def test_nonpositive_lanes_rejected(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        with pytest.raises(ValueError, match="n_lanes"):
            batched_transient(fx.circuit, 0, t_stop=1e-10, dt=1e-11)

    def test_non_batchable_circuit_rejected(self, tech90):
        from repro.circuit import Circuit

        ckt = Circuit("diode-rc")
        ckt.voltage_source("vin", "a", "0", 1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.diode("d1", "b", "0")
        with pytest.raises(TypeError, match="non-MOSFET"):
            batched_transient(ckt, 2, t_stop=1e-10, dt=1e-11)

    def test_bad_grid_rejected(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        with pytest.raises(ValueError):
            batched_transient(fx.circuit, 2, t_stop=-1e-9, dt=1e-11)
        with pytest.raises(ValueError):
            batched_transient(fx.circuit, 2, t_stop=1e-9, dt=0.0)


# ----------------------------------------------------------------------
# Forced fallback, quarantine and telemetry
# ----------------------------------------------------------------------
class TestFallbackAndTelemetry:
    def test_forced_lane_fallback_matches_scalar(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        scalar = transient(fx.circuit, t_stop=0.3e-9, dt=5e-12)
        faultinject.force_batch_lane_fallback(fx.circuit, [1])
        try:
            with telemetry.session() as sess:
                results = batched_transient(fx.circuit, 3, t_stop=0.3e-9,
                                            dt=5e-12)
            assert sess.metrics.counter(
                "solver.transient.batch.fallback_lanes") == 1
            span = next(r for r in sess.tracer.export_records()
                        if r["name"] == "solve.transient.batch")
            assert span["attrs"]["lanes"] == 3
            assert span["attrs"]["fallback_lanes"] == 1
            # The straggler re-ran through the scalar integrator — the
            # nested scalar span proves the fallback path executed.
            names = [r["name"] for r in sess.tracer.export_records()]
            assert "solve.transient" in names
        finally:
            faultinject.clear_batch_lane_fallback(fx.circuit)
        for res in results:
            _assert_traces_close(res, scalar)

    def test_quarantine_returns_errors_list(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        faultinject.force_batch_lane_fallback(fx.circuit, [0])
        try:
            results, errors = batched_transient(
                fx.circuit, 2, t_stop=0.2e-9, dt=5e-12, quarantine=True)
        finally:
            faultinject.clear_batch_lane_fallback(fx.circuit)
        assert len(results) == 2 and len(errors) == 2
        assert all(r is not None for r in results)
        assert all(e is None for e in errors)

    def test_poisoned_circuit_raises_convergence_error(self, tech90):
        # A die that cannot bias anywhere surfaces the scalar ladder's
        # ConvergenceError from the t=0 operating point, batch or not.
        fx = ring_oscillator(tech90, n_stages=3)
        faultinject.force_nonconvergence(fx.circuit,
                                         fx.circuit.mosfets[0].name)
        with pytest.raises(ConvergenceError):
            batched_transient(fx.circuit, 2, t_stop=0.1e-9, dt=5e-12)

    def test_batch_span_counters(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        with telemetry.session() as sess:
            batched_transient(fx.circuit, 4, t_stop=0.2e-9, dt=5e-12)
        assert sess.metrics.counter("solver.transient.batch.solves") == 1
        assert sess.metrics.counter("solver.transient.batch.lanes") == 4
        assert sess.metrics.counter("solver.transient.batch.steps") == 40
        assert sess.metrics.counter(
            "solver.transient.batch.fallback_lanes") == 0


# ----------------------------------------------------------------------
# Monte-Carlo seam: transient specs with batch_size=
# ----------------------------------------------------------------------
def _swing_metric(result, fixture):
    wave = result.voltage(fixture.nodes["stage1"])
    return float(wave.peak() - wave.trough())


class TestMonteCarloTransientBatch:
    def _mc(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        spec = transient_specification(
            "swing", _swing_metric, t_stop_s=0.3e-9, dt_s=5e-12,
            lower=0.5 * tech90.vdd)
        return MonteCarloYield(fx, [spec], tech90)

    def test_batched_transient_mc_matches_scalar(self, tech90):
        mc = self._mc(tech90)
        scalar = mc.run(n_samples=6, seed=3)
        batched = mc.run(n_samples=6, seed=3, batch_size=4)
        np.testing.assert_array_equal(scalar.passes, batched.passes)
        np.testing.assert_allclose(batched.values["swing"],
                                   scalar.values["swing"],
                                   rtol=0, atol=1e-6)
        assert scalar.yield_fraction == batched.yield_fraction

    def test_batched_transient_mc_emits_batch_spans(self, tech90):
        mc = self._mc(tech90)
        with telemetry.session() as sess:
            mc.run(n_samples=4, seed=1, batch_size=4)
        names = [r["name"] for r in sess.tracer.export_records()]
        assert "solve.transient.batch" in names
        assert sess.metrics.counter("solver.transient.batch.solves") > 0


# ----------------------------------------------------------------------
# Aging seam: lockstep epochs with batch_size=
# ----------------------------------------------------------------------
def _ring_freq_metric(fixture):
    res = transient(fixture.circuit, t_stop=1.2e-9, dt=5e-12)
    vdd = fixture.circuit["vdd"].spec.dc_value()
    return oscillation_frequency(res.voltage("s0"), vdd / 2)


class TestAgingEnsembleBatch:
    def _profile(self):
        return MissionProfile(n_epochs=2, duration_s=1e6,
                              t_first_epoch_s=1e3,
                              stress_mode="transient",
                              transient_t_stop_s=0.6e-9,
                              transient_dt_s=1e-11)

    def test_batched_aging_matches_scalar(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        mechanisms = [NbtiModel(tech90.aging), HciModel(tech90.aging)]
        metrics = {"freq": _ring_freq_metric}
        scalar = aging_ensemble(fx, mechanisms, self._profile(), metrics,
                                tech90, n_samples=3, seed=2)
        batched = aging_ensemble(fx, mechanisms, self._profile(), metrics,
                                 tech90, n_samples=3, seed=2, batch_size=2)
        assert len(batched) == len(scalar) == 3
        for rep_b, rep_s in zip(batched, scalar):
            np.testing.assert_array_equal(rep_b.times_s, rep_s.times_s)
            # Identical per-die variates; the extracted stresses (and
            # hence ΔVt trajectories) agree within solver tolerance.
            np.testing.assert_allclose(rep_b.metrics["freq"],
                                       rep_s.metrics["freq"], rtol=1e-4)
            for name, traj in rep_s.device_delta_vt_v.items():
                np.testing.assert_allclose(
                    rep_b.device_delta_vt_v[name], traj,
                    rtol=1e-4, atol=1e-9)

    def test_batch_size_validation(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        mechanisms = [NbtiModel(tech90.aging)]
        metrics = {"freq": _ring_freq_metric}
        with pytest.raises(ValueError, match="at least 1"):
            aging_ensemble(fx, mechanisms, self._profile(), metrics,
                           tech90, n_samples=2, batch_size=0)
        dc_profile = MissionProfile(n_epochs=2, duration_s=1e6,
                                    t_first_epoch_s=1e3)
        with pytest.raises(ValueError, match="stress_mode"):
            aging_ensemble(fx, mechanisms, dc_profile, metrics,
                           tech90, n_samples=2, batch_size=2)
        with pytest.raises(ValueError, match="jobs=1"):
            aging_ensemble(fx, mechanisms, self._profile(), metrics,
                           tech90, n_samples=2, batch_size=2, jobs=2)
