"""Unit tests for linear elements, sources and the diode."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Capacitor,
    Circuit,
    DcSpec,
    Diode,
    Inductor,
    PulseSpec,
    PwlSpec,
    Resistor,
    SineSpec,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    transient,
)


class TestSourceSpecs:
    def test_dc_spec_constant(self):
        spec = DcSpec(2.5)
        assert spec.value(0.0) == 2.5
        assert spec.value(1e9) == 2.5
        assert spec.dc_value() == 2.5

    def test_sine_spec_values(self):
        spec = SineSpec(offset=1.0, amplitude=0.5, frequency_hz=1.0)
        assert spec.dc_value() == pytest.approx(1.0)
        assert spec.value(0.25) == pytest.approx(1.5)
        assert spec.value(0.75) == pytest.approx(0.5)

    def test_sine_spec_delay(self):
        spec = SineSpec(offset=0.0, amplitude=1.0, frequency_hz=1.0, delay_s=1.0)
        assert spec.value(0.5) == 0.0
        assert spec.value(1.25) == pytest.approx(1.0)

    def test_sine_period(self):
        assert SineSpec(0, 1, 50e6).period_s == pytest.approx(20e-9)

    def test_sine_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            SineSpec(0, 1, 0.0)

    def test_pulse_spec_phases(self):
        spec = PulseSpec(v1=0.0, v2=1.0, delay_s=1e-9, rise_s=1e-9,
                         fall_s=1e-9, width_s=3e-9, period_s=10e-9)
        assert spec.value(0.0) == 0.0
        assert spec.value(1.5e-9) == pytest.approx(0.5)  # mid rise
        assert spec.value(3e-9) == pytest.approx(1.0)    # flat top
        assert spec.value(5.5e-9) == pytest.approx(0.5)  # mid fall
        assert spec.value(8e-9) == pytest.approx(0.0)    # off
        assert spec.value(11.5e-9) == pytest.approx(0.5)  # periodic

    def test_pulse_rejects_impossible_period(self):
        with pytest.raises(ValueError):
            PulseSpec(0, 1, width_s=5e-9, period_s=1e-9)

    def test_pwl_interpolates(self):
        spec = PwlSpec(points=((0.0, 0.0), (1.0, 2.0), (2.0, 2.0)))
        assert spec.value(0.5) == pytest.approx(1.0)
        assert spec.value(1.5) == pytest.approx(2.0)
        assert spec.value(5.0) == pytest.approx(2.0)  # clamped

    def test_pwl_rejects_unordered(self):
        with pytest.raises(ValueError):
            PwlSpec(points=((1.0, 0.0), (0.5, 1.0)))


class TestResistor:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Resistor("r", "a", "b", 0.0)

    def test_divider(self):
        ckt = Circuit("div")
        ckt.voltage_source("v1", "in", "0", 2.0)
        ckt.resistor("r1", "in", "mid", 1e3)
        ckt.resistor("r2", "mid", "0", 3e3)
        op = dc_operating_point(ckt)
        assert op.voltage("mid") == pytest.approx(1.5)

    def test_current_readback(self):
        ckt = Circuit("r")
        ckt.voltage_source("v1", "in", "0", 1.0)
        r = ckt.resistor("r1", "in", "0", 1e3)
        op = dc_operating_point(ckt)
        assert r.current(op.x) == pytest.approx(1e-3)


class TestCapacitorInductor:
    def test_capacitor_open_at_dc(self):
        ckt = Circuit("c")
        ckt.voltage_source("v1", "in", "0", 1.0)
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", "0", 1e-9)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(1.0, abs=1e-6)

    def test_inductor_short_at_dc(self):
        ckt = Circuit("l")
        ckt.voltage_source("v1", "in", "0", 1.0)
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.inductor("l1", "out", "0", 1e-6)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(0.0, abs=1e-9)
        # All current flows through the inductor branch.
        assert op.x[ckt["l1"].branches[0]] == pytest.approx(1e-3)

    def test_rc_step_response(self):
        # Time constant 1 µs; value after 1 τ should be 1 - 1/e.
        ckt = Circuit("rc")
        ckt.voltage_source("v1", "in", "0",
                           PulseSpec(v1=0.0, v2=1.0, delay_s=0.0,
                                     rise_s=1e-12, fall_s=1e-12,
                                     width_s=1.0, period_s=2.0))
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", "0", 1e-9)
        res = transient(ckt, t_stop=5e-6, dt=5e-9)
        v_tau = res.voltage("out").sample(1e-6)
        assert v_tau == pytest.approx(1.0 - math.exp(-1.0), rel=0.02)

    def test_rl_current_rise(self):
        # i(t) = (V/R)(1 − e^{−tR/L}), τ = 1 µs.
        ckt = Circuit("rl")
        ckt.voltage_source("v1", "in", "0",
                           PulseSpec(v1=0.0, v2=1.0, delay_s=0.0,
                                     rise_s=1e-12, fall_s=1e-12,
                                     width_s=1.0, period_s=2.0))
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.inductor("l1", "out", "0", 1e-3)
        res = transient(ckt, t_stop=5e-6, dt=5e-9)
        i_wave = res.states[:, ckt["l1"].branches[0]]
        k_tau = int(round(1e-6 / 5e-9))
        assert i_wave[k_tau] == pytest.approx(1e-3 * (1.0 - math.exp(-1.0)),
                                              rel=0.02)

    def test_capacitor_backward_euler_matches_trapezoidal(self):
        def run(method):
            ckt = Circuit("rc")
            ckt.voltage_source("v1", "in", "0",
                               SineSpec(offset=0.0, amplitude=1.0,
                                        frequency_hz=1e5))
            ckt.resistor("r1", "in", "out", 1e3)
            ckt.capacitor("c1", "out", "0", 1e-9)
            res = transient(ckt, t_stop=50e-6, dt=20e-9, method=method)
            return res.voltage("out").last_period(10e-6)

        w_tr = run("trapezoidal")
        w_be = run("backward_euler")
        assert w_tr.rms() == pytest.approx(w_be.rms(), rel=0.02)

    def test_rejects_non_positive_values(self):
        with pytest.raises(ValueError):
            Capacitor("c", "a", "b", -1e-9)
        with pytest.raises(ValueError):
            Inductor("l", "a", "b", 0.0)


class TestSources:
    def test_voltage_source_branch_current_sign(self):
        # 1 V across 1 kΩ: 1 mA flows out of the + terminal through the
        # external circuit, i.e. n+ → n- through the source is -1 mA? No:
        # convention: x[branch] is the current from n+ THROUGH the source
        # to n-, which equals minus the delivered current.
        ckt = Circuit("vs")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.source_current("v1") == pytest.approx(-1e-3)

    def test_current_source_direction(self):
        # CurrentSource pulls current out of n+ and pushes into n-.
        ckt = Circuit("is")
        ckt.current_source("i1", "0", "out", 1e-3)
        ckt.resistor("r1", "out", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(1.0)

    def test_time_dependent_source_in_transient(self):
        ckt = Circuit("sin")
        ckt.voltage_source("v1", "a", "0",
                           SineSpec(offset=0.5, amplitude=0.25,
                                    frequency_hz=1e6))
        ckt.resistor("r1", "a", "0", 1e3)
        res = transient(ckt, t_stop=2e-6, dt=10e-9)
        w = res.voltage("a")
        assert w.peak() == pytest.approx(0.75, abs=0.01)
        assert w.trough() == pytest.approx(0.25, abs=0.01)


class TestControlledSources:
    def test_vccs_gain(self):
        ckt = Circuit("vccs")
        ckt.voltage_source("vc", "c", "0", 0.5)
        ckt.vccs("g1", "0", "out", "c", "0", gm=2e-3)
        ckt.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(ckt)
        # i = gm·vc = 1 mA pushed into out → +1 V.
        assert op.voltage("out") == pytest.approx(1.0)

    def test_vcvs_gain(self):
        ckt = Circuit("vcvs")
        ckt.voltage_source("vc", "c", "0", 0.25)
        ckt.vcvs("e1", "out", "0", "c", "0", gain=4.0)
        ckt.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("out") == pytest.approx(1.0)


class TestDiode:
    def test_forward_drop(self):
        ckt = Circuit("d")
        ckt.voltage_source("v1", "in", "0", 5.0)
        ckt.resistor("r1", "in", "a", 1e3)
        ckt.diode("d1", "a", "0")
        op = dc_operating_point(ckt)
        v_diode = op.voltage("a")
        assert 0.5 < v_diode < 0.8
        # KCL: resistor current equals diode current.
        i_r = (5.0 - v_diode) / 1e3
        d = ckt["d1"]
        assert d.current(v_diode) == pytest.approx(i_r, rel=1e-3)

    def test_reverse_blocking(self):
        ckt = Circuit("d")
        ckt.voltage_source("v1", "in", "0", -5.0)
        ckt.resistor("r1", "in", "a", 1e3)
        ckt.diode("d1", "a", "0")
        op = dc_operating_point(ckt)
        assert op.voltage("a") == pytest.approx(-5.0, abs=0.01)

    def test_rectifier_transient(self):
        ckt = Circuit("rect")
        ckt.voltage_source("v1", "in", "0",
                           SineSpec(offset=0.0, amplitude=5.0,
                                    frequency_hz=1e3))
        ckt.diode("d1", "in", "out")
        ckt.resistor("rl", "out", "0", 10e3)
        res = transient(ckt, t_stop=4e-3, dt=2e-6)
        w = res.voltage("out")
        assert w.trough() > -0.1   # no negative half-wave
        assert w.peak() > 3.5      # positive peaks minus the drop

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Diode("d", "a", "b", i_sat=0.0)
        with pytest.raises(ValueError):
            Diode("d", "a", "b", ideality=-1.0)

    def test_conductance_positive(self):
        d = Diode("d", "a", "b")
        assert d.conductance_at(-5.0) > 0.0
        assert d.conductance_at(0.6) > d.conductance_at(0.3)
