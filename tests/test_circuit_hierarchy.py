"""Unit tests for hierarchical circuit composition."""

import pytest

from repro.circuit import (
    Circuit,
    DeviceVariation,
    Mosfet,
    clone_element,
    dc_operating_point,
    flatten_instance_names,
    instantiate,
)


def inverter_template(tech):
    """A standalone inverter: ports in, out, vdd (+ ground)."""
    ckt = Circuit("inv template")
    ckt.mosfet(Mosfet.from_technology(
        "mn", "out", "in", "0", "0", tech, "n",
        w_m=4 * tech.wmin_m, l_m=tech.lmin_m))
    ckt.mosfet(Mosfet.from_technology(
        "mp", "out", "in", "vdd", "vdd", tech, "p",
        w_m=10 * tech.wmin_m, l_m=tech.lmin_m))
    return ckt


def divider_template():
    ckt = Circuit("divider template")
    ckt.resistor("rt", "top", "mid", 1e3)
    ckt.resistor("rb", "mid", "0", 1e3)
    return ckt


class TestCloneElement:
    def test_renames_and_remaps(self):
        template = divider_template()
        original = template["rt"]
        clone = clone_element(original, "x1.rt", {"top": "a", "mid": "b"})
        assert clone.name == "x1.rt"
        assert clone.node_names == ("a", "b")
        assert clone.resistance == original.resistance
        assert original.name == "rt"  # untouched

    def test_mosfet_state_deep_copied(self, tech90):
        template = inverter_template(tech90)
        original = template["mn"]
        clone = clone_element(original, "x1.mn", {})
        clone.variation.delta_vt_v = 0.05
        clone.degradation.delta_vt_v = 0.02
        assert original.variation.delta_vt_v == 0.0
        assert original.degradation.delta_vt_v == 0.0


class TestInstantiate:
    def test_buffer_chain_works(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("buffer")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        top.voltage_source("vin", "a", "0", 0.0)
        instantiate(top, template, "x1",
                    {"in": "a", "out": "b", "vdd": "vdd"})
        instantiate(top, template, "x2",
                    {"in": "b", "out": "c", "vdd": "vdd"})
        op = dc_operating_point(top)
        # Two inversions: logic value restored.
        assert op.voltage("b") > 0.9 * tech90.vdd
        assert op.voltage("c") < 0.1 * tech90.vdd

    def test_internal_nodes_prefixed(self):
        template = divider_template()
        top = Circuit("top")
        top.voltage_source("v1", "rail", "0", 2.0)
        instantiate(top, template, "u1", {"top": "rail"})
        op = dc_operating_point(top)
        # 'mid' was internal → became u1.mid.
        assert op.voltage("u1.mid") == pytest.approx(1.0)
        assert "u1.rt" in top

    def test_instances_independent(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("pair")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        top.voltage_source("vin", "a", "0", tech90.vdd / 2)
        instantiate(top, template, "x1",
                    {"in": "a", "out": "y1", "vdd": "vdd"})
        instantiate(top, template, "x2",
                    {"in": "a", "out": "y2", "vdd": "vdd"})
        top["x1.mn"].variation = DeviceVariation(delta_vt_v=0.1)
        op = dc_operating_point(top)
        # Skewed instance trips at a different point than the nominal one.
        assert op.voltage("y1") != pytest.approx(op.voltage("y2"), abs=1e-3)

    def test_ground_passes_through(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("g")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        top.voltage_source("vin", "a", "0", tech90.vdd)
        elements = instantiate(top, template, "x1",
                               {"in": "a", "out": "y", "vdd": "vdd"})
        nmos = elements[0]
        assert "0" in nmos.node_names

    def test_unknown_port_rejected(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("bad")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        with pytest.raises(ValueError, match="does not exist"):
            instantiate(top, template, "x1", {"nope": "a"})

    def test_ground_remap_rejected(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("bad")
        with pytest.raises(ValueError, match="ground"):
            instantiate(top, template, "x1", {"0": "a"})

    def test_empty_prefix_rejected(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("bad")
        with pytest.raises(ValueError, match="prefix"):
            instantiate(top, template, "", {})

    def test_duplicate_instance_rejected(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("dup")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        instantiate(top, template, "x1",
                    {"in": "a", "out": "b", "vdd": "vdd"})
        with pytest.raises(ValueError, match="duplicate"):
            instantiate(top, template, "x1",
                        {"in": "b", "out": "c", "vdd": "vdd"})

    def test_flatten_instance_names(self, tech90):
        template = inverter_template(tech90)
        top = Circuit("names")
        top.voltage_source("vdd", "vdd", "0", tech90.vdd)
        instantiate(top, template, "x1",
                    {"in": "a", "out": "b", "vdd": "vdd"})
        assert flatten_instance_names(top, "x1") == ["x1.mn", "x1.mp"]
        assert flatten_instance_names(top, "x9") == []
