"""Unit tests for the MNA stamper and solvers."""

import numpy as np
import pytest

from repro.circuit import SingularCircuitError, Stamper


class TestStamperPrimitives:
    def test_ground_entries_ignored(self):
        st = Stamper(2)
        st.matrix(-1, 0, 5.0)
        st.matrix(0, -1, 5.0)
        st.rhs(-1, 1.0)
        assert np.all(st.a == 0.0)
        assert np.all(st.b == 0.0)

    def test_conductance_stamp_pattern(self):
        st = Stamper(2)
        st.conductance(0, 1, 2.0)
        assert st.a[0, 0] == pytest.approx(2.0)
        assert st.a[1, 1] == pytest.approx(2.0)
        assert st.a[0, 1] == pytest.approx(-2.0)
        assert st.a[1, 0] == pytest.approx(-2.0)

    def test_conductance_to_ground(self):
        st = Stamper(2)
        st.conductance(0, -1, 3.0)
        assert st.a[0, 0] == pytest.approx(3.0)
        assert st.a[1, 1] == pytest.approx(0.0)

    def test_current_injection_sign(self):
        st = Stamper(1)
        st.current(0, 1e-3)
        assert st.b[0] == pytest.approx(1e-3)

    def test_clear(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        st.current(0, 1.0)
        st.clear()
        assert np.all(st.a == 0.0)
        assert np.all(st.b == 0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Stamper(0)


class TestSolve:
    def test_voltage_divider(self):
        # 1 V source via branch eq, two 1 kΩ resistors: mid node at 0.5 V.
        st = Stamper(3)  # nodes: top(0), mid(1); branch: 2
        st.conductance(0, 1, 1e-3)
        st.conductance(1, -1, 1e-3)
        st.branch_voltage(0, -1, 2, rhs=1.0)
        x = st.solve()
        assert x[0] == pytest.approx(1.0)
        assert x[1] == pytest.approx(0.5)
        assert x[2] == pytest.approx(-0.5e-3)  # current out of + terminal

    def test_current_source_into_resistor(self):
        st = Stamper(1)
        st.conductance(0, -1, 1e-3)
        st.current(0, 1e-3)
        x = st.solve()
        assert x[0] == pytest.approx(1.0)

    def test_transconductance_stamp(self):
        # VCCS driven by a fixed node voltage: i = gm·v_c into load.
        st = Stamper(3)
        st.branch_voltage(0, -1, 2, rhs=0.5)   # v(0) = 0.5 V
        st.conductance(1, -1, 1e-3)            # 1 kΩ load at node 1
        st.transconductance(-1, 1, 0, -1, 2e-3)  # 2 mS into node 1
        x = st.solve()
        # i = gm*v = 1 mA into node 1 → 1 V across 1 kΩ.
        assert x[1] == pytest.approx(1.0)

    def test_singular_matrix_raises(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)  # both nodes floating wrt ground
        with pytest.raises(SingularCircuitError):
            st.solve()

    def test_gmin_fixes_floating_node(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        st.add_gmin(2, 1e-12)
        x = st.solve()
        assert np.allclose(x, 0.0)

    def test_gmin_rejects_negative(self):
        st = Stamper(2)
        with pytest.raises(ValueError):
            st.add_gmin(2, -1.0)

    def test_complex_solve(self):
        st = Stamper(1, dtype=complex)
        st.conductance(0, -1, 1e-3 + 1e-3j)
        st.current(0, 1e-3)
        x = st.solve()
        assert x[0] == pytest.approx(1.0 / (1.0 + 1.0j))
