"""Unit tests for the MNA stamper and solvers."""

import builtins
import importlib
import sys

import numpy as np
import pytest

from repro.circuit import SingularCircuitError, SparsityPlan, Stamper, sparse_mode
from repro.circuit import mna as mna_module


class TestStamperPrimitives:
    def test_ground_entries_ignored(self):
        st = Stamper(2)
        st.matrix(-1, 0, 5.0)
        st.matrix(0, -1, 5.0)
        st.rhs(-1, 1.0)
        assert np.all(st.a == 0.0)
        assert np.all(st.b == 0.0)

    def test_conductance_stamp_pattern(self):
        st = Stamper(2)
        st.conductance(0, 1, 2.0)
        assert st.a[0, 0] == pytest.approx(2.0)
        assert st.a[1, 1] == pytest.approx(2.0)
        assert st.a[0, 1] == pytest.approx(-2.0)
        assert st.a[1, 0] == pytest.approx(-2.0)

    def test_conductance_to_ground(self):
        st = Stamper(2)
        st.conductance(0, -1, 3.0)
        assert st.a[0, 0] == pytest.approx(3.0)
        assert st.a[1, 1] == pytest.approx(0.0)

    def test_current_injection_sign(self):
        st = Stamper(1)
        st.current(0, 1e-3)
        assert st.b[0] == pytest.approx(1e-3)

    def test_clear(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        st.current(0, 1.0)
        st.clear()
        assert np.all(st.a == 0.0)
        assert np.all(st.b == 0.0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Stamper(0)


class TestSolve:
    def test_voltage_divider(self):
        # 1 V source via branch eq, two 1 kΩ resistors: mid node at 0.5 V.
        st = Stamper(3)  # nodes: top(0), mid(1); branch: 2
        st.conductance(0, 1, 1e-3)
        st.conductance(1, -1, 1e-3)
        st.branch_voltage(0, -1, 2, rhs=1.0)
        x = st.solve()
        assert x[0] == pytest.approx(1.0)
        assert x[1] == pytest.approx(0.5)
        assert x[2] == pytest.approx(-0.5e-3)  # current out of + terminal

    def test_current_source_into_resistor(self):
        st = Stamper(1)
        st.conductance(0, -1, 1e-3)
        st.current(0, 1e-3)
        x = st.solve()
        assert x[0] == pytest.approx(1.0)

    def test_transconductance_stamp(self):
        # VCCS driven by a fixed node voltage: i = gm·v_c into load.
        st = Stamper(3)
        st.branch_voltage(0, -1, 2, rhs=0.5)   # v(0) = 0.5 V
        st.conductance(1, -1, 1e-3)            # 1 kΩ load at node 1
        st.transconductance(-1, 1, 0, -1, 2e-3)  # 2 mS into node 1
        x = st.solve()
        # i = gm*v = 1 mA into node 1 → 1 V across 1 kΩ.
        assert x[1] == pytest.approx(1.0)

    def test_singular_matrix_raises(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)  # both nodes floating wrt ground
        with pytest.raises(SingularCircuitError):
            st.solve()

    def test_gmin_fixes_floating_node(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        st.add_gmin(2, 1e-12)
        x = st.solve()
        assert np.allclose(x, 0.0)

    def test_gmin_rejects_negative(self):
        st = Stamper(2)
        with pytest.raises(ValueError):
            st.add_gmin(2, -1.0)

    def test_complex_solve(self):
        st = Stamper(1, dtype=complex)
        st.conductance(0, -1, 1e-3 + 1e-3j)
        st.current(0, 1e-3)
        x = st.solve()
        assert x[0] == pytest.approx(1.0 / (1.0 + 1.0j))


def _divider_stamper():
    """The voltage-divider system from TestSolve, reusable."""
    st = Stamper(3)
    st.conductance(0, 1, 1e-3)
    st.conductance(1, -1, 1e-3)
    st.branch_voltage(0, -1, 2, rhs=1.0)
    return st


class TestDgesvFallback:
    """The direct-LAPACK fast path must degrade to numpy when absent."""

    def test_solve_without_dgesv(self, monkeypatch):
        monkeypatch.setattr(mna_module, "_dgesv", None)
        x = _divider_stamper().solve()
        assert x[1] == pytest.approx(0.5)

    def test_singular_without_dgesv(self, monkeypatch):
        monkeypatch.setattr(mna_module, "_dgesv", None)
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        with pytest.raises(SingularCircuitError):
            st.solve()

    def test_import_error_leaves_none(self, monkeypatch):
        """Reimporting mna with scipy's LAPACK blocked sets _dgesv=None
        and the module still solves via the numpy path."""
        real_import = builtins.__import__

        def blocked(name, *args, **kwargs):
            if name.startswith("scipy.linalg"):
                raise ImportError(f"blocked for test: {name}")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", blocked)
        monkeypatch.delitem(sys.modules, "repro.circuit.mna")
        try:
            fresh = importlib.import_module("repro.circuit.mna")
            assert fresh._dgesv is None
            st = fresh.Stamper(3)
            st.conductance(0, 1, 1e-3)
            st.conductance(1, -1, 1e-3)
            st.branch_voltage(0, -1, 2, rhs=1.0)
            assert st.solve()[1] == pytest.approx(0.5)
        finally:
            # Restore the real module object for everyone else — both
            # the sys.modules entry and the package attribute the
            # reimport rebound (`from repro.circuit import mna` resolves
            # through the latter).
            sys.modules["repro.circuit.mna"] = mna_module
            import repro.circuit
            repro.circuit.mna = mna_module


@pytest.mark.skipif(mna_module._csc_matrix is None
                    or mna_module._splu is None,
                    reason="sparse path needs scipy.sparse")
class TestSparsityPlan:
    def _plan_for(self, st):
        rec = mna_module.CoordinateRecorder(st.size)
        nz = np.argwhere(st.a != 0.0)
        for row, col in nz:
            rec.matrix(int(row), int(col))
        return SparsityPlan(st.size, rec.rows, rec.cols)

    def test_sparse_matches_dense(self):
        st = _divider_stamper()
        dense = st.solve()
        st.plan = self._plan_for(st)
        sparse = st.solve()
        assert np.allclose(sparse, dense, rtol=0, atol=1e-14)
        assert st.plan.factorizations == 1

    def test_singular_sparse_raises(self):
        st = Stamper(2)
        st.conductance(0, 1, 1.0)
        st.plan = self._plan_for(st)
        with pytest.raises(SingularCircuitError):
            st.solve()

    def test_fill_ratio_and_nnz(self):
        plan = SparsityPlan(3, [0, 1, 0, 0], [0, 1, 2, 0])
        assert plan.nnz == 3  # (0,0) deduped
        assert plan.fill_ratio() == pytest.approx(3.0 / 9.0)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SparsityPlan(3, [], [])

    def test_sparse_mode_scopes_threshold(self):
        before = mna_module.sparse_min_size()
        with sparse_mode(1):
            assert mna_module.sparse_min_size() == 1
            with sparse_mode(10**9):
                assert mna_module.sparse_min_size() == 10**9
            assert mna_module.sparse_min_size() == 1
        assert mna_module.sparse_min_size() == before

    def test_engine_routes_through_plan(self):
        """A DC engine built under sparse_mode(1) factorizes via splu.

        The threshold is read when the engine is built and engines are
        cached per circuit object, so each leg builds its own fixture.
        """
        from repro.circuit.dc import dc_engine, dc_operating_point
        from repro.circuits import five_transistor_ota
        from repro.technology import get_node

        tech = get_node("90nm")
        dense = dc_operating_point(five_transistor_ota(tech).circuit)
        with sparse_mode(1):
            fx = five_transistor_ota(tech)
            sparse = dc_operating_point(fx.circuit)
            engine = dc_engine(fx.circuit)
        assert engine.sparsity_plan is not None
        assert engine.sparsity_plan.factorizations > 0
        assert np.allclose(sparse.x, dense.x, rtol=0, atol=1e-9)
