"""Unit tests for the compact MOSFET model."""

import math

import numpy as np
import pytest

from repro import units
from repro.circuit import (
    Circuit,
    DeviceDegradation,
    DeviceVariation,
    Mosfet,
    MosfetParams,
    dc_operating_point,
    dc_sweep,
)


def nmos(tech, w=1e-6, l=None, name="m1"):
    return Mosfet.from_technology(name, "d", "g", "s", "b", tech, "n",
                                  w_m=w, l_m=l if l else tech.lmin_m)


def pmos(tech, w=2e-6, l=None, name="m1"):
    return Mosfet.from_technology(name, "d", "g", "s", "b", tech, "p",
                                  w_m=w, l_m=l if l else tech.lmin_m)


class TestConstruction:
    def test_from_technology_sets_geometry(self, tech90):
        m = nmos(tech90, w=2e-6, l=0.2e-6)
        assert m.params.w_um == pytest.approx(2.0)
        assert m.params.l_um == pytest.approx(0.2)
        assert m.params.area_um2 == pytest.approx(0.4)

    def test_rejects_sub_minimum_geometry(self, tech90):
        with pytest.raises(ValueError, match="below technology minimum"):
            nmos(tech90, l=0.5 * tech90.lmin_m)
        with pytest.raises(ValueError, match="below technology minimum"):
            nmos(tech90, w=0.5 * tech90.wmin_m)

    def test_rejects_bad_polarity(self, tech90):
        with pytest.raises(ValueError):
            Mosfet.from_technology("m", "d", "g", "s", "b", tech90, "x",
                                   w_m=1e-6, l_m=1e-6)

    def test_params_validation(self):
        with pytest.raises(ValueError):
            MosfetParams(polarity="n", w_m=-1e-6, l_m=1e-6, vt0_v=0.3,
                         kp_a_per_v2=1e-4, lambda_per_v=0.1,
                         gamma_sqrt_v=0.4, phi_v=0.8, theta_per_v=0.3,
                         esat_l_v=1.0, n_slope=1.3, tox_m=2e-9)

    def test_pmos_vt_magnitude_positive(self, tech90):
        assert pmos(tech90).params.vt0_v > 0.0


class TestCurrentEquation:
    def test_cutoff_current_tiny(self, tech90):
        m = nmos(tech90)
        assert abs(m.drain_current(0.0, tech90.vdd, 0.0)) < 1e-7

    def test_subthreshold_exponential_slope(self, tech90):
        m = nmos(tech90)
        vt = m.params.vt0_v
        phit = units.thermal_voltage()
        n = m.params.n_slope
        i1 = m.drain_current(vt - 0.2, 0.5, 0.0)
        i2 = m.drain_current(vt - 0.2 + n * phit, 0.5, 0.0)
        assert i2 / i1 == pytest.approx(math.e, rel=0.05)

    def test_saturation_square_law(self, tech90):
        # Long, wide device: Ids ≈ vov² damped by the θ·vov mobility
        # term — doubling the overdrive should give a 3–4× current.
        m = Mosfet.from_technology("m", "d", "g", "s", "b", tech90, "n",
                                   w_m=100e-6, l_m=10e-6)
        vt = m.params.vt0_v
        i1 = m.drain_current(vt + 0.2, 1.2, 0.0)
        i2 = m.drain_current(vt + 0.4, 1.2, 0.0)
        assert 3.0 < i2 / i1 < 4.0

    def test_triode_linear_in_small_vds(self, tech90):
        m = nmos(tech90)
        vgs = tech90.vdd
        i1 = m.drain_current(vgs, 0.01, 0.0)
        i2 = m.drain_current(vgs, 0.02, 0.0)
        assert i2 / i1 == pytest.approx(2.0, rel=0.03)

    def test_reverse_conduction_changes_sign(self, tech90):
        # The EKV core conducts backwards for vds < 0 (source and drain
        # exchange roles) — essential for pass gates and SRAM access
        # devices.  Exact S/D symmetry is NOT claimed (β_eff and CLM are
        # source-referenced), but sign and magnitude must be sensible.
        m = nmos(tech90)
        forward = m.drain_current(0.8, 0.3, 0.0)
        reverse = m.drain_current(0.8, -0.3, 0.0)
        assert forward > 0.0
        assert reverse < 0.0
        assert forward / 5.0 < abs(reverse) < 5.0 * forward

    def test_zero_vds_zero_current(self, tech90):
        m = nmos(tech90)
        assert m.drain_current(0.9, 0.0, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_monotonic_in_vgs(self, tech90):
        m = nmos(tech90)
        vgs = np.linspace(0.0, tech90.vdd, 40)
        ids = [m.drain_current(v, 0.6, 0.0) for v in vgs]
        assert all(b >= a - 1e-15 for a, b in zip(ids, ids[1:]))

    def test_monotonic_in_vds(self, tech90):
        m = nmos(tech90)
        vds = np.linspace(0.0, tech90.vdd, 40)
        ids = [m.drain_current(0.8, v, 0.0) for v in vds]
        assert all(b >= a - 1e-15 for a, b in zip(ids, ids[1:]))

    def test_body_effect_raises_threshold(self, tech90):
        m = nmos(tech90)
        i_no_bias = m.drain_current(0.6, 0.6, 0.0)
        i_back_bias = m.drain_current(0.6, 0.6, -0.5)
        assert i_back_bias < i_no_bias

    def test_pmos_reflection(self, tech90):
        # Long-channel, low-overdrive devices: velocity saturation and
        # mobility degradation are mild, so the NMOS/PMOS current ratio
        # approaches the mobility ratio.
        mn = nmos(tech90, w=10e-6, l=5e-6)
        mp = pmos(tech90, w=10e-6, l=5e-6)
        i_n = mn.drain_current(0.5, 1.2, 0.0)
        i_p = mp.drain_current(-0.5, -1.2, 0.0)
        assert i_p < 0.0
        ratio = tech90.u0_n_m2_per_vs / tech90.u0_p_m2_per_vs
        assert i_n / (-i_p) == pytest.approx(ratio, rel=0.15)

    def test_clm_increases_sat_current(self, tech90):
        m = nmos(tech90)
        i1 = m.drain_current(0.8, 0.8, 0.0)
        i2 = m.drain_current(0.8, 1.2, 0.0)
        assert i2 > i1

    def test_continuity_across_threshold(self, tech90):
        # No kink at vgs = VT: relative steps stay bounded.
        m = nmos(tech90)
        vt = m.params.vt0_v
        vgs = np.linspace(vt - 0.05, vt + 0.05, 201)
        ids = np.array([m.drain_current(v, 0.6, 0.0) for v in vgs])
        rel_step = np.diff(ids) / ids[:-1]
        assert np.max(rel_step) < 0.2


class TestLinearization:
    def test_gm_matches_secant(self, tech90):
        m = nmos(tech90)
        _, gm, _, _ = m.linearize(0.8, 0.6, 0.0)
        h = 1e-4
        secant = (m.drain_current(0.8 + h, 0.6, 0.0)
                  - m.drain_current(0.8 - h, 0.6, 0.0)) / (2 * h)
        assert gm == pytest.approx(secant, rel=1e-3)

    def test_gds_positive_in_saturation(self, tech90):
        m = nmos(tech90)
        _, _, gds, _ = m.linearize(0.8, 1.0, 0.0)
        assert gds > 0.0

    def test_gmb_positive_for_nmos(self, tech90):
        m = nmos(tech90)
        _, _, _, gmb = m.linearize(0.8, 1.0, -0.3)
        assert gmb > 0.0

    def test_gm_larger_than_gds_in_saturation(self, tech90):
        m = nmos(tech90, l=4 * tech90.lmin_m)
        _, gm, gds, _ = m.linearize(0.8, 1.0, 0.0)
        assert gm > 5.0 * gds


class TestOperatingPoint:
    def test_regions(self, tech90):
        ckt = Circuit("op")
        ckt.voltage_source("vg", "g", "0", 0.0)
        ckt.voltage_source("vd", "d", "0", 1.0)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "g", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=0.09e-6))
        op = dc_operating_point(ckt)
        assert op.device_op("m1").region == "cutoff"
        ckt["vg"].spec = type(ckt["vg"].spec)(1.2)
        op = dc_operating_point(ckt)
        assert op.device_op("m1").region == "saturation"
        ckt["vd"].spec = type(ckt["vd"].spec)(0.05)
        op = dc_operating_point(ckt)
        assert op.device_op("m1").region == "triode"

    def test_ro_and_gain(self, tech90):
        ckt = Circuit("op")
        ckt.voltage_source("vg", "g", "0", 0.8)
        ckt.voltage_source("vd", "d", "0", 1.0)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "g", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=0.36e-6))
        dev_op = dc_operating_point(ckt).device_op("m1")
        assert dev_op.ro_ohm == pytest.approx(1.0 / dev_op.gds_s)
        assert dev_op.intrinsic_gain > 5.0


class TestVariationHooks:
    def test_delta_vt_shifts_current(self, tech90):
        m = nmos(tech90)
        i_nominal = m.drain_current(0.8, 0.6, 0.0)
        m.variation = DeviceVariation(delta_vt_v=0.05)
        i_shifted = m.drain_current(0.8, 0.6, 0.0)
        # Positive ΔV_T = harder to turn on = less current.
        assert i_shifted < i_nominal
        # Equivalent to lowering vgs by the same amount (square-ish law).
        m.variation = DeviceVariation()
        assert i_shifted == pytest.approx(
            m.drain_current(0.75, 0.6, 0.0), rel=0.02)

    def test_beta_factor_scales_current(self, tech90):
        m = nmos(tech90)
        i_nominal = m.drain_current(0.8, 0.6, 0.0)
        m.variation = DeviceVariation(beta_factor=0.9)
        assert m.drain_current(0.8, 0.6, 0.0) == pytest.approx(
            0.9 * i_nominal, rel=1e-3)

    def test_pmos_delta_vt_sign_convention(self, tech90):
        # Positive ΔV_T makes a PMOS harder to turn on too.
        m = pmos(tech90)
        i_nominal = abs(m.drain_current(-0.8, -0.6, 0.0))
        m.variation = DeviceVariation(delta_vt_v=0.05)
        assert abs(m.drain_current(-0.8, -0.6, 0.0)) < i_nominal


class TestDegradationHooks:
    def test_fresh_flag(self, tech90):
        m = nmos(tech90)
        assert m.degradation.is_fresh()
        m.degradation.delta_vt_v = 0.01
        assert not m.degradation.is_fresh()
        m.degradation.reset()
        assert m.degradation.is_fresh()

    def test_degraded_iv_shifts_down(self, tech90):
        # Fig 2: degraded device carries less current everywhere.
        m = nmos(tech90)
        vds = np.linspace(0.05, 1.2, 10)
        fresh = np.array([m.drain_current(1.0, v, 0.0) for v in vds])
        m.degradation = DeviceDegradation(delta_vt_v=0.05, beta_factor=0.9)
        aged = np.array([m.drain_current(1.0, v, 0.0) for v in vds])
        assert np.all(aged < fresh)

    def test_lambda_factor_softens_output(self, tech90):
        m = nmos(tech90)
        _, _, gds_fresh, _ = m.linearize(0.8, 1.0, 0.0)
        m.degradation = DeviceDegradation(lambda_factor=2.0)
        _, _, gds_aged, _ = m.linearize(0.8, 1.0, 0.0)
        assert gds_aged > gds_fresh

    def test_gate_leak_draws_gate_current(self, tech90):
        ckt = Circuit("leak")
        ckt.voltage_source("vg", "g", "0", 1.0)
        ckt.voltage_source("vd", "d", "0", 0.6)
        m = Mosfet.from_technology("m1", "d", "g", "0", "0", tech90, "n",
                                   w_m=1e-6, l_m=0.09e-6)
        ckt.mosfet(m)
        op = dc_operating_point(ckt)
        assert abs(op.source_current("vg")) < 1e-11
        m.degradation.gate_leak_s = 1e-3
        m.degradation.bd_spot_position = 0.0  # leak to source (=gnd)
        op = dc_operating_point(ckt)
        # HBD: gate current in the mA range at ~1 V (paper §3.1).
        assert abs(op.source_current("vg")) == pytest.approx(1e-3, rel=0.01)


class TestStressHelpers:
    def test_oxide_field(self, tech90):
        m = nmos(tech90)
        assert m.oxide_field(1.2) == pytest.approx(1.2 / tech90.tox_m)

    def test_lateral_field(self, tech90):
        m = nmos(tech90, l=0.09e-6)
        assert m.lateral_field(0.9) == pytest.approx(1e7)
