"""Unit tests for the Circuit container and DC analyses."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    ConvergenceError,
    Mosfet,
    NewtonOptions,
    dc_operating_point,
    dc_sweep,
    is_ground,
    newton_solve,
)


class TestGroundNames:
    def test_recognized_spellings(self):
        assert is_ground("0")
        assert is_ground("gnd")
        assert is_ground("GND")
        assert not is_ground("vdd")


class TestCircuitContainer:
    def test_duplicate_name_rejected(self):
        ckt = Circuit("dup")
        ckt.resistor("r1", "a", "0", 1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ckt.resistor("r1", "b", "0", 1.0)

    def test_getitem_and_contains(self):
        ckt = Circuit("x")
        r = ckt.resistor("r1", "a", "0", 1.0)
        assert ckt["r1"] is r
        assert "r1" in ckt
        assert "r2" not in ckt
        with pytest.raises(KeyError):
            ckt["nope"]

    def test_len_and_iter(self):
        ckt = Circuit("x")
        ckt.resistor("r1", "a", "0", 1.0)
        ckt.resistor("r2", "a", "b", 1.0)
        assert len(ckt) == 2
        assert [e.name for e in ckt] == ["r1", "r2"]

    def test_empty_circuit_cannot_compile(self):
        with pytest.raises(ValueError, match="empty"):
            Circuit("e").compile()

    def test_node_indices_stable(self):
        ckt = Circuit("x")
        ckt.resistor("r1", "a", "b", 1.0)
        ckt.resistor("r2", "b", "0", 1.0)
        assert ckt.node("a") == 0
        assert ckt.node("b") == 1
        assert ckt.node("0") == -1
        assert ckt.n_nodes == 2

    def test_unknown_node_raises(self):
        ckt = Circuit("x")
        ckt.resistor("r1", "a", "0", 1.0)
        with pytest.raises(KeyError, match="unknown node"):
            ckt.node("zz")

    def test_n_unknowns_counts_branches(self):
        ckt = Circuit("x")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "0", 1.0)
        assert ckt.n_unknowns == 2  # one node + one branch

    def test_mosfets_listing(self, tech90):
        ckt = Circuit("x")
        ckt.voltage_source("v1", "d", "0", 1.0)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "d", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=1e-6))
        assert [m.name for m in ckt.mosfets] == ["m1"]

    def test_shared_elements_rebind_between_circuits(self, tech90):
        """An element used in two circuits binds to whichever circuit is
        compiled last — and each analysis re-compiles first."""
        base = Circuit("base")
        base.voltage_source("v1", "x", "0", 1.0)
        r = base.resistor("r1", "x", "0", 1e3)
        wrapper = Circuit("wrapper")
        wrapper.resistor("extra", "pre", "x", 1e3)
        wrapper.voltage_source("v1", "pre", "0", 1.0)
        wrapper.add(r)
        op_wrap = dc_operating_point(wrapper)
        assert op_wrap.voltage("x") == pytest.approx(0.5)
        op_base = dc_operating_point(base)
        assert op_base.voltage("x") == pytest.approx(1.0)


class TestDcOperatingPoint:
    def test_nonlinear_diode_connected(self, tech90):
        ckt = Circuit("dc")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.resistor("rb", "vdd", "d", 10e3)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "d", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=0.09e-6))
        op = dc_operating_point(ckt)
        vd = op.voltage("d")
        assert tech90.vt0_n < vd < tech90.vdd
        # KCL at the drain node.
        i_r = (tech90.vdd - vd) / 10e3
        assert op.device_op("m1").ids_a == pytest.approx(i_r, rel=1e-4)

    def test_voltages_helper(self, tech90):
        ckt = Circuit("v")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.resistor("r2", "b", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltages(["a", "b", "0"]) == pytest.approx([1.0, 0.5, 0.0])

    def test_device_op_type_check(self, tech90):
        ckt = Circuit("t")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "0", 1e3)
        op = dc_operating_point(ckt)
        with pytest.raises(TypeError):
            op.device_op("r1")
        with pytest.raises(TypeError):
            op.source_current("r1")

    def test_all_device_ops(self, tech90):
        ckt = Circuit("all")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.resistor("rb", "vdd", "d", 10e3)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "d", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=0.09e-6))
        ops = dc_operating_point(ckt).all_device_ops()
        assert set(ops) == {"m1"}


class TestNewtonSolver:
    def test_linear_system_one_iteration(self):
        def stamp(st, x):
            st.conductance(0, -1, 1e-3)
            st.current(0, 1e-3)

        x = newton_solve(stamp, size=1, n_nodes=1)
        assert x[0] == pytest.approx(1.0)

    def test_nonconvergent_raises(self):
        # A pathological oscillating "device".
        state = {"n": 0}

        def stamp(st, x):
            state["n"] += 1
            st.conductance(0, -1, 1e-3)
            st.current(0, 1e-3 if state["n"] % 2 else -1e-3)

        with pytest.raises(ConvergenceError):
            newton_solve(stamp, size=1, n_nodes=1,
                         options=NewtonOptions(max_iterations=20))

    def test_damping_limits_step(self):
        seen = []

        def stamp(st, x):
            seen.append(float(x[0]))
            st.conductance(0, -1, 1e-3)
            st.current(0, 10e-3)  # wants to jump to 10 V

        newton_solve(stamp, size=1, n_nodes=1,
                     options=NewtonOptions(damping_v=0.5))
        # First update must be clamped to 0.5 V.
        assert seen[1] == pytest.approx(0.5)

    def test_bad_x0_shape_rejected(self):
        def stamp(st, x):
            st.conductance(0, -1, 1.0)

        with pytest.raises(ValueError):
            newton_solve(stamp, size=1, n_nodes=1, x0=np.zeros(3))


class TestDcSweep:
    def test_sweep_restores_spec(self, tech90):
        ckt = Circuit("s")
        vs = ckt.voltage_source("v1", "a", "0", 0.7)
        ckt.resistor("r1", "a", "0", 1e3)
        original = vs.spec
        dc_sweep(ckt, "v1", [0.0, 0.5, 1.0])
        assert vs.spec is original

    def test_sweep_values_tracked(self, tech90):
        ckt = Circuit("s")
        ckt.voltage_source("v1", "a", "0", 0.0)
        ckt.resistor("r1", "a", "0", 1e3)
        sols = dc_sweep(ckt, "v1", [0.0, 0.5, 1.0])
        assert [s.voltage("a") for s in sols] == pytest.approx([0.0, 0.5, 1.0])

    def test_sweep_mosfet_iv_monotone(self, tech90):
        ckt = Circuit("iv")
        ckt.voltage_source("vg", "g", "0", 0.9)
        ckt.voltage_source("vd", "d", "0", 0.0)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "g", "0", "0", tech90,
                                          "n", w_m=1e-6, l_m=0.09e-6))
        sols = dc_sweep(ckt, "vd", np.linspace(0.0, 1.2, 13))
        ids = [-s.source_current("vd") for s in sols]
        assert all(b >= a - 1e-12 for a, b in zip(ids, ids[1:]))
        assert ids[-1] > 1e-5

    def test_sweep_rejects_non_source(self, tech90):
        ckt = Circuit("s")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "0", 1e3)
        with pytest.raises(TypeError):
            dc_sweep(ckt, "r1", [1.0])
