"""Unit tests for the SPICE-flavoured netlist parser/writer."""

import math

import pytest

from repro.circuit import (
    Capacitor,
    DcSpec,
    Mosfet,
    NetlistError,
    PulseSpec,
    PwlSpec,
    SineSpec,
    dc_operating_point,
    format_value,
    parse_netlist,
    parse_value,
    transient,
    write_netlist,
)


class TestParseValue:
    def test_plain_numbers(self):
        assert parse_value("42") == 42.0
        assert parse_value("-3.5") == -3.5
        assert parse_value("1e-9") == 1e-9
        assert parse_value(".5") == 0.5

    def test_suffixes(self):
        assert parse_value("10k") == pytest.approx(10e3)
        assert parse_value("2.5u") == pytest.approx(2.5e-6)
        assert parse_value("100meg") == pytest.approx(100e6)
        assert parse_value("3n") == pytest.approx(3e-9)
        assert parse_value("1p") == pytest.approx(1e-12)
        assert parse_value("7f") == pytest.approx(7e-15)
        assert parse_value("2g") == pytest.approx(2e9)
        assert parse_value("1t") == pytest.approx(1e12)
        assert parse_value("5m") == pytest.approx(5e-3)

    def test_case_insensitive(self):
        assert parse_value("10K") == 10e3
        assert parse_value("100MEG") == 100e6

    def test_rejects_garbage(self):
        for bad in ("abc", "1x", "", "--1", "1..2"):
            with pytest.raises(ValueError):
                parse_value(bad)


class TestFormatValue:
    def test_roundtrip_suffixes(self):
        for value in (10e3, 2.5e-6, 100e6, 3e-9, 0.0, 42.0, -1.5e-12):
            assert parse_value(format_value(value)) == pytest.approx(value)


class TestParseBasics:
    def test_title_and_simple_divider(self):
        ckt = parse_netlist("""my divider
* a comment
V1 in 0 2.0
R1 in mid 1k   ; inline comment
R2 mid 0 3k
.end
""")
        assert ckt.title == "my divider"
        assert len(ckt) == 3
        op = dc_operating_point(ckt)
        assert op.voltage("mid") == pytest.approx(1.5)

    def test_continuation_lines(self):
        ckt = parse_netlist("""t
V1 in 0
+ sin(0.5 0.1
+ 1meg)
R1 in 0 1k
""")
        spec = ckt["V1"].spec
        assert isinstance(spec, SineSpec)
        assert spec.frequency_hz == pytest.approx(1e6)

    def test_all_source_specs(self):
        ckt = parse_netlist("""sources
V1 a 0 dc 1.5
V2 b 0 sin(0 1 10k 1u 0.5)
V3 c 0 pulse(0 1 0 1n 1n 5n 10n)
V4 d 0 pwl(0 0 1u 1 2u 0.5)
I1 e 0 2m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
R5 e 0 1k
""")
        assert isinstance(ckt["V1"].spec, DcSpec)
        assert isinstance(ckt["V2"].spec, SineSpec)
        assert isinstance(ckt["V3"].spec, PulseSpec)
        assert isinstance(ckt["V4"].spec, PwlSpec)
        assert ckt["I1"].spec.level == pytest.approx(2e-3)

    def test_ac_magnitude(self):
        ckt = parse_netlist("""t
V1 in 0 1.0 ac=1
R1 in 0 1k
""")
        assert ckt["V1"].ac_mag == pytest.approx(1.0)

    def test_capacitor_ic(self):
        ckt = parse_netlist("""t
C1 a 0 1n ic=0.5
R1 a 0 1k
""")
        cap = ckt["C1"]
        assert isinstance(cap, Capacitor)
        assert cap.v_initial == pytest.approx(0.5)

    def test_diode_and_controlled_sources(self):
        ckt = parse_netlist("""t
V1 in 0 5
R1 in a 1k
D1 a 0 is=1e-15 n=1.1
Gxf 0 out a 0 2m
Rload out 0 1k
Ebuf buf 0 out 0 2
Rb buf 0 1meg
""")
        assert ckt["D1"].ideality == pytest.approx(1.1)
        assert ckt["Gxf"].gm == pytest.approx(2e-3)
        assert ckt["Ebuf"].gain == pytest.approx(2.0)

    def test_mosfet_needs_technology(self, tech90):
        text = """t
V1 d 0 1.0
M1 d d 0 0 n w=1u l=0.09u
"""
        with pytest.raises(NetlistError, match="technology"):
            parse_netlist(text)
        ckt = parse_netlist(text, tech=tech90)
        m = ckt["M1"]
        assert isinstance(m, Mosfet)
        assert m.params.w_um == pytest.approx(1.0)
        assert m.params.polarity == "n"

    def test_mosfet_polarity_words(self, tech90):
        ckt = parse_netlist("""t
V1 s 0 1.2
M1 0 0 s s pmos w=2u l=0.09u
""", tech=tech90)
        assert ckt["M1"].params.polarity == "p"


class TestParseErrors:
    def test_unknown_element(self):
        with pytest.raises(NetlistError, match="unknown element"):
            parse_netlist("t\nQ1 a b c 1\n")

    def test_wrong_field_count(self):
        with pytest.raises(NetlistError, match="expected 3 fields"):
            parse_netlist("t\nR1 a 0\n")

    def test_unsupported_directive(self):
        with pytest.raises(NetlistError, match="unsupported directive"):
            parse_netlist("t\n.tran 1n 1u\n")

    def test_bad_sin_args(self):
        with pytest.raises(NetlistError, match="sin"):
            parse_netlist("t\nV1 a 0 sin(1)\n")

    def test_line_number_reported(self):
        try:
            parse_netlist("t\nR1 a 0 1k\nR2 a 0\n")
        except NetlistError as err:
            assert err.line_no == 3
        else:
            pytest.fail("expected NetlistError")

    def test_continuation_without_card(self):
        with pytest.raises(NetlistError, match="continuation"):
            parse_netlist("t\n+ R1 a 0 1k\n".replace("t\n", "", 1))

    def test_empty_netlist(self):
        with pytest.raises(ValueError, match="empty"):
            parse_netlist("\n* only a comment\n")


class TestRoundTrip:
    def test_rlc_roundtrip(self):
        text = """rlc tank
V1 in 0 sin(0 1 1meg 0 0)
R1 in mid 50
L1 mid out 1u
C1 out 0 1n ic=0
.end
"""
        ckt = parse_netlist(text)
        text2 = write_netlist(ckt)
        ckt2 = parse_netlist(text2)
        assert len(ckt2) == len(ckt)
        assert ckt2["L1"].inductance == pytest.approx(1e-6)
        assert ckt2["C1"].v_initial == pytest.approx(0.0)

    def test_mosfet_roundtrip_simulates_identically(self, tech90):
        text = """mirror
Vdd vdd 0 1.2
Iref vdd din 100u
M1 din din 0 0 n w=10u l=1u
M2 out din 0 0 n w=10u l=1u
Vout out 0 0.6
"""
        ckt = parse_netlist(text, tech=tech90)
        i1 = -dc_operating_point(ckt).source_current("Vout")
        ckt2 = parse_netlist(write_netlist(ckt), tech=tech90)
        i2 = -dc_operating_point(ckt2).source_current("Vout")
        assert i1 == pytest.approx(i2, rel=1e-9)
        assert i1 == pytest.approx(100e-6, rel=0.05)

    def test_written_netlist_is_parseable_transient(self):
        text = """rc
V1 in 0 pulse(0 1 0 1n 1n 100n 200n)
R1 in out 1k
C1 out 0 1n
"""
        ckt = parse_netlist(write_netlist(parse_netlist(text)))
        res = transient(ckt, t_stop=5e-6, dt=5e-9)
        # 50 % duty square through a slow RC settles around 0.5.
        assert res.voltage("out").last_period(1e-6).mean() == pytest.approx(
            0.5, abs=0.05)


class TestSubcircuits:
    INV_NETLIST = """buffer chain
.subckt inv in out vdd
Mn out in 0 0 n w=0.5u l=0.09u
Mp out in vdd vdd p w=1.25u l=0.09u
.ends
Vdd vdd 0 1.2
Vin a 0 0
X1 a b vdd inv
X2 b c vdd inv
.end
"""

    def test_expansion_and_solve(self, tech90):
        ckt = parse_netlist(self.INV_NETLIST, tech=tech90)
        assert "X1.Mn" in ckt
        assert "X2.Mp" in ckt
        op = dc_operating_point(ckt)
        assert op.voltage("b") > 1.1   # first inverter: 0 -> 1
        assert op.voltage("c") < 0.1   # second inverter: 1 -> 0

    def test_nested_usage(self, tech90):
        text = """nested
.subckt half a b
R1 a b 1k
.ends
.subckt full x y
Xh1 x m half
Xh2 m y half
.ends
V1 in 0 2.0
Xf in out full
Rload out 0 2k
"""
        ckt = parse_netlist(text, tech=tech90)
        op = dc_operating_point(ckt)
        # 2k source resistance (two 1k halves) into 2k load: divider 1 V.
        assert op.voltage("out") == pytest.approx(1.0)
        assert "Xf.Xh1.R1" in ckt

    def test_port_count_checked(self, tech90):
        text = """bad
.subckt inv in out vdd
R1 in out 1k
.ends
X1 a b inv
"""
        with pytest.raises(NetlistError, match="ports"):
            parse_netlist(text, tech=tech90)

    def test_unknown_subckt(self):
        with pytest.raises(NetlistError, match="unknown subcircuit"):
            parse_netlist("t\nX1 a b nothere\n")

    def test_unterminated_subckt(self):
        with pytest.raises(NetlistError, match="unterminated"):
            parse_netlist("t\n.subckt inv a b\nR1 a b 1k\n")

    def test_ends_without_subckt(self):
        with pytest.raises(NetlistError, match="without"):
            parse_netlist("t\n.ends\n")

    def test_nested_definition_rejected(self):
        text = "t\n.subckt a x\n.subckt b y\n.ends\n.ends\n"
        with pytest.raises(NetlistError, match="nested"):
            parse_netlist(text)


class TestWaveformCsv:
    def test_roundtrip(self):
        import numpy as np

        from repro.circuit import Waveform

        w = Waveform(np.linspace(0, 1e-6, 11),
                     np.sin(np.linspace(0, 6.28, 11)))
        w2 = Waveform.from_csv(w.to_csv())
        assert np.allclose(w2.times, w.times)
        assert np.allclose(w2.values, w.values)

    def test_header_row(self):
        import numpy as np

        from repro.circuit import Waveform

        w = Waveform(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        assert w.to_csv(header="v(out)").splitlines()[0] == "time,v(out)"

    def test_bad_csv_rejected(self):
        from repro.circuit import Waveform

        with pytest.raises(ValueError):
            Waveform.from_csv("time,value\n0.0,1.0\n")
