"""Unit tests for transient and AC analyses."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    Mosfet,
    SineSpec,
    ac_analysis,
    dc_operating_point,
    logspace_frequencies,
    transient,
)


def rc_circuit(r=1e3, c=1e-9, source=None):
    ckt = Circuit("rc")
    spec = source if source is not None else SineSpec(
        offset=0.0, amplitude=1.0, frequency_hz=1e5)
    ckt.voltage_source("vin", "in", "0", spec, ac_mag=1.0)
    ckt.resistor("r1", "in", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


class TestTransientBasics:
    def test_rejects_bad_arguments(self):
        ckt = rc_circuit()
        with pytest.raises(ValueError):
            transient(ckt, t_stop=0.0, dt=1e-9)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-6, dt=-1e-9)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-9, dt=1e-6)
        with pytest.raises(ValueError):
            transient(ckt, t_stop=1e-6, dt=1e-9, method="euler")

    def test_starts_from_dc_solution(self):
        ckt = rc_circuit(source=SineSpec(offset=0.5, amplitude=0.2,
                                         frequency_hz=1e5))
        res = transient(ckt, t_stop=1e-6, dt=1e-8)
        assert res.voltage("out").values[0] == pytest.approx(0.5, abs=1e-6)

    def test_times_grid(self):
        ckt = rc_circuit()
        res = transient(ckt, t_stop=1e-6, dt=1e-8)
        assert len(res.times) == 101
        assert res.times[-1] == pytest.approx(1e-6)

    def test_ground_node_waveform_is_zero(self):
        ckt = rc_circuit()
        res = transient(ckt, t_stop=1e-7, dt=1e-9)
        assert np.all(res.voltage("0").values == 0.0)

    def test_differential_waveform(self):
        ckt = rc_circuit()
        res = transient(ckt, t_stop=1e-7, dt=1e-9)
        diff = res.differential("in", "out")
        manual = res.voltage("in") - res.voltage("out")
        assert np.allclose(diff.values, manual.values)

    def test_source_current_readback(self):
        ckt = Circuit("i")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "0", 1e3)
        res = transient(ckt, t_stop=1e-7, dt=1e-9)
        w = res.source_current("v1")
        assert w.mean() == pytest.approx(-1e-3, rel=1e-6)

    def test_source_current_type_check(self):
        ckt = rc_circuit()
        res = transient(ckt, t_stop=1e-7, dt=1e-9)
        with pytest.raises(TypeError):
            res.source_current("r1")


class TestTransientAccuracy:
    def test_rc_lowpass_attenuation(self):
        # f = fc: |H| = 1/√2, phase -45°.
        r, c = 1e3, 1e-9
        fc = 1.0 / (2 * math.pi * r * c)
        ckt = rc_circuit(r, c, SineSpec(offset=0.0, amplitude=1.0,
                                        frequency_hz=fc))
        res = transient(ckt, t_stop=20 / fc, dt=1 / (200 * fc))
        out = res.voltage("out").last_period(5 / fc)
        assert out.rms() == pytest.approx(1.0 / math.sqrt(2) / math.sqrt(2),
                                          rel=0.03)

    def test_energy_conservation_lc(self):
        # Undriven LC tank from a charged cap: oscillation at f0 with
        # (nearly) constant amplitude under trapezoidal integration.
        ckt = Circuit("lc")
        ckt.capacitor("c1", "a", "0", 1e-9, v_initial=1.0)
        ckt.inductor("l1", "a", "0", 1e-6)
        ckt.resistor("rleak", "a", "0", 1e9)
        f0 = 1.0 / (2 * math.pi * math.sqrt(1e-6 * 1e-9))
        res = transient(ckt, t_stop=10 / f0, dt=1 / (400 * f0))
        w = res.voltage("a")
        last = w.last_period(1 / f0)
        assert last.peak() == pytest.approx(1.0, rel=0.05)

    def test_mosfet_inverter_switches(self, tech90):
        ckt = Circuit("inv")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.voltage_source("vin", "in", "0",
                           SineSpec(offset=tech90.vdd / 2,
                                    amplitude=tech90.vdd / 2,
                                    frequency_hz=50e6))
        ckt.mosfet(Mosfet.from_technology("mn", "out", "in", "0", "0",
                                          tech90, "n", w_m=1e-6,
                                          l_m=tech90.lmin_m))
        ckt.mosfet(Mosfet.from_technology("mp", "out", "in", "vdd", "vdd",
                                          tech90, "p", w_m=2.5e-6,
                                          l_m=tech90.lmin_m))
        ckt.capacitor("cl", "out", "0", 10e-15)
        res = transient(ckt, t_stop=60e-9, dt=0.1e-9)
        out = res.voltage("out").last_period(20e-9)
        assert out.peak() > 0.9 * tech90.vdd
        assert out.trough() < 0.1 * tech90.vdd


class TestDeviceBias:
    def test_bias_waveforms_consistent(self, tech90):
        ckt = Circuit("bias")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.voltage_source("vg", "g", "0",
                           SineSpec(offset=0.6, amplitude=0.2,
                                    frequency_hz=10e6))
        m = Mosfet.from_technology("m1", "vdd", "g", "0", "0", tech90, "n",
                                   w_m=1e-6, l_m=0.09e-6)
        ckt.mosfet(m)
        res = transient(ckt, t_stop=200e-9, dt=1e-9)
        bias = res.device_bias("m1")
        assert bias["vgs"].mean() == pytest.approx(0.6, abs=0.01)
        assert bias["vds"].mean() == pytest.approx(tech90.vdd, abs=1e-6)
        assert np.all(bias["ids"].values >= 0.0)

    def test_device_bias_type_check(self):
        ckt = rc_circuit()
        res = transient(ckt, t_stop=1e-7, dt=1e-9)
        with pytest.raises(TypeError):
            res.device_bias("r1")


class TestAcAnalysis:
    def test_rc_transfer_function(self):
        ckt = rc_circuit()
        fc = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        res = ac_analysis(ckt, [fc / 100, fc, fc * 100])
        mag = np.abs(res.voltage("out"))
        assert mag[0] == pytest.approx(1.0, rel=1e-3)
        assert mag[1] == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-3)
        assert mag[2] == pytest.approx(0.01, rel=0.03)

    def test_phase_at_pole(self):
        ckt = rc_circuit()
        fc = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        res = ac_analysis(ckt, [fc])
        assert res.phase_deg("out")[0] == pytest.approx(-45.0, abs=0.5)

    def test_magnitude_db(self):
        ckt = rc_circuit()
        fc = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        res = ac_analysis(ckt, [fc])
        assert res.magnitude_db("out")[0] == pytest.approx(-3.01, abs=0.05)

    def test_common_source_gain(self, tech90):
        # AC gain of a resistively loaded common-source stage ≈ gm·R_L.
        ckt = Circuit("cs")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.voltage_source("vg", "g", "0", 0.55, ac_mag=1.0)
        ckt.resistor("rl", "vdd", "d", 10e3)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "g", "0", "0", tech90,
                                          "n", w_m=2e-6, l_m=0.36e-6))
        op = dc_operating_point(ckt)
        dev = op.device_op("m1")
        res = ac_analysis(ckt, [1e3], operating_point=op)
        gain = float(np.abs(res.voltage("d"))[0])
        expected = dev.gm_s * (1.0 / (1e-4 + dev.gds_s))
        assert gain == pytest.approx(expected, rel=0.02)

    def test_rejects_bad_frequencies(self):
        ckt = rc_circuit()
        with pytest.raises(ValueError):
            ac_analysis(ckt, [])
        with pytest.raises(ValueError):
            ac_analysis(ckt, [-1.0])

    def test_logspace_frequencies(self):
        freqs = logspace_frequencies(1e3, 1e6, points_per_decade=10)
        assert freqs[0] == pytest.approx(1e3)
        assert freqs[-1] == pytest.approx(1e6)
        assert len(freqs) == 31
        with pytest.raises(ValueError):
            logspace_frequencies(1e6, 1e3)
