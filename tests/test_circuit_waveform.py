"""Unit tests for :mod:`repro.circuit.waveform`."""

import numpy as np
import pytest

from repro.circuit import Waveform


def sine(amplitude=1.0, offset=0.0, freq=1.0, n=2001, periods=4.0):
    t = np.linspace(0.0, periods / freq, n)
    return Waveform(t, offset + amplitude * np.sin(2 * np.pi * freq * t))


class TestConstruction:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            Waveform(np.array([0.0, 1.0]), np.array([1.0]))

    def test_rejects_non_monotonic_times(self):
        with pytest.raises(ValueError, match="increasing"):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError, match="two samples"):
            Waveform(np.array([0.0]), np.array([1.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            Waveform(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_constant_factory(self):
        w = Waveform.constant(3.3, t_stop=1.0)
        assert w.mean() == pytest.approx(3.3)
        assert w.peak_to_peak() == pytest.approx(0.0)

    def test_from_function(self):
        w = Waveform.from_function(lambda t: 2.0 * t, t_stop=1.0)
        assert w.sample(0.5) == pytest.approx(1.0)


class TestReductions:
    def test_sine_mean_is_offset(self):
        w = sine(amplitude=2.0, offset=0.7)
        assert w.mean() == pytest.approx(0.7, abs=1e-3)

    def test_sine_rms(self):
        w = sine(amplitude=1.0, offset=0.0)
        assert w.rms() == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)

    def test_peaks(self):
        w = sine(amplitude=1.5, offset=0.5)
        assert w.peak() == pytest.approx(2.0, abs=1e-3)
        assert w.trough() == pytest.approx(-1.0, abs=1e-3)
        assert w.peak_to_peak() == pytest.approx(3.0, abs=2e-3)

    def test_duty_above_midline_is_half(self):
        w = sine()
        assert w.duty_above(0.0) == pytest.approx(0.5, abs=0.01)

    def test_duty_above_peak_is_zero(self):
        w = sine()
        assert w.duty_above(2.0) == pytest.approx(0.0)

    def test_time_average_of_square(self):
        w = sine(amplitude=1.0)
        assert w.time_average_of(lambda v: v ** 2) == pytest.approx(0.5, rel=1e-2)

    def test_duration(self):
        w = sine(freq=2.0, periods=4.0)
        assert w.duration == pytest.approx(2.0)


class TestAlgebra:
    def test_add_constant(self):
        w = sine() + 1.0
        assert w.mean() == pytest.approx(1.0, abs=1e-3)

    def test_subtract_waveforms(self):
        w = sine()
        z = w - w
        assert z.peak_to_peak() == pytest.approx(0.0)

    def test_multiply(self):
        w = sine(amplitude=1.0) * sine(amplitude=1.0)
        # sin² has mean 1/2.
        assert w.mean() == pytest.approx(0.5, rel=1e-2)

    def test_neg(self):
        w = -sine(offset=1.0)
        assert w.mean() == pytest.approx(-1.0, abs=1e-3)

    def test_abs(self):
        w = sine().abs()
        assert w.trough() >= 0.0

    def test_clip(self):
        w = sine(amplitude=2.0).clip(-1.0, 1.0)
        assert w.peak() == pytest.approx(1.0)
        assert w.trough() == pytest.approx(-1.0)

    def test_clip_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            sine().clip(1.0, -1.0)

    def test_add_resamples_other_timebase(self):
        w1 = sine(n=2001)
        w2 = sine(n=501)
        s = w1 + w2
        assert len(s) == len(w1)
        assert s.peak() == pytest.approx(2.0, abs=0.01)


class TestSampling:
    def test_scalar_interpolation(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 10.0]))
        assert w.sample(0.25) == pytest.approx(2.5)

    def test_clamps_outside_range(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 10.0]))
        assert w.sample(2.0) == pytest.approx(10.0)
        assert w.sample(-1.0) == pytest.approx(0.0)

    def test_vector_sampling(self):
        w = Waveform(np.array([0.0, 1.0]), np.array([0.0, 10.0]))
        out = w.sample(np.array([0.0, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 5.0, 10.0])


class TestLastPeriod:
    def test_restricts_to_tail(self):
        w = sine(freq=1.0, periods=4.0)
        tail = w.last_period(1.0)
        assert tail.duration == pytest.approx(1.0, rel=0.01)
        assert tail.times[-1] == w.times[-1]

    def test_longer_than_span_returns_self(self):
        w = sine(periods=2.0)
        assert w.last_period(100.0) is w

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            sine().last_period(0.0)

    def test_tail_mean_of_decaying_signal(self):
        t = np.linspace(0.0, 10.0, 1001)
        w = Waveform(t, np.exp(-t))
        assert w.last_period(1.0).mean() < 0.01 * w.mean()
