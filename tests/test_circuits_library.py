"""Unit tests for the circuit library (references, digital, analog)."""

import numpy as np
import pytest

from repro.circuit import dc_operating_point, transient
from repro.circuits import (
    beta_multiplier_reference,
    dc_gain,
    differential_pair,
    filtered_current_reference,
    five_transistor_ota,
    input_referred_offset_v,
    inverter,
    is_bistable,
    noise_margins,
    oscillation_frequency,
    propagation_delay,
    resistor_divider_bias,
    ring_oscillator,
    simple_current_mirror,
    solve_beta_multiplier,
    sram_cell,
    sram_hold_butterfly,
    static_noise_margin,
    switching_threshold,
    unity_gain_bandwidth_hz,
    vtc,
)
from repro.circuit import DeviceVariation, Waveform


class TestCurrentMirror:
    def test_mirrors_reference(self, tech90):
        fx = simple_current_mirror(tech90, i_ref_a=100e-6)
        op = dc_operating_point(fx.circuit)
        i_out = -op.source_current("vout")
        assert i_out == pytest.approx(100e-6, rel=0.05)

    def test_mirror_ratio(self, tech90):
        fx = simple_current_mirror(tech90, i_ref_a=50e-6, mirror_ratio=2.0)
        op = dc_operating_point(fx.circuit)
        assert -op.source_current("vout") == pytest.approx(100e-6, rel=0.06)

    def test_diode_device_saturated(self, tech90):
        fx = simple_current_mirror(tech90)
        op = dc_operating_point(fx.circuit)
        assert op.device_op("m1").region == "saturation"

    def test_mismatch_skews_output(self, tech90):
        fx = simple_current_mirror(tech90)
        fx.circuit["m2"].variation = DeviceVariation(delta_vt_v=0.02)
        op = dc_operating_point(fx.circuit)
        assert -op.source_current("vout") < 95e-6

    def test_rejects_bad_args(self, tech90):
        with pytest.raises(ValueError):
            simple_current_mirror(tech90, i_ref_a=0.0)
        with pytest.raises(ValueError):
            simple_current_mirror(tech90, mirror_ratio=-1.0)


class TestFilteredReference:
    def test_filtered_and_plain_same_bias(self, tech90):
        filt = filtered_current_reference(tech90, filtered=True)
        plain = filtered_current_reference(tech90, filtered=False)
        i_f = -dc_operating_point(filt.circuit).source_current("vout")
        i_p = -dc_operating_point(plain.circuit).source_current("vout")
        assert i_f == pytest.approx(i_p, rel=1e-3)

    def test_filter_pole_in_meta(self, tech90):
        fx = filtered_current_reference(tech90, r_filter_ohm=10e3,
                                        c_filter_f=10e-12)
        assert fx.meta["filter_pole_hz"] == pytest.approx(1.59e6, rel=0.01)

    def test_unfiltered_has_no_filter_elements(self, tech90):
        fx = filtered_current_reference(tech90, filtered=False)
        assert "rf" not in fx.circuit
        assert "cf" not in fx.circuit


class TestBetaMultiplier:
    def test_conducting_state_current(self, tech90):
        fx = beta_multiplier_reference(tech90)
        op = solve_beta_multiplier(fx)
        i_set = op.voltage("ns") / fx.meta["r_set_ohm"]
        assert i_set > 5e-6  # clearly not the degenerate state
        # Both branches carry similar current (PMOS mirror working).
        vna = op.voltage("na")
        assert 0.2 * tech90.vdd < vna < 0.95 * tech90.vdd


class TestResistorDivider:
    def test_fraction(self, tech90):
        fx = resistor_divider_bias(tech90, fraction=0.25)
        op = dc_operating_point(fx.circuit)
        assert op.voltage("mid") == pytest.approx(0.25 * tech90.vdd, rel=1e-6)

    def test_validation(self, tech90):
        with pytest.raises(ValueError):
            resistor_divider_bias(tech90, fraction=1.5)


class TestInverter:
    def test_vtc_rails(self, tech90):
        fx = inverter(tech90)
        vin, vout = vtc(fx)
        assert vout[0] == pytest.approx(tech90.vdd, abs=0.01)
        assert vout[-1] == pytest.approx(0.0, abs=0.01)

    def test_switching_threshold_near_mid(self, tech90):
        fx = inverter(tech90)
        vin, vout = vtc(fx)
        vm = switching_threshold(vin, vout)
        assert 0.35 * tech90.vdd < vm < 0.65 * tech90.vdd

    def test_noise_margins_healthy(self, tech90):
        fx = inverter(tech90)
        vin, vout = vtc(fx)
        nml, nmh = noise_margins(vin, vout)
        assert nml > 0.2 * tech90.vdd
        assert nmh > 0.2 * tech90.vdd

    def test_nmos_vt_shift_moves_threshold(self, tech90):
        fx = inverter(tech90)
        fx.circuit["mn_inv"].variation = DeviceVariation(delta_vt_v=0.1)
        vin, vout = vtc(fx)
        vm_shifted = switching_threshold(vin, vout)
        fx.circuit["mn_inv"].variation = DeviceVariation()
        vin, vout = vtc(fx)
        vm_nominal = switching_threshold(vin, vout)
        assert vm_shifted > vm_nominal


class TestRingOscillator:
    def test_oscillates(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        res = transient(fx.circuit, t_stop=3e-9, dt=5e-12)
        w = res.voltage("s0")
        freq = oscillation_frequency(w, tech90.vdd / 2.0)
        assert 1e9 < freq < 100e9
        assert w.peak_to_peak() > 0.8 * tech90.vdd

    def test_more_stages_slower(self, tech90):
        def freq_of(n):
            fx = ring_oscillator(tech90, n_stages=n)
            res = transient(fx.circuit, t_stop=6e-9, dt=10e-12)
            return oscillation_frequency(res.voltage("s0"), tech90.vdd / 2)

        assert freq_of(3) > 1.5 * freq_of(7)

    def test_rejects_even_or_tiny_rings(self, tech90):
        with pytest.raises(ValueError):
            ring_oscillator(tech90, n_stages=4)
        with pytest.raises(ValueError):
            ring_oscillator(tech90, n_stages=1)

    def test_slow_devices_slow_the_ring(self, tech90):
        fx = ring_oscillator(tech90, n_stages=3)
        res = transient(fx.circuit, t_stop=4e-9, dt=8e-12)
        f_nom = oscillation_frequency(res.voltage("s0"), tech90.vdd / 2)
        for m in fx.circuit.mosfets:
            m.variation = DeviceVariation(delta_vt_v=0.08)
        res = transient(fx.circuit, t_stop=4e-9, dt=8e-12)
        f_slow = oscillation_frequency(res.voltage("s0"), tech90.vdd / 2)
        assert f_slow < f_nom


class TestSramCell:
    def test_bistable_when_healthy(self, tech90):
        assert is_bistable(sram_cell(tech90))

    def test_butterfly_snm_positive(self, tech90):
        fx = sram_cell(tech90)
        vp, vr = sram_hold_butterfly(fx)
        snm = static_noise_margin(vp, vr)
        assert 0.1 * tech90.vdd < snm < 0.6 * tech90.vdd

    def test_mismatch_degrades_snm(self, tech90):
        fx = sram_cell(tech90)
        vp, vr = sram_hold_butterfly(fx)
        snm_nom = static_noise_margin(vp, vr)
        fx.circuit["mn_l"].variation = DeviceVariation(delta_vt_v=0.12)
        fx.circuit["mp_r"].variation = DeviceVariation(delta_vt_v=0.12)
        vp, vr = sram_hold_butterfly(fx)
        snm_skew = static_noise_margin(vp, vr)
        assert snm_skew < snm_nom


class TestPropagationDelay:
    def test_inverter_delay_measurable(self, tech90):
        from repro.circuit import PulseSpec

        fx = inverter(tech90, load_c_f=20e-15)
        fx.circuit["vin"].spec = PulseSpec(v1=0.0, v2=tech90.vdd,
                                           delay_s=1e-9, rise_s=50e-12,
                                           fall_s=50e-12, width_s=5e-9,
                                           period_s=10e-9)
        res = transient(fx.circuit, t_stop=4e-9, dt=5e-12)
        tpd = propagation_delay(res.voltage("in"), res.voltage("out"),
                                tech90.vdd)
        assert 1e-12 < tpd < 1e-9


class TestDifferentialPair:
    def test_nominal_offset_zero(self, tech90):
        fx = differential_pair(tech90)
        assert input_referred_offset_v(fx) == pytest.approx(0.0, abs=1e-4)

    def test_vt_mismatch_appears_as_offset(self, tech90):
        fx = differential_pair(tech90)
        fx.circuit["m1"].variation = DeviceVariation(delta_vt_v=5e-3)
        offset = input_referred_offset_v(fx)
        # ΔV_T of the input pair maps ~1:1 to input-referred offset.
        assert offset == pytest.approx(5e-3, rel=0.2)

    def test_tail_splits_evenly(self, tech90):
        fx = differential_pair(tech90)
        op = dc_operating_point(fx.circuit)
        i1 = op.device_op("m1").ids_a
        i2 = op.device_op("m2").ids_a
        assert i1 == pytest.approx(i2, rel=1e-3)
        assert i1 + i2 == pytest.approx(fx.meta["i_tail_a"], rel=1e-3)


class TestOta:
    def test_gain_reasonable(self, tech90):
        fx = five_transistor_ota(tech90)
        gain = dc_gain(fx)
        assert 20.0 < gain < 500.0

    def test_ugbw_above_gain_pole(self, tech90):
        fx = five_transistor_ota(tech90)
        ugbw = unity_gain_bandwidth_hz(fx)
        assert 1e6 < ugbw < 10e9

    def test_offset_tracks_pair_mismatch(self, tech90):
        fx = five_transistor_ota(tech90)
        fx.circuit["m1"].variation = DeviceVariation(delta_vt_v=4e-3)
        offset = input_referred_offset_v(fx)
        assert abs(offset) == pytest.approx(4e-3, rel=0.3)


class TestOscillationFrequencyHelper:
    def test_known_sine(self):
        t = np.linspace(0, 1e-6, 2001)
        w = Waveform(t, np.sin(2 * np.pi * 10e6 * t))
        assert oscillation_frequency(w, 0.0) == pytest.approx(10e6, rel=0.01)

    def test_too_few_edges_raises(self):
        t = np.linspace(0, 1e-6, 101)
        w = Waveform(t, np.sin(2 * np.pi * 1e6 * t))
        with pytest.raises(ValueError, match="rising edges"):
            oscillation_frequency(w, 0.0)
