"""Tests for the two-stage opamp, logic gates and comparator."""

import numpy as np
import pytest

from repro.aging import BreakdownMode, TddbModel
from repro.circuit import DeviceVariation, dc_operating_point
from repro.circuits import (
    comparator,
    comparator_threshold_v,
    gate_is_functional,
    gate_truth_table,
    input_referred_offset_v,
    nand2,
    nor2,
    open_loop_gain,
    phase_margin_deg,
    two_stage_opamp,
    unity_gain_frequency_hz,
)


class TestTwoStageOpamp:
    def test_gain_exceeds_single_stage(self, tech90):
        from repro.circuits import dc_gain, five_transistor_ota

        two = two_stage_opamp(tech90)
        one = five_transistor_ota(tech90)
        assert open_loop_gain(two) > 2.0 * dc_gain(one)

    def test_compensated_phase_margin(self, tech90):
        fx = two_stage_opamp(tech90)
        pm = phase_margin_deg(fx)
        assert 45.0 < pm < 120.0

    def test_smaller_miller_cap_raises_ugf(self, tech90):
        slow = two_stage_opamp(tech90, c_miller_f=2e-12)
        fast = two_stage_opamp(tech90, c_miller_f=0.5e-12)
        assert (unity_gain_frequency_hz(fast)
                > 1.5 * unity_gain_frequency_hz(slow))

    def test_nominal_offset_near_zero(self, tech90):
        fx = two_stage_opamp(tech90)
        offset = input_referred_offset_v(fx, search_range_v=0.2)
        assert abs(offset) < 5e-3

    def test_pair_mismatch_appears_at_input(self, tech90):
        fx = two_stage_opamp(tech90)
        fx.circuit["m1"].variation = DeviceVariation(delta_vt_v=5e-3)
        offset = input_referred_offset_v(fx, search_range_v=0.2)
        assert abs(offset) == pytest.approx(5e-3, rel=0.4)

    def test_second_stage_device_biased(self, tech90):
        fx = two_stage_opamp(tech90)
        op = dc_operating_point(fx.circuit)
        assert op.device_op("m5").region == "saturation"

    def test_validation(self, tech90):
        with pytest.raises(ValueError):
            two_stage_opamp(tech90, c_miller_f=0.0)


class TestGates:
    def test_nand_truth_table(self, tech90):
        fx = nand2(tech90)
        table = {(a, b): y for a, b, y in gate_truth_table(fx)}
        assert table == {(0, 0): 1, (0, 1): 1, (1, 0): 1, (1, 1): 0}
        assert gate_is_functional(fx)

    def test_nor_truth_table(self, tech90):
        fx = nor2(tech90)
        table = {(a, b): y for a, b, y in gate_truth_table(fx)}
        assert table == {(0, 0): 1, (0, 1): 0, (1, 0): 0, (1, 1): 0}
        assert gate_is_functional(fx)

    def test_hard_breakdown_can_break_gate(self, tech90):
        # §3.1 on logic: inject a HBD into the NAND pull-down stack.
        fx = nand2(tech90)
        tddb = TddbModel(tech90.aging)
        tddb.apply_breakdown(fx.circuit["mna"], BreakdownMode.HARD,
                             spot_position=0.5)
        assert not gate_is_functional(fx)

    def test_soft_breakdown_often_survivable(self, tech90):
        fx = nand2(tech90)
        tddb = TddbModel(tech90.aging)
        tddb.apply_breakdown(fx.circuit["mpa"], BreakdownMode.SOFT,
                             spot_position=0.2)
        assert gate_is_functional(fx)

    def test_severe_vt_shift_breaks_gate(self, tech90):
        # Depletion-shifted pull-downs conduct at V_GS = 0: the NAND
        # fights its own pull-up and the logic-1 outputs collapse.
        fx = nand2(tech90)
        for name in ("mna", "mnb"):
            fx.circuit[name].variation = DeviceVariation(delta_vt_v=-0.9)
        assert not gate_is_functional(fx)


class TestComparator:
    def test_output_rails(self, tech90):
        from repro.circuit import DcSpec

        fx = comparator(tech90)
        ckt = fx.circuit
        vcm = fx.meta["vcm_v"]
        ckt["vinp"].spec = DcSpec(vcm + 0.1)
        assert dc_operating_point(ckt).voltage("dout") > 0.9 * tech90.vdd
        ckt["vinp"].spec = DcSpec(vcm - 0.1)
        assert dc_operating_point(ckt).voltage("dout") < 0.1 * tech90.vdd

    def test_threshold_near_zero(self, tech90):
        fx = comparator(tech90)
        threshold = comparator_threshold_v(fx)
        assert abs(threshold) < 0.02

    def test_mismatch_moves_threshold(self, tech90):
        fx = comparator(tech90)
        t0 = comparator_threshold_v(fx)
        fx.circuit["m1"].variation = DeviceVariation(delta_vt_v=8e-3)
        t1 = comparator_threshold_v(fx)
        assert (t1 - t0) == pytest.approx(8e-3, rel=0.4)

    def test_never_flipping_raises(self, tech90):
        fx = comparator(tech90)
        with pytest.raises(ValueError, match="never flips"):
            comparator_threshold_v(fx, search_range_v=1e-5, n_points=5)
