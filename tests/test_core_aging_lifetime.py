"""Unit tests for the aging simulator and lifetime estimation (§3/§5)."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import HciModel, NbtiModel, TddbModel
from repro.circuit import dc_operating_point, transient
from repro.circuits import (
    five_transistor_ota,
    oscillation_frequency,
    ring_oscillator,
    simple_current_mirror,
)
from repro.core import (
    MissionProfile,
    ReliabilitySimulator,
    mission_survival_probability,
    tddb_survival_fn,
    time_to_spec_violation,
)


class TestMissionProfile:
    def test_epoch_times_log_spaced(self):
        profile = MissionProfile(duration_s=1e8, n_epochs=6,
                                 t_first_epoch_s=1e3)
        times = profile.epoch_times_s()
        assert len(times) == 6
        assert times[0] == pytest.approx(1e3)
        assert times[-1] == pytest.approx(1e8)
        ratios = times[1:] / times[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_single_epoch(self):
        profile = MissionProfile(duration_s=1e6, n_epochs=1)
        assert profile.epoch_times_s() == pytest.approx([1e6])

    def test_validation(self):
        with pytest.raises(ValueError):
            MissionProfile(duration_s=-1.0)
        with pytest.raises(ValueError):
            MissionProfile(n_epochs=0)
        with pytest.raises(ValueError):
            MissionProfile(stress_mode="fancy")
        with pytest.raises(ValueError):
            MissionProfile(duration_s=100.0, t_first_epoch_s=200.0)
        # equality is allowed (single-epoch missions)
        MissionProfile(duration_s=100.0, n_epochs=1, t_first_epoch_s=100.0)


def iout_metric(fixture):
    return -dc_operating_point(fixture.circuit).source_current("vout")


class TestReliabilitySimulatorDc:
    def test_monotone_degradation(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging),
                                        HciModel(tech65.aging)])
        report = sim.run(MissionProfile(n_epochs=6),
                         metrics={"iout": iout_metric})
        dvt = report.device_delta_vt_v["m2"]
        assert np.all(np.diff(dvt) >= -1e-15)
        assert dvt[0] == 0.0

    def test_metrics_recorded_at_every_epoch(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [HciModel(tech65.aging)])
        report = sim.run(MissionProfile(n_epochs=5),
                         metrics={"iout": iout_metric})
        assert len(report.times_s) == 6  # fresh + 5 epochs
        assert len(report.metric("iout")) == 6

    def test_nmos_only_circuit_skips_nbti(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
        report = sim.run(MissionProfile(n_epochs=4),
                         metrics={"iout": iout_metric})
        assert report.metric("iout")[-1] == pytest.approx(
            report.metric("iout")[0], rel=1e-9)

    def test_ota_pmos_devices_age_under_nbti(self, tech65):
        fx = five_transistor_ota(tech65, l_m=2 * tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
        report = sim.run(MissionProfile(n_epochs=6))
        assert report.device_delta_vt_v["m3"][-1] > 1e-3
        assert report.device_delta_vt_v["m1"][-1] == 0.0  # NMOS untouched

    def test_reset_restores_fresh(self, tech65):
        fx = five_transistor_ota(tech65, l_m=2 * tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
        sim.run(MissionProfile(n_epochs=4))
        assert not fx.circuit["m3"].degradation.is_fresh()
        sim.reset()
        assert fx.circuit["m3"].degradation.is_fresh()
        assert sim.total_delta_vt("m3") == 0.0

    def test_requires_mechanisms(self, tech65):
        fx = simple_current_mirror(tech65)
        with pytest.raises(ValueError):
            ReliabilitySimulator(fx, [])

    def test_drift_helper(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        sim = ReliabilitySimulator(fx, [HciModel(tech65.aging)])
        report = sim.run(MissionProfile(n_epochs=5),
                         metrics={"iout": iout_metric})
        drift = report.drift("iout")
        expected = (report.metric("iout")[-1] - report.metric("iout")[0]) \
            / report.metric("iout")[0]
        assert drift == pytest.approx(expected)


class TestReliabilitySimulatorTransient:
    def test_ring_oscillator_slows_down(self, tech65):
        fx = ring_oscillator(tech65, n_stages=3)

        def freq(fixture):
            res = transient(fixture.circuit, t_stop=2.5e-9, dt=5e-12)
            return oscillation_frequency(res.voltage("s0"), tech65.vdd / 2)

        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging),
                                        HciModel(tech65.aging)])
        profile = MissionProfile(n_epochs=4, stress_mode="transient",
                                 transient_t_stop_s=1.2e-9,
                                 transient_dt_s=3e-12)
        report = sim.run(profile, metrics={"freq": freq})
        # Digital circuits get SLOWER with age (paper §3.2/§3.3).
        assert report.drift("freq") < -0.002
        assert report.drift("freq") > -0.5  # but not absurdly so

    def test_pmos_nbti_dominates_in_ring(self, tech65):
        fx = ring_oscillator(tech65, n_stages=3)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging),
                                        HciModel(tech65.aging)])
        profile = MissionProfile(n_epochs=4, stress_mode="transient",
                                 transient_t_stop_s=1.2e-9,
                                 transient_dt_s=3e-12)
        report = sim.run(profile)
        assert (report.device_delta_vt_v["mp_0"][-1]
                > report.device_delta_vt_v["mn_0"][-1])


class TestTimeToSpecViolation:
    def test_inf_when_always_in_spec(self):
        times = np.array([0.0, 1e3, 1e6])
        values = np.array([1.0, 1.01, 1.02])
        assert time_to_spec_violation(times, values, lower=0.5) == math.inf

    def test_zero_when_starts_violated(self):
        times = np.array([0.0, 1e3])
        values = np.array([0.1, 0.2])
        assert time_to_spec_violation(times, values, lower=0.5) == 0.0

    def test_log_interpolated_crossing(self):
        times = np.array([0.0, 1e2, 1e4])
        values = np.array([1.0, 0.9, 0.7])
        t_fail = time_to_spec_violation(times, values, lower=0.8)
        assert 1e2 < t_fail < 1e4
        # Halfway in value → halfway in log time.
        assert t_fail == pytest.approx(1e3, rel=0.05)

    def test_upper_bound_crossing(self):
        times = np.array([0.0, 1e2, 1e4])
        values = np.array([1.0, 1.5, 3.0])
        t_fail = time_to_spec_violation(times, values, upper=2.0)
        assert 1e2 < t_fail < 1e4

    def test_nan_counts_as_violation(self):
        times = np.array([0.0, 1e2, 1e4])
        values = np.array([1.0, float("nan"), 1.0])
        assert time_to_spec_violation(times, values, lower=0.5) <= 1e2

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            time_to_spec_violation(np.array([0.0, 1.0]),
                                   np.array([0.0, 1.0]))


class TestTddbSurvival:
    def test_survival_decreasing(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        op = dc_operating_point(fx.circuit)
        vgs = {m.name: m.operating_point(op.x).vgs_v
               for m in fx.circuit.mosfets}
        survival = tddb_survival_fn(fx.circuit.mosfets,
                                    TddbModel(tech65.aging), vgs)
        s = [survival(t) for t in [0.0, 1e6, 1e8, 1e10]]
        assert s[0] == 1.0
        assert all(b <= a for a, b in zip(s, s[1:]))

    def test_more_devices_lower_survival(self, tech65):
        tddb = TddbModel(tech65.aging)
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        op = dc_operating_point(fx.circuit)
        vgs = {m.name: m.operating_point(op.x).vgs_v
               for m in fx.circuit.mosfets}
        both = tddb_survival_fn(fx.circuit.mosfets, tddb, vgs)
        one = tddb_survival_fn(fx.circuit.mosfets[:1], tddb, vgs)
        t = units.years_to_seconds(10.0)
        assert both(t) <= one(t)

    def test_mission_survival_combines_risks(self, tech65):
        survival = lambda t: 0.9
        # Parametric wall before the mission end → zero survival.
        assert mission_survival_probability(1e3, survival) == 0.0
        # Wall far beyond → TDDB only.
        assert mission_survival_probability(1e12, survival) == pytest.approx(0.9)


class TestReliabilityYield:
    def test_generous_spec_full_yield(self, tech65):
        from repro.core import reliability_yield

        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)

        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        profile = MissionProfile(n_epochs=3)
        result = reliability_yield(
            fx, [HciModel(tech65.aging)], tech65, iout, profile,
            n_samples=4, lower=10e-6, seed=1)
        assert result == 1.0

    def test_wearout_kills_yield(self, tech65):
        from repro.core import reliability_yield

        # The over-driven mirror loses >20% of its output over the
        # mission (HCI on the output device) — zero end-of-life yield
        # against a tight lower bound.
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m,
                                   v_out_v=1.5 * tech65.vdd)

        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        nominal = iout(fx)
        profile = MissionProfile(n_epochs=4)
        result = reliability_yield(
            fx, [HciModel(tech65.aging)], tech65, iout, profile,
            n_samples=4, lower=0.9 * nominal, seed=1)
        assert result == 0.0


class TestMissionPhases:
    def make_profile(self, phases):
        from repro.core import MissionPhase

        return MissionProfile(n_epochs=4, phases=phases)

    def test_phase_validation(self):
        from repro.core import MissionPhase

        with pytest.raises(ValueError):
            MissionPhase(0.0, 300.0)
        with pytest.raises(ValueError):
            MissionPhase(0.5, -1.0)
        # Fractions must sum to 1.
        with pytest.raises(ValueError, match="sum to 1"):
            self.make_profile((MissionPhase(0.5, 300.0),))
        # At least one powered phase.
        with pytest.raises(ValueError, match="powered"):
            self.make_profile((MissionPhase(1.0, 300.0, powered=False),))

    def test_duty_cycling_reduces_nbti(self, tech65):
        from repro.core import MissionPhase

        def eol_dvt(phases):
            fx = five_transistor_ota(tech65, l_m=2 * tech65.lmin_m)
            sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
            report = sim.run(MissionProfile(n_epochs=4, phases=phases))
            return report.device_delta_vt_v["m3"][-1]

        continuous = eol_dvt(None)
        hot = units.celsius_to_kelvin(105.0)
        cold = units.celsius_to_kelvin(40.0)
        duty = eol_dvt((MissionPhase(0.25, hot, True),
                        MissionPhase(0.75, cold, False)))
        n = tech65.aging.nbti_time_exponent
        # Effective-time scaling: damage ≈ continuous · duty^n, further
        # trimmed by the relaxation of the recoverable component.
        assert duty < continuous
        assert duty == pytest.approx(continuous * 0.25 ** n, rel=0.15)

    def test_full_duty_matches_continuous(self, tech65):
        from repro.core import MissionPhase

        hot = units.celsius_to_kelvin(105.0)

        def eol_dvt(phases):
            fx = five_transistor_ota(tech65, l_m=2 * tech65.lmin_m)
            sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
            report = sim.run(MissionProfile(n_epochs=3, phases=phases,
                                            temperature_k=hot))
            return report.device_delta_vt_v["m3"][-1]

        continuous = eol_dvt(None)
        single_phase = eol_dvt((MissionPhase(1.0, hot, True),))
        assert single_phase == pytest.approx(continuous, rel=1e-6)
