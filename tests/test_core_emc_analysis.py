"""Unit tests for the EMC susceptibility analyzer (paper §4, Figs 3–4)."""

import math

import numpy as np
import pytest

from repro.circuits import filtered_current_reference, resistor_divider_bias
from repro.core import EmcAnalyzer
from repro.emc import add_dpi_injection


def make_analyzer(tech, filtered=True, coupling_c_f=500e-15, **kwargs):
    """Fig 3 victim with a WEAK coupling cap.

    The rectification regime of the paper requires the injected EMI
    current to stay comparable to I_REF; a full-strength 6.8 nF DPI path
    would slew the mirror instead.
    """
    fx = filtered_current_reference(tech, filtered=filtered)
    injection = add_dpi_injection(fx.circuit, fx.nodes["diode"],
                                  coupling_c_f=coupling_c_f)

    def observable(result):
        return -result.source_current("vout")

    defaults = dict(n_periods=20.0, samples_per_period=32, settle_periods=6.0)
    defaults.update(kwargs)
    return EmcAnalyzer(fx.circuit, injection, observable, **defaults), fx


class TestNominal:
    def test_nominal_matches_reference(self, tech90):
        analyzer, fx = make_analyzer(tech90)
        nominal = analyzer.nominal_value()
        assert nominal == pytest.approx(fx.meta["i_ref_a"], rel=0.05)

    def test_construction_validation(self, tech90):
        with pytest.raises(ValueError):
            make_analyzer(tech90, n_periods=5.0, settle_periods=6.0)
        with pytest.raises(ValueError):
            make_analyzer(tech90, samples_per_period=4)


class TestMeasurePoint:
    def test_rectification_pumps_output_down(self, tech90):
        # The Fig 4 signature: mean output current pumped LOWER.
        analyzer, _ = make_analyzer(tech90)
        nominal = analyzer.nominal_value()
        point = analyzer.measure_point(0.3, 100e6, nominal)
        assert point.shift < 0.0
        assert abs(point.relative_shift) > 0.005

    def test_shift_grows_with_amplitude(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        nominal = analyzer.nominal_value()
        small = analyzer.measure_point(0.1, 100e6, nominal)
        large = analyzer.measure_point(0.4, 100e6, nominal)
        assert abs(large.shift) > 2.0 * abs(small.shift)

    def test_filtered_worse_than_unfiltered(self, tech90):
        # The paper's headline: filtering HARMS the EMC behaviour.
        filt, _ = make_analyzer(tech90, filtered=True)
        plain, _ = make_analyzer(tech90, filtered=False)
        shift_f = filt.measure_point(0.3, 100e6, filt.nominal_value())
        shift_p = plain.measure_point(0.3, 100e6, plain.nominal_value())
        assert abs(shift_f.shift) > abs(shift_p.shift)

    def test_linear_victim_immune(self, tech90):
        fx = resistor_divider_bias(tech90)
        injection = add_dpi_injection(fx.circuit, "mid")
        analyzer = EmcAnalyzer(fx.circuit, injection,
                               lambda r: r.voltage("mid"),
                               n_periods=20, samples_per_period=32,
                               settle_periods=6)
        nominal = analyzer.nominal_value()
        point = analyzer.measure_point(0.3, 100e6, nominal)
        assert abs(point.relative_shift) < 1e-3
        assert point.ripple_peak_to_peak > 0.01

    def test_rejects_bad_frequency(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        with pytest.raises(ValueError):
            analyzer.measure_point(0.1, -1.0, 1.0)


class TestScan:
    def test_scan_shape_and_monotonicity(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        amplitudes = [0.1, 0.3]
        frequencies = [50e6, 200e6]
        smap = analyzer.scan(amplitudes, frequencies)
        assert smap.shift.shape == (2, 2)
        assert np.all(np.isfinite(smap.shift))
        # Larger amplitude → larger |shift| at every frequency.
        assert np.all(np.abs(smap.shift[1]) > np.abs(smap.shift[0]))

    def test_relative_shift_and_worst_case(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        smap = analyzer.scan([0.1, 0.4], [100e6])
        amp, freq, shift = smap.worst_case()
        assert amp == pytest.approx(0.4)
        assert freq == pytest.approx(100e6)
        assert shift == smap.shift[1, 0]

    def test_immunity_amplitude(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        smap = analyzer.scan([0.05, 0.2, 0.4], [100e6])
        thr = smap.immunity_amplitude_v(0, tolerance_fraction=0.01)
        assert thr in (0.05, 0.2, 0.4)
        # A hopeless tolerance is never violated.
        assert smap.immunity_amplitude_v(0, tolerance_fraction=10.0) == math.inf

    def test_empty_grid_rejected(self, tech90):
        analyzer, _ = make_analyzer(tech90)
        with pytest.raises(ValueError):
            analyzer.scan([], [1e6])

    def test_injection_silenced_after_scan(self, tech90):
        from repro.circuit import DcSpec

        analyzer, fx = make_analyzer(tech90)
        analyzer.scan([0.1], [100e6])
        assert isinstance(fx.circuit["emi_v"].spec, DcSpec)
