"""Unit tests for high-sigma importance sampling."""

import math

import numpy as np
import pytest

scipy_stats = pytest.importorskip(
    "scipy.stats", reason="importance sampling needs scipy.stats")
norm = scipy_stats.norm

from repro.circuits import differential_pair, input_referred_offset_v
from repro.core import ImportanceSampler, MonteCarloYield, Specification
from repro.variability import PelgromModel


def offset_spec(limit_v):
    return Specification("offset",
                         lambda f: input_referred_offset_v(f),
                         lower=-limit_v, upper=limit_v)


@pytest.fixture(scope="module")
def pair_setup():
    from repro.technology import get_node

    tech = get_node("90nm")
    w, l = 4e-6, 0.4e-6
    fx = differential_pair(tech, w_m=w, l_m=l)
    sigma_pair = PelgromModel.for_technology(tech).sigma_delta_vt_v(w, l)
    return tech, fx, sigma_pair


class TestProbeDirection:
    def test_direction_is_unit_norm(self, pair_setup):
        tech, fx, sigma = pair_setup
        sampler = ImportanceSampler(fx, offset_spec(3 * sigma), tech)
        direction = sampler.probe_direction()
        norm2 = sum(v * v for v in direction.values())
        assert norm2 == pytest.approx(1.0)

    def test_input_pair_dominates_direction(self, pair_setup):
        tech, fx, sigma = pair_setup
        sampler = ImportanceSampler(fx, offset_spec(3 * sigma), tech)
        direction = sampler.probe_direction()
        # The offset is set by the input pair; its components dominate.
        pair_mag = abs(direction["m1"]) + abs(direction["m2"])
        assert pair_mag > 0.9

    def test_pair_components_opposite_sign(self, pair_setup):
        tech, fx, sigma = pair_setup
        sampler = ImportanceSampler(fx, offset_spec(3 * sigma), tech)
        direction = sampler.probe_direction()
        assert direction["m1"] * direction["m2"] < 0.0


class TestEstimate:
    def test_matches_analytic_tail(self, pair_setup):
        """P(|offset| > k·σ_pair) ≈ 2·Φ(−k): the offset IS the pair ΔV_T."""
        tech, fx, sigma = pair_setup
        k = 3.0
        spec = offset_spec(k * sigma)
        sampler = ImportanceSampler(fx, spec, tech)
        result = sampler.estimate(n_samples=400, shift_sigma=k, seed=7)
        analytic = 2.0 * norm.sf(k)
        assert result.failure_probability == pytest.approx(analytic, rel=0.5)
        assert result.n_failures_observed > 50  # shifted sampling works

    def test_beats_plain_mc_at_same_budget(self, pair_setup):
        """At 4σ, 200 plain MC samples see ~0 failures; IS resolves it."""
        tech, fx, sigma = pair_setup
        k = 4.0
        spec = offset_spec(k * sigma)
        mc = MonteCarloYield(fx, [spec], tech).run(n_samples=200, seed=3)
        assert mc.yield_fraction == 1.0  # plain MC is blind here
        sampler = ImportanceSampler(fx, spec, tech)
        result = sampler.estimate(n_samples=300, shift_sigma=k, seed=3)
        analytic = 2.0 * norm.sf(k)
        assert result.failure_probability > 0.0
        assert result.failure_probability == pytest.approx(analytic, rel=0.7)
        assert 3.5 < result.sigma_level < 4.5

    def test_zero_shift_degenerates_to_plain_mc(self, pair_setup):
        tech, fx, sigma = pair_setup
        spec = offset_spec(5 * sigma)
        sampler = ImportanceSampler(fx, spec, tech)
        result = sampler.estimate(n_samples=100, shift_sigma=0.0, seed=1)
        # All weights are exactly 1 under zero shift.
        assert result.effective_samples == pytest.approx(100.0)
        assert result.failure_probability == 0.0  # too rare for plain MC

    def test_variations_cleared_after_run(self, pair_setup):
        tech, fx, sigma = pair_setup
        sampler = ImportanceSampler(fx, offset_spec(3 * sigma), tech)
        sampler.estimate(n_samples=20, shift_sigma=3.0, seed=0)
        assert all(m.variation.delta_vt_v == 0.0 for m in fx.circuit.mosfets)

    def test_input_validation(self, pair_setup):
        tech, fx, sigma = pair_setup
        sampler = ImportanceSampler(fx, offset_spec(3 * sigma), tech)
        with pytest.raises(ValueError):
            sampler.estimate(n_samples=0, shift_sigma=3.0)
        with pytest.raises(ValueError):
            sampler.estimate(n_samples=10, shift_sigma=-1.0)
