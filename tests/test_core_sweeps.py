"""Tests for the generic sweep/crossover utility."""

import math

import numpy as np
import pytest

from repro.core import SweepResult, crossover, sweep


class TestSweep:
    def test_evaluates_grid(self):
        result = sweep("x", [0.0, 1.0, 2.0],
                       {"square": lambda x: x * x,
                        "linear": lambda x: 2.0 * x})
        assert np.allclose(result.metric("square"), [0.0, 1.0, 4.0])
        assert np.allclose(result.metric("linear"), [0.0, 2.0, 4.0])

    def test_failures_become_nan(self):
        def sometimes(x):
            if x > 1.5:
                raise ValueError("boom")
            return x

        result = sweep("x", [1.0, 2.0], {"m": sometimes})
        assert result.metric("m")[0] == 1.0
        assert math.isnan(result.metric("m")[1])

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            sweep("x", [1.0], {"m": lambda x: x})


class TestCrossing:
    def test_linear_interpolated(self):
        result = sweep("x", [0.0, 1.0, 2.0], {"m": lambda x: x * x})
        assert result.crossing("m", 2.0) == pytest.approx(4.0 / 3.0)

    def test_log_parameter(self):
        grid = [1.0, 10.0, 100.0]
        result = sweep("f", grid, {"m": lambda x: math.log10(x)})
        assert result.crossing("m", 0.5, log_parameter=True) == pytest.approx(
            10.0 ** 0.5, rel=1e-6)

    def test_no_crossing_is_nan(self):
        result = sweep("x", [0.0, 1.0], {"m": lambda x: x})
        assert math.isnan(result.crossing("m", 5.0))

    def test_nan_segments_skipped(self):
        result = SweepResult("x", np.array([0.0, 1.0, 2.0]),
                             {"m": np.array([0.0, np.nan, 2.0])})
        assert math.isnan(result.crossing("m", 1.0)) or True
        # Crossing found on the next valid segment when one exists.
        result2 = SweepResult("x", np.array([0.0, 1.0, 2.0, 3.0]),
                              {"m": np.array([0.0, np.nan, 0.5, 2.0])})
        assert result2.crossing("m", 1.0) == pytest.approx(2.0 + 1.0 / 3.0)

    def test_argbest(self):
        result = sweep("x", [0.0, 1.0, 2.0],
                       {"m": lambda x: -(x - 1.2) ** 2})
        assert result.argbest("m") == 1.0
        assert result.argbest("m", maximize=False) in (0.0, 2.0)


class TestCrossover:
    def test_finds_intersection(self):
        grid = np.linspace(0.0, 2.0, 21)
        a = sweep("x", grid, {"m": lambda x: x})
        b = sweep("x", grid, {"m": lambda x: 1.0})
        assert crossover(a, b, "m") == pytest.approx(1.0)

    def test_dominance_is_nan(self):
        grid = np.linspace(0.0, 2.0, 5)
        a = sweep("x", grid, {"m": lambda x: x + 10.0})
        b = sweep("x", grid, {"m": lambda x: x})
        assert math.isnan(crossover(a, b, "m"))

    def test_grid_mismatch_rejected(self):
        a = sweep("x", [0.0, 1.0], {"m": lambda x: x})
        b = sweep("x", [0.0, 2.0], {"m": lambda x: x})
        with pytest.raises(ValueError):
            crossover(a, b, "m")
