"""Unit tests for the Monte-Carlo yield engine (paper §2)."""

import numpy as np
import pytest

from repro.circuit import dc_operating_point
from repro.circuits import (
    differential_pair,
    input_referred_offset_v,
    simple_current_mirror,
)
from repro.core import MonteCarloYield, Specification, wilson_interval
from repro.variability import MismatchSampler, PelgromModel


class TestSpecification:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError, match="no bounds"):
            Specification("s", lambda f: 0.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Specification("s", lambda f: 0.0, lower=1.0, upper=0.0)

    def test_pass_logic(self):
        spec = Specification("s", lambda f: 0.0, lower=-1.0, upper=1.0)
        assert spec.passes(0.0)
        assert spec.passes(-1.0)
        assert not spec.passes(-1.1)
        assert not spec.passes(2.0)
        assert not spec.passes(float("nan"))
        assert not spec.passes(float("inf"))

    def test_one_sided(self):
        spec = Specification("s", lambda f: 0.0, upper=10.0)
        assert spec.passes(-1e9)
        assert not spec.passes(11.0)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(90, 100)
        assert lo < 0.9 < hi

    def test_narrows_with_samples(self):
        lo1, hi1 = wilson_interval(9, 10)
        lo2, hi2 = wilson_interval(900, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_bounds_clamped(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == 0.0
        lo, hi = wilson_interval(10, 10)
        assert hi == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


def offset_spec(limit_v):
    return Specification(
        "offset", lambda fx: input_referred_offset_v(fx),
        lower=-limit_v, upper=limit_v)


class TestMonteCarloYield:
    def test_generous_spec_full_yield(self, tech90):
        fx = differential_pair(tech90, w_m=20e-6, l_m=2e-6)
        mc = MonteCarloYield(fx, [offset_spec(0.1)], tech90)
        result = mc.run(n_samples=25, seed=0)
        assert result.yield_fraction == 1.0

    def test_tight_spec_partial_yield(self, tech90):
        fx = differential_pair(tech90, w_m=2e-6, l_m=0.2e-6)
        pm = PelgromModel.for_technology(tech90)
        sigma_off = pm.sigma_delta_vt_v(2e-6, 0.2e-6)
        # A ±0.5σ window should reject a large fraction.
        mc = MonteCarloYield(fx, [offset_spec(0.5 * sigma_off)], tech90)
        result = mc.run(n_samples=60, seed=1)
        assert 0.1 < result.yield_fraction < 0.8

    def test_sigma_matches_pelgrom_prediction(self, tech90):
        # The MC offset sigma of a diff pair should track the Eq 1 pair
        # sigma of the input devices.
        w, l = 4e-6, 0.4e-6
        fx = differential_pair(tech90, w_m=w, l_m=l)
        mc = MonteCarloYield(fx, [offset_spec(1.0)], tech90)
        result = mc.run(n_samples=150, seed=2)
        pm = PelgromModel.for_technology(tech90)
        expected = pm.sigma_delta_vt_v(w, l)
        assert result.sigma("offset") == pytest.approx(expected, rel=0.25)

    def test_bigger_devices_yield_better(self, tech90):
        small = differential_pair(tech90, w_m=2e-6, l_m=0.2e-6)
        big = differential_pair(tech90, w_m=20e-6, l_m=2e-6)
        spec = offset_spec(4e-3)
        y_small = MonteCarloYield(small, [spec], tech90).run(50, seed=3)
        y_big = MonteCarloYield(big, [spec], tech90).run(50, seed=3)
        assert y_big.yield_fraction > y_small.yield_fraction

    def test_variations_cleared_after_run(self, tech90):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec(0.1)], tech90)
        mc.run(n_samples=5, seed=0)
        assert all(m.variation.delta_vt_v == 0.0 for m in fx.circuit.mosfets)

    def test_reproducible_with_seed(self, tech90):
        fx = differential_pair(tech90, w_m=2e-6, l_m=0.2e-6)
        mc = MonteCarloYield(fx, [offset_spec(5e-3)], tech90)
        r1 = mc.run(n_samples=30, seed=42)
        r2 = mc.run(n_samples=30, seed=42)
        assert np.array_equal(r1.values["offset"], r2.values["offset"])

    def test_failed_evaluation_counts_as_fail(self, tech90):
        fx = differential_pair(tech90)

        def explosive(fixture):
            raise ValueError("synthetic evaluation failure")

        spec = Specification("boom", explosive, lower=0.0)
        mc = MonteCarloYield(fx, [spec], tech90)
        result = mc.run(n_samples=5, seed=0)
        assert result.yield_fraction == 0.0
        assert np.all(np.isnan(result.values["boom"]))

    def test_multiple_specs_all_must_pass(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)

        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        gen = Specification("iout_loose", iout, lower=50e-6, upper=200e-6)
        tight = Specification("iout_tight", iout, lower=99.9e-6, upper=100.1e-6)
        mc = MonteCarloYield(fx, [gen, tight], tech90)
        result = mc.run(n_samples=40, seed=5)
        assert result.spec_yield("iout_loose") >= result.spec_yield("iout_tight")
        assert result.yield_fraction <= result.spec_yield("iout_loose")

    def test_duplicate_spec_names_rejected(self, tech90):
        fx = differential_pair(tech90)
        with pytest.raises(ValueError, match="duplicate"):
            MonteCarloYield(fx, [offset_spec(1.0), offset_spec(2.0)], tech90)

    def test_requires_specs(self, tech90):
        fx = differential_pair(tech90)
        with pytest.raises(ValueError):
            MonteCarloYield(fx, [], tech90)

    def test_rejects_bad_sample_count(self, tech90):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec(1.0)], tech90)
        with pytest.raises(ValueError):
            mc.run(n_samples=0)
