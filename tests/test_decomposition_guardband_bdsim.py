"""Tests for A_VT decomposition, guardband stack-up, and the
event-driven breakdown circuit simulator."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import HciModel, NbtiModel, TddbModel
from repro.circuit import DcSpec, dc_operating_point
from repro.circuits import is_bistable, simple_current_mirror, sram_cell
from repro.core import (
    BreakdownSimulator,
    GuardbandReport,
    MissionProfile,
    guardband_analysis,
)
from repro.technology import get_node, scaling_trend
from repro.variability import (
    decompose_avt,
    ler_component_mv_um,
    oxide_component_mv_um,
    rdf_component_mv_um,
)


class TestAvtDecomposition:
    def test_components_rss_to_total(self, tech90):
        d = decompose_avt(tech90)
        assert d.total_mv_um == pytest.approx(
            math.sqrt(d.oxide_mv_um ** 2 + d.rdf_mv_um ** 2
                      + d.ler_mv_um ** 2))

    def test_total_tracks_library_avt(self):
        for tech in scaling_trend():
            d = decompose_avt(tech)
            assert d.total_mv_um == pytest.approx(
                tech.mismatch.a_vt_mv_um, rel=0.10)

    def test_oxide_component_is_tuinhout_line(self, tech90):
        assert oxide_component_mv_um(tech90) == pytest.approx(
            0.95 * tech90.tox_nm)

    def test_floor_fraction_grows_with_scaling(self):
        fractions = [decompose_avt(t).floor_fraction
                     for t in scaling_trend()]
        assert all(b > a for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] < 0.35
        assert fractions[-1] > 0.7

    def test_rdf_does_not_track_oxide(self):
        """RDF falls far slower than t_ox — the physical Fig 1 story."""
        old = get_node("350nm")
        new = get_node("32nm")
        tox_ratio = old.tox_nm / new.tox_nm
        rdf_ratio = rdf_component_mv_um(old) / rdf_component_mv_um(new)
        assert rdf_ratio < 0.5 * tox_ratio

    def test_ler_component_grows_absolutely(self):
        lers = [ler_component_mv_um(t) for t in scaling_trend()]
        assert lers[-1] > 2.0 * lers[0]


class TestGuardband:
    def iout(self, fixture):
        return -dc_operating_point(fixture.circuit).source_current("vout")

    def test_variability_term_scales_with_sigma_level(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        g3 = guardband_analysis(fx, self.iout, tech65, n_mc_samples=30,
                                sigma_level=3.0, seed=1)
        g6 = guardband_analysis(fx, self.iout, tech65, n_mc_samples=30,
                                sigma_level=6.0, seed=1)
        assert g6.variability_fraction == pytest.approx(
            2.0 * g3.variability_fraction, rel=1e-6)

    def test_aging_term_positive_for_wearout(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m,
                                   v_out_v=1.4 * tech65.vdd)
        report = guardband_analysis(
            fx, self.iout, tech65,
            mechanisms=[HciModel(tech65.aging)],
            profile=MissionProfile(n_epochs=4),
            n_mc_samples=10, seed=2)
        assert report.aging_fraction > 0.01
        assert report.total_fraction > report.variability_fraction

    def test_corner_term_takes_worst(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        report = guardband_analysis(fx, self.iout, tech65,
                                    corner_fractions=[0.02, 0.07, -0.01],
                                    n_mc_samples=10, seed=3)
        assert report.corner_fraction == pytest.approx(0.07)

    def test_design_target_exceeds_nominal(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        report = guardband_analysis(fx, self.iout, tech65,
                                    n_mc_samples=20, seed=4)
        assert report.design_target > report.nominal
        assert report.total_fraction < 0.5  # sane for this circuit

    def test_guardband_grows_with_scaling(self):
        """The §5 motivation: fixed-design margins explode with scaling."""
        fractions = {}
        for name in ("180nm", "45nm"):
            tech = get_node(name)
            fx = simple_current_mirror(tech, w_m=4 * tech.wmin_m,
                                       l_m=tech.lmin_m)
            report = guardband_analysis(fx, self.iout, tech,
                                        n_mc_samples=40, seed=5)
            fractions[name] = report.variability_fraction
        assert fractions["45nm"] > fractions["180nm"]

    def test_validation(self, tech65):
        fx = simple_current_mirror(tech65)
        with pytest.raises(ValueError):
            guardband_analysis(fx, self.iout, tech65, n_mc_samples=1)
        with pytest.raises(ValueError):
            guardband_analysis(fx, self.iout, tech65, sigma_level=0.0)


class TestBreakdownSimulator:
    def overstressed_cell(self, tech, factor=1.7):
        fx = sram_cell(tech)
        for name in ("vdd", "vbl", "vblb"):
            fx.circuit[name].spec = DcSpec(factor * tech.vdd)
        return fx

    def test_nominal_stress_rarely_breaks(self, tech65):
        fx = sram_cell(tech65)
        sim = BreakdownSimulator(fx, TddbModel(tech65.aging),
                                 functional=is_bistable)
        result = sim.run(n_samples=10,
                         horizon_s=units.years_to_seconds(10.0), seed=1)
        # A single tiny cell at nominal field: breakdowns are rare.
        assert result.first_bd_fraction(
            units.years_to_seconds(10.0)) < 0.3
        assert result.survival_fraction(
            units.years_to_seconds(10.0)) >= 0.7

    def test_overstress_breaks_oxides_but_cells_survive(self, tech65):
        """Ref [20] quantified: most dies break an oxide, few circuits die."""
        fx = self.overstressed_cell(tech65)
        sim = BreakdownSimulator(
            fx, TddbModel(tech65.aging), functional=is_bistable,
            temperature_k=units.celsius_to_kelvin(125.0))
        horizon = units.years_to_seconds(1.0)
        result = sim.run(n_samples=20, horizon_s=horizon, seed=2)
        assert result.first_bd_fraction(horizon) > 0.7
        assert (result.survival_fraction(horizon)
                > result.first_bd_fraction(horizon) * 0.7)
        assert result.mean_breakdowns_survived() > 0.5

    def test_fixture_restored(self, tech65):
        fx = self.overstressed_cell(tech65)
        sim = BreakdownSimulator(fx, TddbModel(tech65.aging),
                                 functional=is_bistable)
        sim.run(n_samples=5, horizon_s=units.years_to_seconds(1.0), seed=3)
        assert all(m.degradation.is_fresh() for m in fx.circuit.mosfets)

    def test_default_functional_predicate(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)
        sim = BreakdownSimulator(fx, TddbModel(tech65.aging))
        result = sim.run(n_samples=5,
                         horizon_s=units.years_to_seconds(1.0), seed=4)
        assert len(result.samples) == 5

    def test_validation(self, tech65):
        fx = sram_cell(tech65)
        sim = BreakdownSimulator(fx, TddbModel(tech65.aging))
        with pytest.raises(ValueError):
            sim.run(n_samples=0, horizon_s=1.0)
        with pytest.raises(ValueError):
            sim.run(n_samples=1, horizon_s=-1.0)
