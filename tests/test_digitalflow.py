"""Tests for cell characterization and STA-lite."""

import numpy as np
import pytest

from repro.circuit import DeviceDegradation, DeviceVariation, Waveform
from repro.circuits import inverter
from repro.digitalflow import (
    DelayTable,
    TimingGraph,
    characterize_cell,
    measure_edge,
    path_derate,
)

SLEWS = [20e-12, 80e-12]
LOADS = [1e-15, 6e-15]


@pytest.fixture(scope="module")
def inv_table(tech90):
    fx = inverter(tech90, load_c_f=2e-15)
    return characterize_cell(fx, tech90, SLEWS, LOADS)


class TestMeasureEdge:
    def test_rising_edge(self):
        t = np.linspace(0.0, 1e-9, 1001)
        v = np.clip((t - 0.2e-9) / 0.4e-9, 0.0, 1.0)  # 0→1 ramp
        t50, trans = measure_edge(Waveform(t, v), vdd=1.0, rising=True)
        assert t50 == pytest.approx(0.4e-9, rel=0.01)
        assert trans == pytest.approx(0.8 * 0.4e-9, rel=0.01)

    def test_falling_edge(self):
        t = np.linspace(0.0, 1e-9, 1001)
        v = 1.0 - np.clip((t - 0.2e-9) / 0.4e-9, 0.0, 1.0)
        t50, trans = measure_edge(Waveform(t, v), vdd=1.0, rising=False)
        assert t50 == pytest.approx(0.4e-9, rel=0.01)
        assert trans > 0.0

    def test_missing_edge_raises(self):
        t = np.linspace(0.0, 1e-9, 101)
        w = Waveform(t, np.zeros(101))
        with pytest.raises(ValueError, match="crossing"):
            measure_edge(w, vdd=1.0, rising=True)


class TestCharacterization:
    def test_delay_grows_with_load_and_slew(self, inv_table):
        d = inv_table.delay_s
        assert np.all(np.diff(d, axis=1) > 0.0)  # more load → slower
        assert np.all(np.diff(d, axis=0) > 0.0)  # slower input → slower

    def test_transition_grows_with_load(self, inv_table):
        assert np.all(np.diff(inv_table.transition_s, axis=1) > 0.0)

    def test_magnitudes_sane(self, inv_table):
        assert np.all(inv_table.delay_s > 1e-13)
        assert np.all(inv_table.delay_s < 1e-9)
        assert 0.1e-15 < inv_table.input_cap_f < 20e-15

    def test_lookup_interpolates_and_clamps(self, inv_table):
        d_corner, _ = inv_table.lookup(SLEWS[0], LOADS[0])
        assert d_corner == pytest.approx(inv_table.delay_s[0, 0])
        d_mid, _ = inv_table.lookup(np.mean(SLEWS), np.mean(LOADS))
        assert inv_table.delay_s.min() < d_mid < inv_table.delay_s.max()
        d_out, _ = inv_table.lookup(10 * SLEWS[-1], 10 * LOADS[-1])
        assert d_out == pytest.approx(inv_table.delay_s[-1, -1])

    def test_fixture_restored(self, tech90):
        fx = inverter(tech90, load_c_f=2e-15)
        original_spec = fx.circuit["vin"].spec
        characterize_cell(fx, tech90, SLEWS, LOADS)
        assert fx.circuit["vin"].spec is original_spec
        assert fx.circuit["cload"].capacitance == pytest.approx(2e-15)

    def test_nbti_slows_rising_arc(self, tech90):
        fx = inverter(tech90, load_c_f=2e-15)
        fresh = characterize_cell(fx, tech90, SLEWS, LOADS,
                                  rising_input=False)
        fx.circuit["mp_inv"].degradation = DeviceDegradation(
            delta_vt_v=0.05, beta_factor=0.95)
        aged = characterize_cell(fx, tech90, SLEWS, LOADS,
                                 rising_input=False)
        assert np.all(aged.delay_s > 1.05 * fresh.delay_s)

    def test_variation_shifts_delay(self, tech90):
        fx = inverter(tech90, load_c_f=2e-15)
        nominal = characterize_cell(fx, tech90, SLEWS, LOADS)
        fx.circuit["mn_inv"].variation = DeviceVariation(delta_vt_v=0.06)
        slow = characterize_cell(fx, tech90, SLEWS, LOADS)
        assert np.all(slow.delay_s > nominal.delay_s)

    def test_grid_validation(self, tech90):
        fx = inverter(tech90)
        with pytest.raises(ValueError, match="2x2"):
            characterize_cell(fx, tech90, [20e-12], LOADS)

    def test_scaled_derating(self, inv_table):
        derated = inv_table.scaled(1.2)
        assert np.allclose(derated.delay_s, 1.2 * inv_table.delay_s)
        with pytest.raises(ValueError):
            inv_table.scaled(0.0)


class TestTimingGraph:
    def chain(self, table, n=4):
        g = TimingGraph()
        g.add_input("a", slew_s=30e-12)
        prev = "a"
        for k in range(n):
            g.add_cell(f"inv{k}", table, inputs=[prev], output=f"n{k}")
            prev = f"n{k}"
        g.add_output(prev, load_f=4e-15)
        return g

    def test_chain_delay_adds_up(self, inv_table):
        g2 = self.chain(inv_table, n=2)
        g4 = self.chain(inv_table, n=4)
        d2, _ = g2.critical_path()
        d4, _ = g4.critical_path()
        assert d4 > 1.7 * d2

    def test_critical_path_lists_all_stages(self, inv_table):
        g = self.chain(inv_table, n=3)
        delay, path = g.critical_path()
        assert [p for p in path if p.startswith("inv")] == [
            "inv0", "inv1", "inv2"]
        assert path[0] == "a"
        assert delay > 0.0

    def test_reconvergent_paths_take_worst(self, inv_table):
        g = TimingGraph()
        g.add_input("a", slew_s=30e-12)
        # Short branch: one inverter; long branch: three.
        g.add_cell("s0", inv_table, inputs=["a"], output="mid_s")
        g.add_cell("l0", inv_table, inputs=["a"], output="p1")
        g.add_cell("l1", inv_table, inputs=["p1"], output="p2")
        g.add_cell("l2", inv_table, inputs=["p2"], output="mid_l")
        g.add_cell("join", inv_table, inputs=["mid_s", "mid_l"],
                   output="y")
        g.add_output("y")
        delay, path = g.critical_path()
        assert "l1" in path  # the long branch dominates
        assert "s0" not in path

    def test_fanout_loading_slows_driver(self, inv_table):
        light = TimingGraph()
        light.add_input("a", slew_s=30e-12)
        light.add_cell("drv", inv_table, inputs=["a"], output="n")
        light.add_cell("rx0", inv_table, inputs=["n"], output="y0")
        light.add_output("y0", load_f=1e-15)
        heavy = TimingGraph()
        heavy.add_input("a", slew_s=30e-12)
        heavy.add_cell("drv", inv_table, inputs=["a"], output="n")
        for k in range(4):
            heavy.add_cell(f"rx{k}", inv_table, inputs=["n"],
                           output=f"y{k}")
            heavy.add_output(f"y{k}", load_f=1e-15)
        arr_light = light.propagate()["n"]
        arr_heavy = heavy.propagate()["n"]
        assert arr_heavy.time_s > arr_light.time_s

    def test_table_substitution_derates(self, inv_table):
        g = self.chain(inv_table, n=3)
        slow_table = inv_table.scaled(1.3)
        slow = g.with_tables({f"inv{k}": slow_table for k in range(3)})
        assert path_derate(g, slow) == pytest.approx(1.3, rel=0.01)

    def test_undriven_input_rejected(self, inv_table):
        g = TimingGraph()
        g.add_cell("inv0", inv_table, inputs=["floating"], output="y")
        g.add_output("y")
        with pytest.raises(ValueError, match="undriven"):
            g.propagate()

    def test_loop_rejected(self, inv_table):
        g = TimingGraph()
        g.add_input("a")
        g.add_cell("i0", inv_table, inputs=["a", "y"], output="x")
        g.add_cell("i1", inv_table, inputs=["x"], output="y")
        g.add_output("y")
        with pytest.raises(ValueError, match="loop"):
            g.propagate()

    def test_duplicate_cell_rejected(self, inv_table):
        g = TimingGraph()
        g.add_input("a")
        g.add_cell("i0", inv_table, inputs=["a"], output="x")
        with pytest.raises(ValueError, match="duplicate"):
            g.add_cell("i0", inv_table, inputs=["x"], output="y")

    def test_unknown_substitution_rejected(self, inv_table):
        g = self.chain(inv_table, n=2)
        with pytest.raises(ValueError, match="unknown cells"):
            g.with_tables({"nope": inv_table})


class TestLibraryCharacterization:
    @pytest.fixture(scope="class")
    def lib(self, tech90):
        from repro.digitalflow import characterize_library

        return characterize_library(tech90, slews_s=(20e-12, 80e-12),
                                    loads_f=(1e-15, 6e-15))

    def test_all_cells_present(self, lib):
        assert set(lib) == {"inv", "nand2", "nor2"}

    def test_tables_sane(self, lib):
        for name, table in lib.items():
            assert np.all(table.delay_s > 0.0)
            assert np.all(table.transition_s > 0.0)
            assert table.input_cap_f > 0.0

    def test_multi_input_gates_load_more(self, lib):
        # NAND/NOR present 2 gate inputs worth of capacitance paths and
        # stacked devices: bigger input cap than the inverter.
        assert lib["nand2"].input_cap_f > lib["inv"].input_cap_f

    def test_prepare_hook_applies(self, tech90):
        from repro.circuit import DeviceDegradation
        from repro.digitalflow import characterize_library

        def cripple(fixture):
            for device in fixture.circuit.mosfets:
                device.degradation = DeviceDegradation(beta_factor=0.5)

        fresh = characterize_library(tech90, slews_s=(20e-12, 80e-12),
                                     loads_f=(1e-15, 6e-15),
                                     worst_arc=False)
        slow = characterize_library(tech90, slews_s=(20e-12, 80e-12),
                                    loads_f=(1e-15, 6e-15),
                                    prepare=cripple, worst_arc=False)
        for name in fresh:
            assert np.all(slow[name].delay_s > fresh[name].delay_s)

    def test_worst_arc_dominates_single_arc(self, tech90):
        from repro.digitalflow import characterize_library

        worst = characterize_library(tech90, slews_s=(20e-12, 80e-12),
                                     loads_f=(1e-15, 6e-15),
                                     worst_arc=True)
        single = characterize_library(tech90, slews_s=(20e-12, 80e-12),
                                      loads_f=(1e-15, 6e-15),
                                      worst_arc=False)
        for name in worst:
            assert np.all(worst[name].delay_s
                          >= single[name].delay_s - 1e-15)

    def test_mixed_gate_netlist_times(self, lib):
        g = TimingGraph()
        g.add_input("a", slew_s=40e-12)
        g.add_input("b", slew_s=40e-12)
        g.add_cell("n1", lib["nand2"], inputs=["a", "b"], output="x")
        g.add_cell("n2", lib["nor2"], inputs=["x", "b"], output="y")
        g.add_cell("n3", lib["inv"], inputs=["y"], output="z")
        g.add_output("z", load_f=4e-15)
        delay, path = g.critical_path()
        assert delay > 0.0
        assert path[-1] == "z"
