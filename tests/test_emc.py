"""Unit tests for the EMC package (paper §4)."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, DcSpec, SineSpec, Waveform, dc_operating_point, transient
from repro.emc import (
    DPI_IMPEDANCE_OHM,
    IEC_FREQ_MAX_HZ,
    IEC_FREQ_MIN_HZ,
    add_dpi_injection,
    amplitude_v_to_dbm,
    dbm_to_amplitude_v,
    iec_frequency_range,
    immunity_test_frequencies,
    in_regulated_band,
    measure_dc_shift,
    superimpose_on_source,
)


class TestStandards:
    def test_band_edges(self):
        lo, hi = iec_frequency_range()
        assert lo == pytest.approx(150e3)
        assert hi == pytest.approx(1e9)

    def test_in_band_check(self):
        assert in_regulated_band(1e6)
        assert not in_regulated_band(1e3)
        assert not in_regulated_band(10e9)
        with pytest.raises(ValueError):
            in_regulated_band(0.0)

    def test_test_grid_spans_band(self):
        freqs = immunity_test_frequencies(points_per_decade=4)
        assert freqs[0] == pytest.approx(IEC_FREQ_MIN_HZ)
        assert freqs[-1] == pytest.approx(IEC_FREQ_MAX_HZ)
        assert np.all(np.diff(freqs) > 0)

    def test_dbm_conversion_roundtrip(self):
        amp = dbm_to_amplitude_v(10.0)
        assert amplitude_v_to_dbm(amp) == pytest.approx(10.0)

    def test_0dbm_amplitude(self):
        # 0 dBm into 50 Ω: V_peak = sqrt(2·50·1 mW) ≈ 0.316 V.
        assert dbm_to_amplitude_v(0.0) == pytest.approx(0.3162, rel=1e-3)

    def test_conversion_input_validation(self):
        with pytest.raises(ValueError):
            dbm_to_amplitude_v(0.0, impedance_ohm=0.0)
        with pytest.raises(ValueError):
            amplitude_v_to_dbm(-1.0)


def divider_circuit():
    ckt = Circuit("divider")
    ckt.voltage_source("vdd", "vdd", "0", 1.2)
    ckt.resistor("r1", "vdd", "mid", 50e3)
    ckt.resistor("r2", "mid", "0", 50e3)
    return ckt


class TestDpiInjection:
    def test_network_elements_added(self):
        ckt = divider_circuit()
        add_dpi_injection(ckt, "mid")
        assert "emi_v" in ckt
        assert "emi_r" in ckt
        assert "emi_c" in ckt
        assert ckt["emi_r"].resistance == pytest.approx(DPI_IMPEDANCE_OHM)

    def test_silent_injection_does_not_move_bias(self):
        ckt = divider_circuit()
        nominal = dc_operating_point(ckt).voltage("mid")
        inj = add_dpi_injection(ckt, "mid")
        inj.silence()
        assert dc_operating_point(ckt).voltage("mid") == pytest.approx(
            nominal, abs=1e-6)

    def test_tone_reaches_victim_at_high_frequency(self):
        ckt = divider_circuit()
        inj = add_dpi_injection(ckt, "mid")
        inj.set_tone(0.5, 10e6)
        res = transient(ckt, t_stop=1e-6, dt=1e-9)
        ripple = res.voltage("mid").last_period(0.3e-6).peak_to_peak()
        assert ripple > 0.3  # most of the 1 Vpp arrives

    def test_blocking_cap_protects_low_frequency(self):
        ckt = divider_circuit()
        inj = add_dpi_injection(ckt, "mid", coupling_c_f=1e-12)
        inj.set_tone(0.5, 100e3)
        res = transient(ckt, t_stop=40e-6, dt=50e-9)
        ripple = res.voltage("mid").last_period(10e-6).peak_to_peak()
        assert ripple < 0.05

    def test_set_tone_zero_amplitude_silences(self):
        ckt = divider_circuit()
        inj = add_dpi_injection(ckt, "mid")
        inj.set_tone(0.0, 1e6)
        assert isinstance(ckt["emi_v"].spec, DcSpec)

    def test_rejects_negative_amplitude(self):
        ckt = divider_circuit()
        inj = add_dpi_injection(ckt, "mid")
        with pytest.raises(ValueError):
            inj.set_tone(-0.1, 1e6)

    def test_context_manager_silences(self):
        ckt = divider_circuit()
        with add_dpi_injection(ckt, "mid") as inj:
            inj.set_tone(0.5, 1e6)
        assert isinstance(ckt["emi_v"].spec, DcSpec)


class TestSuperimpose:
    def test_rides_on_dc_value(self):
        ckt = divider_circuit()
        inj = superimpose_on_source(ckt, "vdd")
        inj.set_tone(0.2, 1e6)
        spec = ckt["vdd"].spec
        assert isinstance(spec, SineSpec)
        assert spec.offset == pytest.approx(1.2)
        assert spec.amplitude == pytest.approx(0.2)

    def test_remove_restores_original(self):
        ckt = divider_circuit()
        original = ckt["vdd"].spec
        with superimpose_on_source(ckt, "vdd") as inj:
            inj.set_tone(0.2, 1e6)
        assert ckt["vdd"].spec is original

    def test_type_check(self):
        ckt = divider_circuit()
        with pytest.raises(TypeError):
            superimpose_on_source(ckt, "r1")


class TestDcShift:
    def test_linear_circuit_no_rectification(self):
        # A resistive divider must show ripple but ~zero DC shift.
        ckt = divider_circuit()
        inj = add_dpi_injection(ckt, "mid")
        nominal = dc_operating_point(ckt).voltage("mid")
        inj.set_tone(0.3, 10e6)
        res = transient(ckt, t_stop=3e-6, dt=2e-9)
        shift = measure_dc_shift(res.voltage("mid"), nominal,
                                 settle_periods=10, tone_period_s=1e-7)
        assert shift.ripple_peak_to_peak > 0.1
        assert abs(shift.shift) < 0.01 * shift.ripple_peak_to_peak

    def test_shift_properties(self):
        w = Waveform(np.linspace(0, 1, 101), np.full(101, 0.9))
        shift = measure_dc_shift(w, nominal=1.0, settle_periods=2,
                                 tone_period_s=0.1)
        assert shift.shift == pytest.approx(-0.1)
        assert shift.relative_shift == pytest.approx(-0.1)
        assert shift.exceeds(0.05)
        assert not shift.exceeds(0.2)

    def test_zero_nominal_guard(self):
        w = Waveform(np.linspace(0, 1, 11), np.full(11, 0.5))
        shift = measure_dc_shift(w, nominal=0.0, settle_periods=1,
                                 tone_period_s=0.1)
        with pytest.raises(ZeroDivisionError):
            _ = shift.relative_shift

    def test_input_validation(self):
        w = Waveform(np.linspace(0, 1, 11), np.zeros(11))
        with pytest.raises(ValueError):
            measure_dc_shift(w, 0.0, settle_periods=0.0, tone_period_s=0.1)
        with pytest.raises(ValueError):
            measure_dc_shift(w, 0.0, settle_periods=1.0, tone_period_s=-0.1)
