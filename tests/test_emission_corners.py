"""Tests for conducted-emission estimation and PVT corner analysis."""

import math

import numpy as np
import pytest

from repro.circuit import dc_operating_point, transient
from repro.circuits import ring_oscillator, simple_current_mirror
from repro.core import CornerAnalysis, Specification
from repro.emc import (
    AUTOMOTIVE_MASK,
    EmissionMask,
    amps_to_dbua,
    check_emissions,
    supply_current_spectrum,
    worst_emission_margin_db,
)


class TestEmissionMask:
    def test_interpolates_in_log_f(self):
        mask = EmissionMask(points=((1e6, 80.0), (100e6, 60.0)))
        assert mask.limit_dbua(1e6) == pytest.approx(80.0)
        assert mask.limit_dbua(100e6) == pytest.approx(60.0)
        assert mask.limit_dbua(10e6) == pytest.approx(70.0)

    def test_clamps_outside(self):
        mask = EmissionMask(points=((1e6, 80.0), (100e6, 60.0)))
        assert mask.limit_dbua(1e3) == pytest.approx(80.0)
        assert mask.limit_dbua(1e9) == pytest.approx(60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmissionMask(points=((1e6, 80.0),))
        with pytest.raises(ValueError):
            EmissionMask(points=((1e6, 80.0), (1e6, 60.0)))
        with pytest.raises(ValueError):
            EmissionMask(points=((-1.0, 80.0), (1e6, 60.0)))

    def test_automotive_mask_tightens_with_frequency(self):
        assert (AUTOMOTIVE_MASK.limit_dbua(1e6)
                > AUTOMOTIVE_MASK.limit_dbua(100e6))


class TestAmpsToDbua:
    def test_one_microamp_is_zero(self):
        assert amps_to_dbua(1e-6) == pytest.approx(0.0)

    def test_one_milliamp(self):
        assert amps_to_dbua(1e-3) == pytest.approx(60.0)

    def test_zero_is_minus_inf(self):
        assert amps_to_dbua(0.0) == -math.inf


class TestCheckEmissions:
    def make_spectrum(self):
        freqs = np.array([0.0, 1e6, 10e6, 50e6])
        amps = np.array([1e-3, 5e-3, 1e-6, 1e-9])
        return freqs, amps

    def test_flags_violations_worst_first(self):
        mask = EmissionMask(points=((150e3, 60.0), (1e9, 60.0)))
        freqs, amps = self.make_spectrum()
        violations = check_emissions(freqs, amps, mask)
        # 5 mA at 1 MHz = 74 dBµA > 60; 1 µA = 0 dBµA passes.
        assert len(violations) == 1
        assert violations[0].frequency_hz == pytest.approx(1e6)
        assert violations[0].margin_db == pytest.approx(74.0 - 60.0, abs=0.1)

    def test_dc_ignored(self):
        mask = EmissionMask(points=((150e3, -100.0), (1e9, -100.0)))
        freqs = np.array([0.0, 1e6])
        amps = np.array([1.0, 1e-12])
        violations = check_emissions(freqs, amps, mask, floor_dbua=-200.0)
        assert all(v.frequency_hz != 0.0 for v in violations)

    def test_worst_margin_sign(self):
        mask = EmissionMask(points=((150e3, 60.0), (1e9, 60.0)))
        freqs, amps = self.make_spectrum()
        assert worst_emission_margin_db(freqs, amps, mask) > 0.0
        quiet = amps * 1e-6
        assert worst_emission_margin_db(freqs, quiet, mask) < 0.0

    def test_no_lines_in_band_raises(self):
        mask = EmissionMask(points=((1e8, 60.0), (1e9, 60.0)))
        with pytest.raises(ValueError):
            worst_emission_margin_db(np.array([0.0, 1e3]),
                                     np.array([1.0, 1.0]), mask)


class TestRingOscillatorEmission:
    def test_supply_spectrum_peaks_at_switching_products(self, tech90):
        """A ring oscillator pumps harmonics into its supply — the §4
        emission mechanism, measured from the simulated supply current."""
        fx = ring_oscillator(tech90, n_stages=3)
        result = transient(fx.circuit, t_stop=4e-9, dt=4e-12)
        freqs, amps = supply_current_spectrum(result, "vdd",
                                              settle_s=0.5e-9)
        from repro.circuits import oscillation_frequency

        f0 = oscillation_frequency(result.voltage("s0"), tech90.vdd / 2)
        # The supply current repeats every HALF oscillation period per
        # stage event pattern: dominant energy sits at n_stages·f0-ish
        # products; just require substantial in-band content well above
        # the numerical floor.
        band = (freqs > 0.5 * f0) & (freqs < 20.0 * f0)
        assert amps[band].max() > 1e-5
        # And a real verdict against the automotive mask is computable.
        margin = worst_emission_margin_db(freqs, amps, AUTOMOTIVE_MASK)
        assert math.isfinite(margin)


class TestTemperatureModel:
    def test_hot_device_carries_less_current(self, tech90):
        from dataclasses import replace

        from repro.circuit import Mosfet

        m = Mosfet.from_technology("m", "d", "g", "s", "b", tech90, "n",
                                   w_m=1e-6, l_m=0.09e-6)
        i_room = m.drain_current(0.8, 0.6, 0.0)
        m.params = replace(m.params, temperature_k=398.0)
        i_hot = m.drain_current(0.8, 0.6, 0.0)
        # Mobility loss dominates the V_T drop at this overdrive.
        assert i_hot < i_room

    def test_vt_drops_when_hot(self, tech90):
        from dataclasses import replace

        from repro.circuit import Mosfet

        m = Mosfet.from_technology("m", "d", "g", "s", "b", tech90, "n",
                                   w_m=1e-6, l_m=0.09e-6)
        vt_room = m._threshold(0.0)
        m.params = replace(m.params, temperature_k=398.0)
        assert m._threshold(0.0) == pytest.approx(vt_room - 0.098, abs=0.002)


class TestCornerAnalysis:
    def iout_spec(self, lower, upper):
        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        return Specification("iout", iout, lower=lower, upper=upper)

    def test_matrix_size(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = self.iout_spec(50e-6, 200e-6)
        analysis = CornerAnalysis(fx, [spec], tech90,
                                  vdd_scales=[0.9, 1.1],
                                  temperatures_k=[300.0, 398.0])
        result = analysis.run()
        assert len(result.points) == 5 * 2 * 2  # corners × V × T
        assert len(result.values["iout"]) == 20

    def test_generous_spec_passes_everywhere(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = self.iout_spec(50e-6, 200e-6)
        result = CornerAnalysis(fx, [spec], tech90).run()
        assert result.all_pass(spec)

    def test_tight_spec_fails_at_some_corner(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = self.iout_spec(99.5e-6, 100.5e-6)
        result = CornerAnalysis(fx, [spec], tech90).run()
        assert not result.all_pass(spec)
        label, value = result.worst_case(spec)
        assert not spec.passes(value)

    def test_fixture_restored(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = self.iout_spec(50e-6, 200e-6)
        nominal = -dc_operating_point(fx.circuit).source_current("vout")
        CornerAnalysis(fx, [spec], tech90).run()
        restored = -dc_operating_point(fx.circuit).source_current("vout")
        assert restored == pytest.approx(nominal, rel=1e-9)
        assert fx.circuit["vdd"].spec.dc_value() == pytest.approx(tech90.vdd)

    def test_requires_specs_and_vdd(self, tech90):
        fx = simple_current_mirror(tech90)
        with pytest.raises(ValueError):
            CornerAnalysis(fx, [], tech90)
        spec = self.iout_spec(0.0, 1.0)
        with pytest.raises(TypeError):
            CornerAnalysis(fx, [spec], tech90, vdd_source_name="iref")


class TestIrDrop:
    def build(self, tech65):
        from repro.aging import InterconnectNetwork

        net = InterconnectNetwork(tech65.interconnect)
        net.wire("spine", "pad", "n1", width_m=1.0e-6, length_m=400e-6)
        net.wire("rib", "n1", "load", width_m=0.3e-6, length_m=150e-6)
        net.inject("load", -2e-3)
        net.set_ground("pad")
        return net

    def test_drop_grows_downstream(self, tech65):
        net = self.build(tech65)
        drops = net.ir_drop_report("pad")
        assert drops["load"] > drops["n1"] > 0.0

    def test_worst_node_is_the_load(self, tech65):
        net = self.build(tech65)
        node, drop = net.worst_ir_drop("pad")
        assert node == "load"
        # Sanity: drop equals I·R of the path.
        r_total = sum(seg.resistance_ohm for seg in net.segments)
        assert drop == pytest.approx(2e-3 * r_total, rel=1e-9)

    def test_unknown_supply_rejected(self, tech65):
        net = self.build(tech65)
        with pytest.raises(ValueError, match="unknown supply"):
            net.ir_drop_report("zz")
