"""Tests for the extension features: spectrum/jitter, the EMC-hardened
reference (§5.3), the circuit-bound knob/monitor library, and the
Monte-Carlo lifetime estimator."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import HciModel, NbtiModel
from repro.circuit import (
    Circuit,
    DcSpec,
    SineSpec,
    Waveform,
    dc_operating_point,
    transient,
)
from repro.circuits import (
    cycle_jitter,
    cycle_periods,
    emc_hardened_current_reference,
    filtered_current_reference,
    oscillation_frequency,
    ring_oscillator,
    simple_current_mirror,
)
from repro.core import EmcAnalyzer, LifetimeEstimator, MissionProfile
from repro.emc import add_dpi_injection
from repro.solutions import (
    AdaptiveSystem,
    SpecTarget,
    aging_sensor_monitor,
    bias_current_knob,
    body_bias_knob,
    dc_monitor,
    source_current_monitor,
    supply_knob,
)


class TestSpectrum:
    def test_pure_tone_amplitude_and_frequency(self):
        t = np.linspace(0.0, 1e-6, 2048)
        w = Waveform(t, 0.3 + 0.8 * np.sin(2 * np.pi * 10e6 * t))
        freqs, amps = w.spectrum()
        assert w.dominant_frequency() == pytest.approx(10e6, rel=0.02)
        k = int(np.argmin(np.abs(freqs - 10e6)))
        # Peak amplitude near 0.8 (leakage spreads it a little).
        assert amps[k] == pytest.approx(0.8, rel=0.15)
        assert amps[0] == pytest.approx(0.3, abs=0.02)

    def test_square_wave_harmonics(self):
        t = np.linspace(0.0, 1e-6, 4096)
        w = Waveform(t, np.sign(np.sin(2 * np.pi * 8e6 * t)))
        freqs, amps = w.spectrum()
        k1 = int(np.argmin(np.abs(freqs - 8e6)))
        k3 = int(np.argmin(np.abs(freqs - 24e6)))
        # Odd harmonics in ~1/3 ratio; even harmonics absent.
        assert amps[k3] / amps[k1] == pytest.approx(1.0 / 3.0, rel=0.2)
        k2 = int(np.argmin(np.abs(freqs - 16e6)))
        assert amps[k2] < 0.1 * amps[k1]


class TestJitter:
    def test_clean_oscillation_low_jitter(self):
        t = np.linspace(0.0, 2e-6, 8001)
        w = Waveform(t, np.sin(2 * np.pi * 10e6 * t))
        periods = cycle_periods(w, 0.0)
        assert np.mean(periods) == pytest.approx(100e-9, rel=0.01)
        assert cycle_jitter(w, 0.0) < 1e-9

    def test_modulated_oscillation_shows_jitter(self):
        t = np.linspace(0.0, 2e-6, 16001)
        phase = 2 * np.pi * 10e6 * t + 0.5 * np.sin(2 * np.pi * 1e6 * t)
        w = Waveform(t, np.sin(phase))
        assert cycle_jitter(w, 0.0) > 5 * cycle_jitter(
            Waveform(t, np.sin(2 * np.pi * 10e6 * t)), 0.0)

    def test_emi_induces_ring_oscillator_jitter(self, tech90):
        """§4: 'interference can introduce jitter' — measured."""
        fx = ring_oscillator(tech90, n_stages=3)
        inj = add_dpi_injection(fx.circuit, "s0", coupling_c_f=100e-15)
        inj.silence()
        res = transient(fx.circuit, t_stop=4e-9, dt=4e-12)
        quiet = cycle_jitter(res.voltage("s1"), tech90.vdd / 2)
        inj.set_tone(0.4, 937e6)  # incommensurate with the ring
        res = transient(fx.circuit, t_stop=4e-9, dt=4e-12)
        noisy = cycle_jitter(res.voltage("s1"), tech90.vdd / 2)
        assert noisy > 2.0 * quiet


class TestEmcHardenedReference:
    def test_same_nominal_bias(self, tech90):
        plain = filtered_current_reference(tech90)
        hard = emc_hardened_current_reference(tech90)
        i_plain = -dc_operating_point(plain.circuit).source_current("vout")
        i_hard = -dc_operating_point(hard.circuit).source_current("vout")
        assert i_hard == pytest.approx(i_plain, rel=0.05)

    def test_rectification_reduced(self, tech90):
        """§5.3: the hardened structure is far less susceptible."""
        def shift(fx):
            inj = add_dpi_injection(fx.circuit, fx.nodes["diode"],
                                    coupling_c_f=500e-15)
            analyzer = EmcAnalyzer(fx.circuit, inj,
                                   lambda r: -r.source_current("vout"),
                                   n_periods=20, samples_per_period=32,
                                   settle_periods=6)
            nominal = analyzer.nominal_value()
            return analyzer.measure_point(0.4, 50e6, nominal).relative_shift

        s_plain = shift(filtered_current_reference(tech90))
        s_hard = shift(emc_hardened_current_reference(tech90))
        assert abs(s_hard) < 0.4 * abs(s_plain)

    def test_validation(self, tech90):
        with pytest.raises(ValueError):
            emc_hardened_current_reference(tech90, r_degen_ohm=0.0)


class TestKnobLibrary:
    def test_supply_knob_moves_source(self, tech90):
        fx = simple_current_mirror(tech90)
        knob = supply_knob(fx.circuit, "vdd", [1.2, 1.3])
        knob.set_index(1)
        assert fx.circuit["vdd"].spec.dc_value() == pytest.approx(1.3)

    def test_supply_knob_type_check(self, tech90):
        fx = simple_current_mirror(tech90)
        with pytest.raises(TypeError):
            supply_knob(fx.circuit, "iref", [1.0, 1.1])

    def test_bias_current_knob(self, tech90):
        fx = simple_current_mirror(tech90)
        knob = bias_current_knob(fx.circuit, "iref", [100e-6, 120e-6])
        knob.set_index(1)
        op = dc_operating_point(fx.circuit)
        assert -op.source_current("vout") == pytest.approx(120e-6, rel=0.06)

    def test_body_bias_knob_shifts_vt(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=tech90.lmin_m)
        knob = body_bias_knob(fx.circuit, ["m1", "m2"], [0.0, -0.05, 0.05])
        i_nom = -dc_operating_point(fx.circuit).source_current("vout")
        knob.set_index(1)  # forward bias (lower V_T) on both devices
        dev = fx.circuit["m2"]
        assert dev.variation.delta_vt_v == pytest.approx(-0.05)
        knob.set_index(0)
        assert dev.variation.delta_vt_v == pytest.approx(0.0)

    def test_body_bias_preserves_sampled_mismatch(self, tech90):
        from repro.circuit import DeviceVariation

        fx = simple_current_mirror(tech90)
        fx.circuit["m2"].variation = DeviceVariation(delta_vt_v=0.01)
        knob = body_bias_knob(fx.circuit, ["m2"], [0.0, -0.02])
        knob.set_index(1)
        assert fx.circuit["m2"].variation.delta_vt_v == pytest.approx(-0.01)
        knob.set_index(0)
        assert fx.circuit["m2"].variation.delta_vt_v == pytest.approx(0.01)

    def test_dc_and_current_monitors(self, tech90):
        fx = simple_current_mirror(tech90)
        vmon = dc_monitor(fx.circuit, "din")
        imon = source_current_monitor(fx.circuit, "vout")
        op = dc_operating_point(fx.circuit)
        assert vmon.read() == pytest.approx(op.voltage("din"))
        assert imon.read() == pytest.approx(op.source_current("vout"))

    def test_aging_sensor_monitor(self, tech90):
        fx = simple_current_mirror(tech90)
        sensor = aging_sensor_monitor(fx, "m2", "m1")
        assert sensor.read() == 0.0
        fx.circuit["m2"].degradation.delta_vt_v = 0.03
        assert sensor.read() == pytest.approx(0.03)

    def test_closed_loop_with_bias_knob(self, tech90):
        """A §5.2 loop holding mirror output with a current-trim knob."""
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=tech90.lmin_m)
        knob = bias_current_knob(fx.circuit, "iref",
                                 [100e-6, 110e-6, 120e-6, 130e-6])
        monitor = source_current_monitor(fx.circuit, "vout")
        # spec: delivered current ≥ 98 µA (source current is negative...
        # the branch current convention makes iout = -i(vout)).
        system = AdaptiveSystem(
            [monitor], [knob],
            [SpecTarget(monitor.name, upper=-98e-6)],
            cost_fn=lambda: knob.value)
        # Degrade the output device.
        fx.circuit["m2"].degradation.delta_vt_v = 0.03
        fx.circuit["m2"].degradation.beta_factor = 0.95
        record = system.regulate()
        assert record.in_spec
        assert knob.index > 0


class TestLifetimeEstimator:
    def test_distribution_and_spread(self, tech65):
        # Over-driven output (1.5×VDD drain) makes HCI hammer the output
        # device while the diode stays safe — a mirror whose degradation
        # does NOT cancel.  (A plain mirror's NBTI cancels: both devices
        # share V_GS and shift together — physically correct and easy to
        # verify with this estimator.)
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m,
                                   v_out_v=1.5 * tech65.vdd)

        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        nominal = iout(fx)
        estimator = LifetimeEstimator(
            fx, [HciModel(tech65.aging)],
            tech65, iout, lower=0.8 * nominal)
        profile = MissionProfile(n_epochs=5)
        summary = estimator.run(profile, n_samples=6, seed=4)
        assert summary.failure_times_s.size == 6
        finite = summary.failure_times_s[np.isfinite(summary.failure_times_s)]
        # Hot-carrier wear-out kills every die mid-mission...
        assert finite.size == 6
        assert np.all(finite > 0.0)
        # ...at mismatch-spread times.
        assert np.std(finite) > 0.0
        assert summary.mttf_years < 10.0
        assert 0.0 <= summary.surviving_fraction(1e3) <= 1.0

    def test_requires_bound(self, tech65):
        fx = simple_current_mirror(tech65)
        with pytest.raises(ValueError):
            LifetimeEstimator(fx, [HciModel(tech65.aging)], tech65,
                              lambda f: 0.0)

    def test_devices_restored(self, tech65):
        fx = simple_current_mirror(tech65, w_m=2e-6, l_m=tech65.lmin_m)

        def iout(fixture):
            return -dc_operating_point(fixture.circuit).source_current("vout")

        estimator = LifetimeEstimator(
            fx, [HciModel(tech65.aging)], tech65, iout, lower=0.0)
        estimator.run(MissionProfile(n_epochs=2), n_samples=2, seed=0)
        for device in fx.circuit.mosfets:
            assert device.variation.delta_vt_v == 0.0
            assert device.degradation.is_fresh()
