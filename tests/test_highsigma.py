"""High-sigma yield engine tests.

Covers the normal-quantile fallback (the no-scipy CI leg), the
probe-direction state-leak regression, estimator properties on the
analytic linear model, surrogate screening, bit-consistency across
jobs/backends/batching, checkpoint resume, and the CLI surface.
No scipy import at module level — only individual tests that compare
against scipy skip when it is absent.
"""

import math
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import differential_pair, input_referred_offset_v
from repro.core import (
    HighSigmaResult,
    HighSigmaYield,
    ImportanceSampler,
    Specification,
    Surrogate,
    SurrogateConfig,
    normal_ppf,
    normal_sf,
    sigma_level_from_probability,
)
from repro.core.importance import _acklam_ppf
from repro.parallel import FailureLedger
from repro.verify.oracles import HighSigmaLinearOracle


def linear_engine(k_sigma=3.0):
    """The analytic linear-tail engine (exact P(fail) = Φ(−k))."""
    return HighSigmaLinearOracle(k_sigma=k_sigma)._engine()


# ----------------------------------------------------------------------
# Normal-distribution helpers (satellite: no-scipy sigma_level)
# ----------------------------------------------------------------------
class TestNormalHelpers:
    def test_acklam_matches_scipy(self):
        norm = pytest.importorskip("scipy.stats").norm
        for p in np.concatenate([np.logspace(-15, -1, 30),
                                 np.linspace(0.05, 0.95, 19)]):
            assert _acklam_ppf(float(p)) == pytest.approx(
                float(norm.ppf(p)), rel=1e-8, abs=1e-9)

    def test_acklam_symmetry(self):
        for p in (1e-9, 0.01, 0.3):
            assert _acklam_ppf(p) == pytest.approx(-_acklam_ppf(1.0 - p))

    def test_acklam_rejects_out_of_range(self):
        for p in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                _acklam_ppf(p)

    def test_ppf_without_scipy_uses_fallback(self, monkeypatch):
        """normal_ppf must keep working when scipy.stats is absent."""
        monkeypatch.setitem(sys.modules, "scipy.stats", None)
        monkeypatch.setitem(sys.modules, "scipy", None)
        assert normal_ppf(0.3) == pytest.approx(_acklam_ppf(0.3))
        assert math.isfinite(sigma_level_from_probability(1e-8))

    def test_sigma_level_roundtrip(self):
        for k in (1.0, 2.0, 3.0, 4.5, 6.0):
            assert sigma_level_from_probability(normal_sf(k)) == \
                pytest.approx(k, rel=1e-6)

    def test_sigma_level_edge_cases(self):
        assert sigma_level_from_probability(0.0) == math.inf
        assert sigma_level_from_probability(float("nan")) == math.inf
        assert sigma_level_from_probability(1.0) == -math.inf


# ----------------------------------------------------------------------
# Probe-direction state leak (satellite regression)
# ----------------------------------------------------------------------
class TestProbeStateLeak:
    def _fixture(self, tech90):
        return differential_pair(tech90, w_m=4e-6, l_m=0.4e-6)

    def test_probe_clears_on_extractor_crash(self, tech90):
        fx = self._fixture(tech90)
        calls = {"n": 0}

        def exploding(fixture):
            calls["n"] += 1
            if calls["n"] >= 2:  # crash mid-probe, after the nominal
                raise RuntimeError("boom")
            return input_referred_offset_v(fixture)

        spec = Specification("offset", exploding, lower=-1e-3, upper=1e-3)
        sampler = ImportanceSampler(fx, spec, tech90)
        with pytest.raises(RuntimeError):
            sampler.probe_direction()
        assert all(m.variation.delta_vt_v == 0.0
                   for m in fx.circuit.mosfets)

    def test_engine_probe_clears_on_extractor_crash(self, tech90):
        fx = self._fixture(tech90)
        calls = {"n": 0}

        def exploding(fixture):
            calls["n"] += 1
            if calls["n"] >= 2:  # crash mid-probe, after the nominal
                raise RuntimeError("boom")
            return input_referred_offset_v(fixture)

        spec = Specification("offset", exploding, lower=-1e-3, upper=1e-3)
        engine = HighSigmaYield(fx, spec, tech90)
        with pytest.raises(RuntimeError):
            engine.probe_direction()
        assert all(m.variation.delta_vt_v == 0.0
                   for m in fx.circuit.mosfets)


# ----------------------------------------------------------------------
# Engine accuracy on the analytic linear model
# ----------------------------------------------------------------------
class TestLinearAccuracy:
    def test_plain_is_within_band(self):
        oracle = HighSigmaLinearOracle(k_sigma=4.0, n_samples=1024, seed=5)
        engine = oracle._engine()
        result = engine.run(n_samples=1024, shift_sigma=4.0, seed=5,
                            adapt=False, surrogate=None)
        p_true = normal_sf(4.0)
        se = oracle.closed_form_se()
        assert abs(result.failure_probability - p_true) <= 4.0 * se
        assert result.full_solver_calls == 1024
        assert result.surrogate_info is None

    def test_screened_within_band_and_saves_solves(self):
        oracle = HighSigmaLinearOracle(k_sigma=4.0, n_samples=1024, seed=5)
        engine = oracle._engine()
        result = engine.run(n_samples=1024, shift_sigma=4.0, seed=5,
                            adapt=False, surrogate=SurrogateConfig())
        p_true = normal_sf(4.0)
        se = oracle.closed_form_se()
        assert abs(result.failure_probability - p_true) <= 6.0 * se
        # The linear metric is exactly representable by the poly
        # surrogate, so screening should skip most post-pilot solves.
        assert result.full_solver_calls < 1024 // 2
        assert result.screened_samples > 0
        assert result.screening_factor > 2.0
        assert result.surrogate_info is not None
        assert result.audit_mismatches == 0

    def test_adaptive_refinement_finds_direction(self):
        engine = linear_engine(k_sigma=4.0)
        # Start from a deliberately unhelpful explicit direction and a
        # surrogate pilot large enough for refinement to engage.
        result = engine.run(n_samples=768, seed=11,
                            surrogate=SurrogateConfig(train_samples=256))
        assert result.n_failures_observed > 100
        assert 2.0 <= result.shift_sigma <= 8.0
        assert result.sigma_level == pytest.approx(4.0, abs=0.6)

    def test_sigma_level_and_ess(self):
        engine = linear_engine(k_sigma=3.0)
        result = engine.run(n_samples=512, shift_sigma=3.0, seed=2,
                            adapt=False, surrogate=None)
        assert result.sigma_level == pytest.approx(3.0, abs=0.3)
        assert 1.0 <= result.effective_samples <= 512.0
        assert result.relative_standard_error < 0.5


# ----------------------------------------------------------------------
# Estimator properties (hypothesis)
# ----------------------------------------------------------------------
class TestEstimatorProperties:
    @given(shift=st.floats(min_value=1.5, max_value=4.5),
           seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_unnorm_and_selfnorm_agree_within_se(self, shift, seed):
        """Both estimators target the same tail probability.

        On the linear model either estimator's realized error is a few
        standard errors at worst; the gap between them must be within a
        generous multiple of their combined SE for ANY shift choice.
        """
        engine = linear_engine(k_sigma=3.0)
        result = engine.run(n_samples=512, shift_sigma=shift, seed=seed,
                            adapt=False, surrogate=None)
        if result.n_failures_observed == 0:
            return  # nothing to compare at tiny shifts
        se = math.hypot(result.standard_error,
                        result.standard_error_self_normalized)
        gap = abs(result.failure_probability
                  - result.failure_probability_self_normalized)
        assert gap <= 8.0 * max(se, 1e-300)

    @given(shift=st.floats(min_value=0.5, max_value=5.0),
           seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=8, deadline=None, derandomize=True)
    def test_weight_invariants(self, shift, seed):
        engine = linear_engine(k_sigma=3.0)
        result = engine.run(n_samples=256, shift_sigma=shift, seed=seed,
                            adapt=False, surrogate=None)
        assert np.all(result.weights > 0.0)
        assert 1.0 <= result.effective_samples <= 256.0 + 1e-9
        assert result.failure_probability >= 0.0


# ----------------------------------------------------------------------
# Bit-consistency: jobs, backends, batching
# ----------------------------------------------------------------------
class TestBitConsistency:
    def test_thread_jobs_bit_identical(self):
        engine = linear_engine(k_sigma=3.5)
        kwargs = dict(n_samples=512, shift_sigma=3.5, seed=9,
                      surrogate=SurrogateConfig())
        serial = engine.run(jobs=1, backend="serial", **kwargs)
        threaded = engine.run(jobs=4, backend="thread", **kwargs)
        assert np.array_equal(serial.weights, threaded.weights)
        assert np.array_equal(serial.values, threaded.values)
        assert np.array_equal(serial.fails, threaded.fails)
        assert np.array_equal(serial.solved, threaded.solved)

    def test_batched_dc_bit_identical(self, tech90):
        """samples-as-lanes DC sweeps change nothing but the clock."""
        fx = differential_pair(tech90, w_m=4e-6, l_m=0.4e-6)
        spec = Specification(
            "offset", _offset_metric, lower=-4e-3, upper=4e-3)
        engine = HighSigmaYield(fx, spec, tech90)
        kwargs = dict(n_samples=64, shift_sigma=3.0, seed=3,
                      adapt=False, surrogate=None)
        scalar = engine.run(batch_size=None, **kwargs)
        batched = engine.run(batch_size=8, **kwargs)
        # The MC batching contract: variates and verdicts are exact,
        # solver values agree to solver tolerance.
        assert np.array_equal(scalar.weights, batched.weights)
        assert np.array_equal(scalar.fails, batched.fails)
        np.testing.assert_allclose(batched.values, scalar.values,
                                   rtol=0, atol=1e-9)

    def test_chunk_size_changes_nothing_statistical(self):
        """The chunk grid is the reproducibility contract: the same
        seed and chunk size give identical draws regardless of jobs."""
        engine = linear_engine(k_sigma=3.0)
        a = engine.run(n_samples=256, shift_sigma=3.0, seed=4,
                       adapt=False, surrogate=None, chunk_size=32)
        b = engine.run(n_samples=256, shift_sigma=3.0, seed=4,
                       adapt=False, surrogate=None, chunk_size=32,
                       jobs=2, backend="thread")
        assert np.array_equal(a.weights, b.weights)


# ----------------------------------------------------------------------
# Checkpoint / resume / partial results
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_bit_identical(self, tmp_path):
        engine = linear_engine(k_sigma=3.5)
        kwargs = dict(n_samples=384, shift_sigma=3.5, seed=6,
                      surrogate=SurrogateConfig(train_samples=64))
        reference = engine.run(**kwargs)
        ckpt = tmp_path / "hs"
        first = engine.run(checkpoint=ckpt, **kwargs)
        resumed = engine.run(checkpoint=ckpt, resume=True, **kwargs)
        for result in (first, resumed):
            assert np.array_equal(reference.weights, result.weights)
            assert np.array_equal(reference.values, result.values)
            assert np.array_equal(reference.fails, result.fails)
            assert np.array_equal(reference.solved, result.solved)
        assert resumed.audit_count == reference.audit_count
        # Mismatch verdicts are recomputed from persisted channels, so
        # a resume must report the same count as the uninterrupted run
        # (not silently reset to zero).
        assert resumed.audit_mismatches == reference.audit_mismatches

    def test_resume_refuses_wrong_params(self, tmp_path):
        from repro.checkpoint import CheckpointError

        engine = linear_engine(k_sigma=3.5)
        ckpt = tmp_path / "hs"
        engine.run(n_samples=128, shift_sigma=3.5, seed=6, adapt=False,
                   surrogate=None, checkpoint=ckpt)
        with pytest.raises(CheckpointError):
            engine.run(n_samples=128, shift_sigma=3.5, seed=7, adapt=False,
                       surrogate=None, checkpoint=ckpt, resume=True)

    def test_partial_result_masks_unevaluated(self):
        """A budget-expired result only averages evaluated samples."""
        n = 8
        evaluated = np.array([True] * 4 + [False] * 4)
        result = HighSigmaResult(
            n_samples=n, spec_name="m",
            values=np.ones(n), weights=np.ones(n),
            fails=np.array([True, False, False, False] + [False] * 4),
            solved=np.ones(n, dtype=bool), shift_sigma=3.0,
            direction={"m1": 1.0}, two_sided=False, n_pilot=0,
            ledger=FailureLedger(), evaluated=evaluated)
        assert result.n_evaluated == 4
        assert result.failure_probability == pytest.approx(0.25)
        assert result.is_degraded


# ----------------------------------------------------------------------
# Surrogate unit behaviour
# ----------------------------------------------------------------------
class TestSurrogate:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(kind="forest")
        with pytest.raises(ValueError):
            SurrogateConfig(degree=0)
        with pytest.raises(ValueError):
            SurrogateConfig(train_samples=4)
        with pytest.raises(ValueError):
            SurrogateConfig(k_sigma=0.0)

    def test_fit_underdetermined_returns_none(self):
        rng = np.random.default_rng(0)
        Z = rng.normal(size=(6, 4))
        y = rng.normal(size=6)
        assert Surrogate.fit(SurrogateConfig(), Z, y) is None

    def test_poly_recovers_quadratic_exactly(self):
        rng = np.random.default_rng(1)
        Z = rng.normal(size=(200, 2))
        y = 1.0 + 2.0 * Z[:, 0] - Z[:, 1] + 0.5 * Z[:, 0] * Z[:, 1]
        model = Surrogate.fit(SurrogateConfig(ridge_lambda=1e-12), Z, y)
        assert model is not None
        pred = model.predict(Z)
        assert np.allclose(pred, y, atol=1e-6)
        assert model.residual_sigma < 1e-5

    def test_uncertain_brackets_the_bound(self):
        rng = np.random.default_rng(2)
        Z = rng.normal(size=(100, 2))
        y = Z[:, 0] + 0.01 * rng.normal(size=100)
        model = Surrogate.fit(SurrogateConfig(k_sigma=3.0), Z, y)
        spec = Specification("m", lambda f: 0.0, lower=0.0)
        preds = np.array([-10.0, 0.0, 10.0, float("nan")])
        unsure = model.uncertain(preds, spec)
        assert not unsure[0] and not unsure[2]
        assert unsure[1] and unsure[3]  # near bound / non-finite

    def test_rbf_fits_smooth_function(self):
        rng = np.random.default_rng(3)
        Z = rng.normal(size=(120, 2))
        y = np.tanh(Z[:, 0]) + 0.3 * Z[:, 1]
        model = Surrogate.fit(SurrogateConfig(kind="rbf"), Z, y)
        assert model is not None
        pred = model.predict(Z)
        assert float(np.std(pred - y)) < 0.1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_highsigma_smoke(self, capsys):
        from repro.cli import main

        code = main(["highsigma", "--samples", "96", "--train-samples",
                     "64", "--snm-min-mv", "80", "--snm-points", "21",
                     "--quiet", "--seed", "1"])
        out = capsys.readouterr().out
        assert code in (0, 2)
        assert "High-sigma read-SNM yield" in out
        assert "full solver calls" in out
        assert "surrogate" in out

    def test_highsigma_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["highsigma", "--resume"]) == 1


def _offset_metric(fixture):
    """Module-level offset extractor (picklable for process backends)."""
    return input_referred_offset_v(fixture)
