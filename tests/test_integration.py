"""Cross-module integration tests: the paper's storylines end to end."""

import math

import numpy as np
import pytest

from repro import units
from repro.aging import (
    BreakdownMode,
    ElectromigrationModel,
    HciModel,
    InterconnectNetwork,
    NbtiModel,
    TddbModel,
)
from repro.circuit import dc_operating_point, transient
from repro.circuits import (
    differential_pair,
    filtered_current_reference,
    five_transistor_ota,
    input_referred_offset_v,
    is_bistable,
    oscillation_frequency,
    ring_oscillator,
    sram_cell,
)
from repro.core import (
    EmcAnalyzer,
    MissionProfile,
    MonteCarloYield,
    ReliabilitySimulator,
    Specification,
    tddb_survival_fn,
    time_to_spec_violation,
)
from repro.emc import add_dpi_injection
from repro.solutions import (
    AdaptiveSystem,
    Knob,
    Monitor,
    SpecTarget,
)
from repro.variability import MismatchSampler


class TestYieldAcrossNodes:
    def test_fixed_area_offset_worsens_with_scaling(self):
        """§2: at fixed device AREA, scaled nodes match slightly better
        (A_VT tracks t_ox down) — but at each node's MINIMUM geometry,
        offsets explode.  Check the minimum-geometry trend."""
        from repro.technology import get_node
        from repro.variability import PelgromModel

        sigmas = []
        for name in ("350nm", "90nm", "32nm"):
            tech = get_node(name)
            pm = PelgromModel.for_technology(tech)
            sigmas.append(pm.sigma_delta_vt_v(4 * tech.wmin_m, tech.lmin_m))
        assert sigmas[0] < sigmas[1] < sigmas[2]


class TestAgedSramStability:
    def test_one_soft_breakdown_not_fatal(self, tech90):
        """§3.1 / ref [20]: one SBD does not necessarily kill the cell."""
        fx = sram_cell(tech90)
        tddb = TddbModel(tech90.aging)
        tddb.apply_breakdown(fx.circuit["mn_l"], BreakdownMode.SOFT,
                             spot_position=0.3)
        assert is_bistable(fx)

    def test_hard_breakdown_on_pulldown_can_kill(self, tech90):
        """A HARD breakdown shorting a pull-down gate is usually fatal."""
        fx = sram_cell(tech90)
        tddb = TddbModel(tech90.aging)
        tddb.apply_breakdown(fx.circuit["mn_l"], BreakdownMode.HARD,
                             spot_position=0.5)
        assert not is_bistable(fx)


class TestAgingPlusVariability:
    def test_variability_and_aging_compose(self, tech65):
        """Aged mismatch: total offset = time-zero + drift components."""
        fx = five_transistor_ota(tech65, l_m=2 * tech65.lmin_m)
        sampler = MismatchSampler(tech65, np.random.default_rng(11))
        sampler.assign(fx.circuit)
        offset_t0 = input_referred_offset_v(fx, search_range_v=0.3)
        # Asymmetric NBTI stress: skew the inputs so one PMOS load works
        # harder, then age.
        fx.circuit["vinp"].spec = type(fx.circuit["vinp"].spec)(
            fx.meta["vcm_v"] + 0.1)
        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging)])
        sim.run(MissionProfile(n_epochs=5))
        fx.circuit["vinp"].spec = type(fx.circuit["vinp"].spec)(
            fx.meta["vcm_v"])
        offset_aged = input_referred_offset_v(fx, search_range_v=0.3)
        assert offset_aged != pytest.approx(offset_t0, abs=1e-5)


class TestDigitalLifetime:
    def test_ring_oscillator_lifetime_pipeline(self, tech65):
        """§5 intro: simulate aging, find when the frequency spec dies,
        then combine with TDDB survival."""
        fx = ring_oscillator(tech65, n_stages=3)

        def freq(fixture):
            res = transient(fixture.circuit, t_stop=2.5e-9, dt=5e-12)
            return oscillation_frequency(res.voltage("s0"), tech65.vdd / 2)

        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging),
                                        HciModel(tech65.aging)])
        profile = MissionProfile(n_epochs=5, stress_mode="transient",
                                 transient_t_stop_s=1.2e-9,
                                 transient_dt_s=3e-12)
        report = sim.run(profile, metrics={"freq": freq})
        f0 = report.metric("freq")[0]
        # Spec: stay within 2 % of the fresh frequency.
        t_param = time_to_spec_violation(report.times_s,
                                         report.metric("freq"),
                                         lower=0.98 * f0)
        assert t_param > 0.0
        op = dc_operating_point(fx.circuit)
        vgs = {m.name: tech65.vdd for m in fx.circuit.mosfets}
        survival = tddb_survival_fn(fx.circuit.mosfets,
                                    TddbModel(tech65.aging), vgs)
        p10 = survival(units.years_to_seconds(10.0))
        assert 0.0 < p10 <= 1.0


class TestEmcPipeline:
    def test_fig3_fig4_pipeline(self, tech90):
        """§4: the whole Fig 3 → Fig 4 flow, small grid."""
        fx = filtered_current_reference(tech90)
        inj = add_dpi_injection(fx.circuit, fx.nodes["diode"],
                                coupling_c_f=500e-15)
        analyzer = EmcAnalyzer(fx.circuit, inj,
                               lambda r: -r.source_current("vout"),
                               n_periods=20, samples_per_period=32,
                               settle_periods=6)
        smap = analyzer.scan([0.1, 0.4], [30e6, 300e6])
        # Pumped DOWN everywhere, worse at higher amplitude.
        assert np.all(smap.shift < 0.0)
        assert np.all(np.abs(smap.shift[1]) > np.abs(smap.shift[0]))


class TestEmDesignFlow:
    def test_em_aware_flow_fixes_grid(self, tech65):
        """§3.4 / ref [25]: analyze → widen → re-analyze to target."""
        net = InterconnectNetwork(tech65.interconnect)
        net.wire("spine", "pad", "n1", width_m=0.4e-6, length_m=400e-6,
                 has_via=True)
        net.wire("rib1", "n1", "load1", width_m=0.15e-6, length_m=150e-6)
        net.wire("rib2", "n1", "load2", width_m=0.15e-6, length_m=150e-6)
        net.wire("ret1", "load1", "gnd", width_m=0.3e-6, length_m=200e-6)
        net.wire("ret2", "load2", "gnd", width_m=0.3e-6, length_m=200e-6)
        net.inject("pad", 6e-3)
        net.inject("gnd", -6e-3)
        net.set_ground("gnd")
        em = ElectromigrationModel(tech65.aging)
        target = units.years_to_seconds(10.0)
        hot = units.celsius_to_kelvin(105.0)
        assert net.system_mttf_s(em, hot) < target  # starts failing
        net.fix_em_violations(em, target, temperature_k=hot)
        assert net.system_mttf_s(em, hot) >= 0.95 * target


class TestKnobsAndMonitorsOnRealCircuit:
    def test_supply_knob_holds_ro_frequency(self, tech65):
        """§5.2 on a real circuit: a VDD knob compensates NBTI+HCI aging
        of a ring oscillator; without the knob the spec is lost."""
        fx = ring_oscillator(tech65, n_stages=3)
        vdd_source = fx.circuit["vdd"]

        def measure_freq():
            res = transient(fx.circuit, t_stop=2.5e-9, dt=5e-12)
            return oscillation_frequency(res.voltage("s0"),
                                         vdd_source.spec.dc_value() / 2)

        f_fresh = measure_freq()
        spec_hz = 0.97 * f_fresh

        def set_vdd(v):
            from repro.circuit import DcSpec

            vdd_source.spec = DcSpec(v)

        monitor = Monitor("freq", measure_freq)
        knob = Knob("vdd", [tech65.vdd, 1.05 * tech65.vdd,
                            1.10 * tech65.vdd, 1.15 * tech65.vdd], set_vdd)
        system = AdaptiveSystem([monitor], [knob],
                                [SpecTarget("freq", lower=spec_hz)],
                                cost_fn=lambda: vdd_source.spec.dc_value() ** 2)

        sim = ReliabilitySimulator(fx, [NbtiModel(tech65.aging),
                                        HciModel(tech65.aging)])
        profile = MissionProfile(n_epochs=3, stress_mode="transient",
                                 transient_t_stop_s=1.2e-9,
                                 transient_dt_s=3e-12)
        report = sim.run(profile, metrics={"freq": lambda f: measure_freq()})
        # Open loop: frequency has sagged below spec by end of life.
        assert report.metric("freq")[-1] < spec_hz
        # Close the loop at end of life: the knob recovers the spec.
        record = system.regulate()
        assert record.in_spec
        assert knob.index > 0


class TestDelayVariability:
    def test_delay_spread_grows_with_scaling(self):
        """§2: 'digital circuits mostly suffer from a variable delay' —
        the relative delay spread of a minimum-size inverter grows as
        the technology scales (mismatch does not shrink as fast as
        drive strength grows)."""
        from repro.circuit import PulseSpec
        from repro.circuits import inverter, propagation_delay
        from repro.technology import get_node
        from repro.variability import MismatchSampler

        def delay_sigma_over_mean(tech, n=14):
            fx = inverter(tech, load_c_f=10e-15)
            fx.circuit["vin"].spec = PulseSpec(
                v1=0.0, v2=tech.vdd, delay_s=0.2e-9, rise_s=20e-12,
                fall_s=20e-12, width_s=5e-9, period_s=10e-9)
            sampler = MismatchSampler(tech, np.random.default_rng(3))
            delays = []
            for _ in range(n):
                sampler.assign(fx.circuit)
                res = transient(fx.circuit, t_stop=1.5e-9, dt=2e-12)
                delays.append(propagation_delay(
                    res.voltage("in"), res.voltage("out"), tech.vdd))
            sampler.clear(fx.circuit)
            delays = np.array(delays)
            return float(np.std(delays) / np.mean(delays))

        from repro.technology import get_node

        spread_old = delay_sigma_over_mean(get_node("180nm"))
        spread_new = delay_sigma_over_mean(get_node("45nm"))
        assert spread_new > spread_old


class TestFrequencyMonitor:
    def test_reads_ring_frequency(self, tech90):
        from repro.circuits import oscillation_frequency, ring_oscillator
        from repro.solutions import frequency_monitor

        fx = ring_oscillator(tech90, n_stages=3)
        monitor = frequency_monitor(fx, "s0", tech90.vdd / 2,
                                    t_stop_s=2e-9, dt_s=4e-12,
                                    quantization_hz=0.05e9)
        reading = monitor.read()
        res = transient(fx.circuit, t_stop=2e-9, dt=4e-12)
        direct = oscillation_frequency(res.voltage("s0"), tech90.vdd / 2)
        assert reading == pytest.approx(direct, rel=0.02)
