"""Tests for the cross-run observability subsystem (repro.obs).

Covers the four tentpole pieces — Prometheus exposition (rendering,
strict parsing, the live HTTP exporter), the content-addressed run
registry, the sampling profiler (including the bit-identity guarantee),
and run/trace diffing — plus the satellites: corrupt-trace-line
hardening, heartbeat edge cases, and the regression gate's
capability-mismatch refusal.
"""

import importlib.util
import io
import json
import math
import urllib.request
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.cli import _mc_heartbeat, main
from repro.obs import diff as obsdiff
from repro.obs import profiler as obsprof
from repro.obs import promexp, runlog

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestExposition:
    def _registry_snapshot(self):
        registry = telemetry.MetricsRegistry()
        registry.inc("solver.dc.solves", 42)
        registry.inc("engine.samples", 7)
        registry.gauge("parallel.pending_tasks", 3)
        for value in (0.001, 0.02, 0.3, 4.0):
            registry.observe("engine.sample_duration_s", value)
        return registry.snapshot()

    def test_round_trip_through_parser(self):
        text = promexp.render_exposition(self._registry_snapshot())
        families = promexp.parse_exposition(text)
        counter = families["repro_solver_dc_solves_total"]
        assert counter["type"] == "counter"
        assert counter["samples"][0][2] == 42
        gauge = families["repro_parallel_pending_tasks"]
        assert gauge["type"] == "gauge"
        assert gauge["samples"][0][2] == 3

    def test_histogram_buckets_cumulative_and_inf_terminated(self):
        text = promexp.render_exposition(self._registry_snapshot())
        families = promexp.parse_exposition(text)
        hist = families["repro_engine_sample_duration_s"]
        assert hist["type"] == "histogram"
        buckets = [(labels["le"], value) for name, labels, value
                   in hist["samples"] if name.endswith("_bucket")]
        assert buckets[-1][0] == "+Inf"
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative by construction
        count = [value for name, _, value in hist["samples"]
                 if name.endswith("_count")][0]
        assert buckets[-1][1] == count == 4

    def test_parser_rejects_non_cumulative_histogram(self):
        bad = ("# HELP repro_h x\n# TYPE repro_h histogram\n"
               'repro_h_bucket{le="0.1"} 5\n'
               'repro_h_bucket{le="1"} 3\n'
               'repro_h_bucket{le="+Inf"} 5\n'
               "repro_h_sum 1\nrepro_h_count 5\n")
        with pytest.raises(ValueError, match="not cumulative"):
            promexp.parse_exposition(bad)

    def test_parser_rejects_missing_inf_bucket(self):
        bad = ("# HELP repro_h x\n# TYPE repro_h histogram\n"
               'repro_h_bucket{le="0.1"} 5\n'
               "repro_h_sum 1\nrepro_h_count 5\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            promexp.parse_exposition(bad)

    def test_parser_rejects_headerless_samples(self):
        with pytest.raises(ValueError, match="no TYPE/HELP"):
            promexp.parse_exposition("repro_orphan 1\n")

    def test_label_escaping_round_trips(self):
        meta = {"netlist": 'a "quoted"\\path\nwith newline', "seed": 7}
        text = promexp.render_exposition({}, meta=meta)
        families = promexp.parse_exposition(text)
        labels = families["repro_run_info"]["samples"][0][1]
        assert labels["netlist"] == 'a "quoted"\\path\nwith newline'
        assert labels["seed"] == "7"

    def test_help_escaping(self):
        assert promexp.escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_special_values(self):
        assert promexp.format_value(math.inf) == "+Inf"
        assert promexp.format_value(-math.inf) == "-Inf"
        assert promexp.format_value(math.nan) == "NaN"
        assert promexp.format_value(3.0) == "3"

    @given(st.dictionaries(
        st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.-",
                min_size=1, max_size=24),
        st.floats(allow_nan=False, width=64),
        max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_counter_values_round_trip(self, counters):
        # Distinct dotted names may collapse to one Prometheus name
        # ("a.b" and "a-b" both become "a_b"); keep one per family.
        unique = {}
        for dotted, value in counters.items():
            unique.setdefault(promexp.metric_name(dotted, "_total"),
                              (dotted, value))
        text = promexp.render_exposition(
            {"counters": {d: v for d, v in unique.values()}})
        families = promexp.parse_exposition(text)
        for name, (dotted, value) in unique.items():
            got = families[name]["samples"][0][2]
            assert got == value or (math.isinf(got) and math.isinf(value))

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_metric_name_always_legal(self, dotted):
        assert promexp._NAME_OK.match(promexp.metric_name(dotted))

    def test_live_exporter_serves_metrics_and_health(self):
        snapshot = self._registry_snapshot()
        exporter = promexp.MetricsExporter(
            lambda: promexp.render_exposition(snapshot), port=0)
        with exporter:
            with urllib.request.urlopen(exporter.url) as response:
                assert response.headers["Content-Type"] == \
                    promexp.CONTENT_TYPE
                body = response.read().decode("utf-8")
            promexp.parse_exposition(body)  # must be scrapable
            health_url = exporter.url.replace("/metrics", "/healthz")
            with urllib.request.urlopen(health_url) as response:
                assert json.load(response)["status"] == "ok"
            other = exporter.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(other)
            assert err.value.code == 404


# ----------------------------------------------------------------------
# Run registry
# ----------------------------------------------------------------------
class TestRunRegistry:
    def test_record_list_load_round_trip(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        record = registry.record("mc", {"tech": "90nm", "samples": 8},
                                 seed=3, outcome="ok",
                                 capabilities={"ckernel": True},
                                 metrics={"counters": {"x": 1}})
        assert len(record["run_id"]) == runlog.ID_LENGTH
        listed = registry.list()
        assert [r["run_id"] for r in listed] == [record["run_id"]]
        loaded = registry.load(record["run_id"])
        assert loaded["config"]["tech"] == "90nm"
        assert loaded["seed"] == 3

    def test_load_by_unambiguous_prefix(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        record = registry.record("mc", {"n": 1})
        assert registry.load(record["run_id"][:6])["run_id"] == \
            record["run_id"]

    def test_missing_and_ambiguous_ids_raise(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        with pytest.raises(runlog.RunLogError, match="no run"):
            registry.load("feedfacecafe")
        a = registry.record("mc", {"n": 1})
        b = registry.record("mc", {"n": 2})
        common = ""
        for ca, cb in zip(a["run_id"], b["run_id"]):
            if ca != cb:
                break
            common += ca
        if common:  # ids share a prefix: it must be rejected as ambiguous
            with pytest.raises(runlog.RunLogError, match="ambiguous"):
                registry.load(common)

    def test_same_config_same_hash(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        a = registry.record("mc", {"tech": "90nm", "samples": 8})
        b = registry.record("mc", {"samples": 8, "tech": "90nm"})
        assert a["config_hash"] == b["config_hash"]

    def test_gc_keeps_newest(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        ids = [registry.record("mc", {"n": k}, t_start=float(k))["run_id"]
               for k in range(5)]
        removed = registry.gc(keep=2)
        assert sorted(removed) == sorted(ids[:3])
        assert [r["run_id"] for r in registry.list()] == ids[3:]

    def test_unreadable_records_skipped(self, tmp_path):
        registry = runlog.RunRegistry(tmp_path)
        registry.record("mc", {"n": 1})
        (tmp_path / "zzzz.json").write_text("{ truncated",
                                            encoding="utf-8")
        assert len(registry.list()) == 1

    def test_no_runlog_env_disables_recording(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NO_RUNLOG", "1")
        assert not runlog.runs_enabled()
        assert runlog.record_run("mc", {"n": 1}) is None
        assert list(tmp_path.iterdir()) == []

    def test_capability_flags_flatten_snapshot(self):
        flags = runlog.capability_flags({
            "ckernel": {"available": True, "breaker": {"tripped": False}},
            "sparse": {"available": True, "breaker": {"tripped": True}},
            "dgesv": {"available": False, "breaker": {}},
        })
        assert flags == {"ckernel": True, "sparse": False, "dgesv": False}


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_collects_samples_and_collapsed_format(self):
        with obsprof.profiling(interval_s=0.002) as prof:
            deadline = 0
            while prof.snapshot()["n_samples"] < 3 and deadline < 2000:
                sum(i * i for i in range(500))
                deadline += 1
        payload = prof.snapshot()
        assert payload["n_samples"] >= 3
        for line in obsprof.collapsed_lines(payload):
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert all(":" in frame for frame in stack.split(";"))

    def test_absorb_merges_counts(self):
        prof = obsprof.SamplingProfiler()
        prof.absorb({"samples": {"a:f;b:g": 3}, "n_samples": 3})
        prof.absorb({"samples": {"a:f;b:g": 2, "c:h": 1}, "n_samples": 3})
        payload = prof.snapshot()
        assert payload["samples"] == {"a:f;b:g": 5, "c:h": 1}
        assert payload["n_samples"] == 6

    def test_top_sinks_self_vs_total(self):
        payload = {"samples": {"a:f;b:g": 6, "a:f": 4}}
        sinks = {s["frame"]: s for s in obsprof.top_sinks(payload)}
        assert sinks["b:g"]["self"] == 6
        assert sinks["a:f"]["self"] == 4
        assert sinks["a:f"]["total"] == 10  # on both stacks
        assert sinks["b:g"]["share"] == pytest.approx(0.6)

    def test_phase_attribution_scans_leaf_inward(self):
        stack = ("repro.cli:main;repro.core.yield_analysis:run;"
                 "repro.circuit.dc:newton_solve;repro.circuit.mna:solve")
        assert obsprof.phase_of_stack(stack) == "linear-algebra"
        assert obsprof.phase_of_stack("somewhere:else") == "other"
        breakdown = obsprof.phase_breakdown(
            {"samples": {stack: 3, "x:y": 1}})
        assert breakdown["linear-algebra"]["samples"] == 3
        assert breakdown["linear-algebra"]["share"] == pytest.approx(0.75)

    def test_worker_profile_disabled_is_none(self):
        with obsprof.worker_profile(False) as prof:
            assert prof is None

    def test_active_default_none(self):
        assert obsprof.active() is None

    def test_write_collapsed(self, tmp_path):
        out = tmp_path / "stacks.folded"
        n = obsprof.write_collapsed({"samples": {"a:f;b:g": 2}}, out)
        assert n == 1
        assert out.read_text(encoding="utf-8") == "a:f;b:g 2\n"

    def test_profiling_does_not_change_results(self, tech90):
        from repro.circuits import differential_pair
        from repro.cli import _offset_extractor
        from repro.core import MonteCarloYield, Specification

        fx = differential_pair(tech90)
        spec = Specification("offset", _offset_extractor,
                             lower=-5e-3, upper=5e-3)
        engine = MonteCarloYield(fx, [spec], tech90)
        plain = engine.run(n_samples=48, seed=9)
        with obsprof.profiling(interval_s=0.001):
            profiled = engine.run(n_samples=48, seed=9)
        assert np.array_equal(plain.values["offset"],
                              profiled.values["offset"], equal_nan=True)
        assert np.array_equal(plain.passes, profiled.passes)


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
class TestDiff:
    def test_phase_deltas_and_only_in(self):
        a = {"solve.dc": {"count": 10, "total_s": 1.0, "self_s": 1.0},
             "gone": {"count": 1, "total_s": 0.1, "self_s": 0.1}}
        b = {"solve.dc": {"count": 10, "total_s": 2.0, "self_s": 2.0},
             "new": {"count": 1, "total_s": 0.2, "self_s": 0.2}}
        deltas = {d["phase"]: d for d in obsdiff.diff_phases(a, b)}
        assert deltas["solve.dc"]["delta_s"] == pytest.approx(1.0)
        assert deltas["solve.dc"]["rel"] == pytest.approx(1.0)
        assert deltas["new"]["only_in"] == "b"
        assert deltas["gone"]["only_in"] == "a"

    def test_phase_deltas_drop_noise(self):
        a = {"solve.dc": {"count": 10, "total_s": 1.0, "self_s": 1.0}}
        b = {"solve.dc": {"count": 10, "total_s": 1.0, "self_s": 1.0001}}
        assert obsdiff.diff_phases(a, b) == []

    def test_capability_flip_makes_incomparable(self):
        rec_a = {"run_id": "a", "capabilities": {"ckernel": True},
                 "config": {}, "wall_s": 1.0}
        rec_b = {"run_id": "b", "capabilities": {"ckernel": False},
                 "config": {}, "wall_s": 2.0}
        diff = obsdiff.diff_runs(rec_a, rec_b)
        assert not diff["comparable"]
        verdict = obsdiff.attribute_regression(diff)
        assert verdict["cause"] == "environment"
        assert "ckernel" in verdict["detail"]

    def test_config_change_attributed_to_workload(self):
        rec_a = {"run_id": "a", "capabilities": {}, "wall_s": 1.0,
                 "config": {"jobs": 1}}
        rec_b = {"run_id": "b", "capabilities": {}, "wall_s": 2.0,
                 "config": {"jobs": 4}}
        diff = obsdiff.diff_runs(rec_a, rec_b)
        assert not diff["comparable"]
        assert obsdiff.attribute_regression(diff)["cause"] == "workload"

    def test_phase_growth_attributed_to_code(self):
        rec = {"run_id": "a", "capabilities": {}, "config": {},
               "wall_s": 1.0,
               "phases": {"solve.dc": {"count": 1, "total_s": 1.0,
                                       "self_s": 1.0}}}
        worse = dict(rec, run_id="b", wall_s=2.0,
                     phases={"solve.dc": {"count": 1, "total_s": 2.0,
                                          "self_s": 2.0}})
        diff = obsdiff.diff_runs(rec, worse)
        assert diff["comparable"]
        verdict = obsdiff.attribute_regression(diff)
        assert verdict["cause"] == "code"
        assert "solve.dc" in verdict["detail"]

    def test_identical_runs_attribute_none(self):
        rec = {"run_id": "a", "capabilities": {}, "config": {},
               "wall_s": 1.0, "phases": {}, "metrics": {}}
        diff = obsdiff.diff_runs(rec, dict(rec, run_id="b"))
        assert diff["comparable"]
        assert obsdiff.attribute_regression(diff)["cause"] == "none"

    def test_metric_deltas_flatten_histograms(self):
        a = {"counters": {"retries": 1},
             "histograms": {"dur": {"count": 5, "sum": 1.0}}}
        b = {"counters": {"retries": 4},
             "histograms": {"dur": {"count": 9, "sum": 3.0}}}
        deltas = {d["metric"]: d["delta"]
                  for d in obsdiff.diff_metrics(a, b)}
        assert deltas["retries"] == 3
        assert deltas["dur.count"] == 4
        assert deltas["dur.sum"] == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Satellites: heartbeat edge cases, corrupt trace lines
# ----------------------------------------------------------------------
class TestHeartbeatEdgeCases:
    def _beat(self, payload):
        session = telemetry.TelemetrySession()
        stream = io.StringIO()
        _mc_heartbeat(session, stream)(payload)
        return stream.getvalue()

    def test_zero_elapsed_prints_dashes(self):
        out = self._beat({"done": 0, "total": 10, "elapsed_s": 0.0})
        assert "--" in out
        assert "inf" not in out.lower()

    def test_zero_completed_prints_dashes(self):
        out = self._beat({"done": 0, "total": 10, "elapsed_s": 5.0})
        assert "--" in out
        assert "inf" not in out.lower()

    def test_finished_run_has_zero_eta_and_newline(self):
        out = self._beat({"done": 10, "total": 10, "elapsed_s": 2.0})
        assert "ETA 0s" in out
        assert out.endswith("\n")
        assert "inf" not in out.lower()

    def test_normal_progress_has_rate_and_eta(self):
        out = self._beat({"done": 5, "total": 10, "elapsed_s": 5.0})
        assert "1.0/s" in out
        assert "ETA 5s" in out


class TestCorruptTraceLines:
    def _write_trace(self, path):
        with telemetry.session(meta={"command": "test"}) as session:
            with telemetry.span("run"):
                pass
            session.write_trace(path)

    def test_truncated_tail_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "span", "name": "half-writ')
        trace = telemetry.read_trace(path)
        assert trace.corrupt_lines == 1
        assert len(trace.spans) == 1  # the good span survived

    def test_corrupt_middle_line_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        lines = path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "not json at all")
        lines.insert(2, '"a bare string record"')
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        trace = telemetry.read_trace(path)
        assert trace.corrupt_lines == 2
        trace.validate()

    def test_summary_surfaces_warning(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        assert main(["trace", str(path)]) == 0
        captured = capsys.readouterr()
        assert "corrupt line" in captured.err
        assert "WARNING" in captured.out

    def test_clean_trace_reads_with_zero_corrupt_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._write_trace(path)
        assert telemetry.read_trace(path).corrupt_lines == 0


# ----------------------------------------------------------------------
# CLI integration: runs / trace --diff / mc recording
# ----------------------------------------------------------------------
class TestObsCli:
    def test_mc_records_run_and_diff_works(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["mc", "--samples", "16", "--quiet"]) == 0
        assert main(["mc", "--samples", "16", "--seed", "1",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--ids"]) == 0
        ids = capsys.readouterr().out.split()
        assert len(ids) == 2
        assert main(["runs", "show", ids[0]]) == 0
        assert "config.samples" in capsys.readouterr().out
        # Same config, different seed: comparable, exit 0.
        assert main(["trace", "--diff", ids[0], ids[1]]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out
        assert "attribution" in out

    def test_diff_flags_config_change_as_incomparable(self, tmp_path,
                                                      monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["mc", "--samples", "16", "--quiet"]) == 0
        assert main(["mc", "--samples", "32", "--quiet"]) == 0
        capsys.readouterr()
        main(["runs", "list", "--ids"])
        ids = capsys.readouterr().out.split()
        assert main(["trace", "--diff", ids[0], ids[1]]) == 2
        assert "config changes" in capsys.readouterr().out

    def test_trace_without_args_errors(self, capsys):
        assert main(["trace"]) == 1
        assert "FILE" in capsys.readouterr().err

    def test_diff_unknown_run_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["trace", "--diff", "aaaa", "bbbb"]) == 1
        assert "no run" in capsys.readouterr().err

    def test_runs_gc(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        registry = runlog.RunRegistry(tmp_path)
        for k in range(4):
            registry.record("mc", {"n": k}, t_start=float(k))
        assert main(["runs", "gc", "--keep", "1"]) == 0
        assert "removed 3" in capsys.readouterr().out
        assert len(registry.list()) == 1

    def test_runs_list_empty_registry(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "nothing"))
        assert main(["runs", "list"]) == 0
        assert "no run records" in capsys.readouterr().out

    def test_mc_profile_embeds_profile_in_trace(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        trace_path = tmp_path / "trace.jsonl"
        folded = tmp_path / "stacks.folded"
        assert main(["mc", "--samples", "48", "--quiet",
                     "--trace", str(trace_path),
                     "--profile", "--profile-interval", "0.001",
                     "--profile-out", str(folded)]) == 0
        trace = telemetry.read_trace(trace_path)
        assert trace.profile.get("n_samples", 0) > 0
        assert folded.exists()
        record = runlog.RunRegistry(tmp_path).list()[-1]
        assert record["profile"]  # phase breakdown persisted

    def test_mc_metrics_port_scrape(self, tmp_path, monkeypatch, capsys):
        # Port 0 binds an ephemeral port; the run is too short to
        # scrape externally, so this just asserts the endpoint wiring
        # does not disturb the run or its exit code.
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["mc", "--samples", "16", "--quiet",
                     "--metrics-port", "0"]) == 0


# ----------------------------------------------------------------------
# Regression gate: capability mismatch refusal
# ----------------------------------------------------------------------
def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "scripts" / "check_regression.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegressionGate:
    def _snapshot(self, median_s, capabilities, phases=None):
        snap = {"schema": 1,
                "benchmarks": {"test_perf_mc_yield_sample":
                               {"median_s": median_s, "mean_s": median_s,
                                "stddev_s": 0.0, "rounds": 5}},
                "capabilities": capabilities}
        if phases is not None:
            snap["phases"] = phases
        return snap

    def _write(self, tmp_path, index, snapshot):
        path = tmp_path / f"BENCH_{index}.json"
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        return path

    def test_capability_mismatch_refused(self, tmp_path, capsys):
        gate = _load_check_regression()
        self._write(tmp_path, 0, self._snapshot(0.01, {"ckernel": True}))
        self._write(tmp_path, 1, self._snapshot(0.01, {"ckernel": False}))
        rc = gate.main(["--dir", str(tmp_path),
                        "--goldens", str(tmp_path / "nogoldens")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "capability mismatch" in out
        assert "ckernel" in out

    def test_matching_capabilities_compare_normally(self, tmp_path,
                                                    capsys):
        gate = _load_check_regression()
        caps = {"ckernel": True, "sparse": True}
        self._write(tmp_path, 0, self._snapshot(0.010, caps))
        self._write(tmp_path, 1, self._snapshot(0.011, caps))
        rc = gate.main(["--dir", str(tmp_path),
                        "--goldens", str(tmp_path / "nogoldens")])
        assert rc == 0
        assert "trajectory OK" in capsys.readouterr().out

    def test_regression_names_grown_phase(self, tmp_path, capsys):
        gate = _load_check_regression()
        caps = {"ckernel": True}
        phases_a = {"mc_yield_sample":
                    {"solve.dc": {"count": 1, "total_s": 0.008,
                                  "self_s": 0.008}}}
        phases_b = {"mc_yield_sample":
                    {"solve.dc": {"count": 1, "total_s": 0.030,
                                  "self_s": 0.030}}}
        self._write(tmp_path, 0, self._snapshot(0.010, caps, phases_a))
        self._write(tmp_path, 1, self._snapshot(0.030, caps, phases_b))
        rc = gate.main(["--dir", str(tmp_path),
                        "--goldens", str(tmp_path / "nogoldens")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "grew: solve.dc" in out

    def test_legacy_snapshots_without_capabilities_still_compare(
            self, tmp_path, capsys):
        gate = _load_check_regression()
        for index, median in ((0, 0.010), (1, 0.010)):
            snap = self._snapshot(median, None)
            del snap["capabilities"]
            self._write(tmp_path, index, snap)
        rc = gate.main(["--dir", str(tmp_path),
                        "--goldens", str(tmp_path / "nogoldens")])
        assert rc == 0
