"""Tests for the deterministic parallel execution layer.

Covers the :mod:`repro.parallel` primitives and their wiring through
the analysis engines: the ISSUE-1 acceptance contract is that
``jobs=N`` is bit-identical to ``jobs=1`` for a fixed seed, and that a
worker exception surfaces with the global sample index.
"""

import numpy as np
import pytest

from repro.circuit import dc_operating_point
from repro.circuits import differential_pair, simple_current_mirror
from repro.core import (
    CornerAnalysis,
    MonteCarloYield,
    SampleEvaluationError,
    Specification,
    sweep,
)
from repro.parallel import (
    ParallelMap,
    chunk_ranges,
    clone_fixture,
    resolve_jobs,
    spawn_seed_sequences,
)
from repro.variability import MismatchSampler, PelgromModel


def _square(x):
    """Module-level so the process backend can pickle it."""
    return x * x


def _mirror_iout(fixture):
    """Output current of the current-mirror fixture [A]."""
    return -dc_operating_point(fixture.circuit).source_current("vout")


class TestParallelMap:
    def test_serial_preserves_order(self):
        out = ParallelMap("serial").map(_square, range(10))
        assert out == [x * x for x in range(10)]

    def test_thread_matches_serial(self):
        items = list(range(23))
        serial = ParallelMap("serial").map(_square, items)
        threaded = ParallelMap("thread", n_jobs=4).map(_square, items)
        assert serial == threaded

    def test_process_backend(self):
        out = ParallelMap("process", n_jobs=2).map(_square, [1, 2, 3])
        assert out == [1, 4, 9]

    def test_auto_is_serial_for_one_job(self):
        assert ParallelMap("auto", n_jobs=1).backend == "serial"
        assert ParallelMap("auto", n_jobs=4).backend == "thread"

    def test_empty_input(self):
        assert ParallelMap("thread", n_jobs=4).map(_square, []) == []

    def test_exception_propagates(self):
        def boom(x):
            raise RuntimeError(f"task {x}")

        with pytest.raises(RuntimeError, match="task"):
            ParallelMap("thread", n_jobs=2).map(boom, [0, 1, 2])

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelMap("gpu")

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(-1) == resolve_jobs(None)
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunking:
    def test_chunk_ranges_cover_everything(self):
        ranges = chunk_ranges(10, 4)
        assert ranges == [(0, 4), (4, 8), (8, 10)]

    def test_single_chunk(self):
        assert chunk_ranges(3, 100) == [(0, 3)]

    def test_grid_independent_of_jobs(self):
        # The chunk grid is a pure function of (n, chunk_size) — THE
        # property that makes jobs=1 and jobs=N draw identical variates.
        assert chunk_ranges(100, 7) == chunk_ranges(100, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(0, 4)
        with pytest.raises(ValueError):
            chunk_ranges(4, 0)

    def test_seed_sequences_independent(self):
        seqs = spawn_seed_sequences(42, 8)
        draws = [np.random.default_rng(s).normal() for s in seqs]
        assert len(set(draws)) == len(draws)
        again = [np.random.default_rng(s).normal()
                 for s in spawn_seed_sequences(42, 8)]
        assert draws == again


class TestCloneFixture:
    def test_clone_is_independent(self, tech90):
        fx = differential_pair(tech90)
        clone = clone_fixture(fx)
        clone.circuit.mosfets[0].variation.delta_vt_v = 0.1
        assert fx.circuit.mosfets[0].variation.delta_vt_v == 0.0

    def test_clone_solves_identically(self, tech90):
        fx = simple_current_mirror(tech90)
        assert _mirror_iout(clone_fixture(fx)) == _mirror_iout(fx)


class TestParallelYield:
    def test_jobs4_bit_identical_to_jobs1(self, tech90):
        # The ISSUE-1 acceptance criterion, verbatim: 500 samples,
        # jobs=4 vs jobs=1, same seed, bit-identical values.
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = Specification("iout", _mirror_iout, lower=50e-6, upper=200e-6)
        mc = MonteCarloYield(fx, [spec], tech90)
        serial = mc.run(n_samples=500, seed=11, jobs=1)
        parallel = mc.run(n_samples=500, seed=11, jobs=4)
        assert np.array_equal(serial.values["iout"], parallel.values["iout"])
        assert np.array_equal(serial.passes, parallel.passes)
        assert np.array_equal(serial.spec_passes["iout"],
                              parallel.spec_passes["iout"])

    def test_thread_and_process_backends_match(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = Specification("iout", _mirror_iout, lower=0.0)
        mc = MonteCarloYield(fx, [spec], tech90)
        serial = mc.run(n_samples=24, seed=5, jobs=1, chunk_size=8)
        threaded = mc.run(n_samples=24, seed=5, jobs=3, backend="thread",
                          chunk_size=8)
        assert np.array_equal(serial.values["iout"], threaded.values["iout"])
        # Module-level extractor → the chunk tasks pickle, so the
        # process backend must agree too.
        procs = mc.run(n_samples=24, seed=5, jobs=2, backend="process",
                       chunk_size=8)
        assert np.array_equal(serial.values["iout"], procs.values["iout"])

    def test_worker_exception_carries_sample_index(self, tech90):
        fx = differential_pair(tech90)
        calls = {"n": 0}

        def explodes_on_third(fixture):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("synthetic worker crash")
            return 0.0

        spec = Specification("m", explodes_on_third, lower=-1.0, upper=1.0)
        mc = MonteCarloYield(fx, [spec], tech90)
        with pytest.raises(SampleEvaluationError,
                           match=r"sample 2 .*'m'.*worker crash") as err:
            mc.run(n_samples=6, seed=0, jobs=1, chunk_size=10)
        assert err.value.sample_index == 2
        assert err.value.spec_name == "m"
        assert isinstance(err.value.original, RuntimeError)

    def test_failure_counts_record_exception_types(self, tech90):
        fx = differential_pair(tech90)

        def never_converges(fixture):
            raise ValueError("synthetic evaluation failure")

        spec = Specification("boom", never_converges, lower=0.0)
        result = MonteCarloYield(fx, [spec], tech90).run(n_samples=7, seed=0)
        assert result.failure_counts == {"ValueError": 7}
        assert np.all(np.isnan(result.values["boom"]))
        assert result.yield_fraction == 0.0

    def test_clean_run_has_no_failures(self, tech90):
        fx = simple_current_mirror(tech90)
        spec = Specification("iout", _mirror_iout, lower=0.0)
        result = MonteCarloYield(fx, [spec], tech90).run(n_samples=5, seed=0)
        assert result.failure_counts == {}


class TestParallelCornersAndSweeps:
    def test_corners_parallel_matches_serial(self, tech90):
        fx = simple_current_mirror(tech90, w_m=2e-6, l_m=0.2e-6)
        spec = Specification("iout", _mirror_iout, lower=50e-6, upper=200e-6)
        analysis = CornerAnalysis(fx, [spec], tech90,
                                  vdd_source_name="vout",
                                  vdd_scales=(0.9, 1.1),
                                  temperatures_k=(300.0, 398.15))
        serial = analysis.run()
        parallel = analysis.run(jobs=4)
        assert [p.label for p in serial.points] == \
            [p.label for p in parallel.points]
        assert serial.values == parallel.values

    def test_sweep_parallel_matches_serial(self):
        metrics = {"sq": lambda v: v * v, "neg": lambda v: -v}
        grid = np.linspace(0.0, 1.0, 9)
        serial = sweep("x", grid, metrics)
        parallel = sweep("x", grid, metrics, jobs=4, backend="thread")
        for name in metrics:
            assert np.array_equal(serial.values[name], parallel.values[name])


class TestSamplerBatchApi:
    def test_batch_matches_scalar_distribution(self, tech90):
        w, l = 1e-6, 1e-6
        sampler = MismatchSampler(tech90, np.random.default_rng(0))
        dvt, beta, gamma = sampler.sample_devices_batch(w, l, 4000)
        assert dvt.shape == beta.shape == gamma.shape == (4000,)
        expected = sampler.sigma_single_vt_v(w, l)
        assert np.std(dvt) == pytest.approx(expected, rel=0.1)
        assert np.mean(beta) == pytest.approx(1.0, abs=0.01)
        assert np.all(beta >= 0.05) and np.all(gamma >= 0.05)

    def test_batch_pair_sigma_matches_eq1(self, tech90):
        w, l = 1e-6, 1e-6
        sampler = MismatchSampler(tech90, np.random.default_rng(1))
        draws = sampler.sample_pair_delta_vt_batch_v(w, l, 4000)
        expected = PelgromModel.for_technology(tech90).sigma_delta_vt_v(w, l)
        assert np.std(draws) == pytest.approx(expected, rel=0.1)

    def test_batch_rejects_bad_count(self, tech90):
        sampler = MismatchSampler(tech90, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sampler.sample_devices_batch(1e-6, 1e-6, 0)
        with pytest.raises(ValueError):
            sampler.sample_pair_delta_vt_batch_v(1e-6, 1e-6, 0)
