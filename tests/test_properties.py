"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import units
from repro.aging import weibull_cdf, weibull_quantile
from repro.aging.base import power_law_advance
from repro.circuit import Mosfet, Waveform
from repro.circuit.mosfet import _log1pexp, _softplus
from repro.solutions import DacConfig, CurrentSteeringDac, sspa_sequence
from repro.technology import get_node
from repro.variability import PelgromModel

TECH = get_node("90nm")
PELGROM = PelgromModel.for_technology(TECH)

voltages = st.floats(min_value=-2.0, max_value=2.0,
                     allow_nan=False, allow_infinity=False)
positive_voltages = st.floats(min_value=0.0, max_value=2.0,
                              allow_nan=False, allow_infinity=False)


def make_nmos():
    return Mosfet.from_technology("m", "d", "g", "s", "b", TECH, "n",
                                  w_m=1e-6, l_m=0.09e-6)


class TestNumericHelpers:
    @given(st.floats(min_value=-500.0, max_value=500.0))
    def test_softplus_positive_and_bounded(self, x):
        y = _softplus(x)
        assert y >= 0.0
        assert y >= x - 1e-12
        assert y <= abs(x) + math.log(2.0) + 1e-12

    @given(st.floats(min_value=-500.0, max_value=500.0))
    def test_log1pexp_matches_reference(self, x):
        if abs(x) < 30.0:
            assert _log1pexp(x) == pytest.approx(math.log1p(math.exp(x)),
                                                 rel=1e-9)
        else:
            assert _log1pexp(x) == pytest.approx(max(x, 0.0), abs=1e-9)


class TestMosfetInvariants:
    @given(vgs=voltages, vds=positive_voltages, vbs=st.floats(-1.0, 0.0))
    @settings(max_examples=200, deadline=None)
    def test_nmos_forward_current_non_negative(self, vgs, vds, vbs):
        m = make_nmos()
        assert m.drain_current(vgs, vds, vbs) >= -1e-15

    @given(vgs1=voltages, vgs2=voltages, vds=positive_voltages)
    @settings(max_examples=150, deadline=None)
    def test_current_monotone_in_vgs(self, vgs1, vgs2, vds):
        assume(vgs1 < vgs2)
        m = make_nmos()
        assert (m.drain_current(vgs2, vds, 0.0)
                >= m.drain_current(vgs1, vds, 0.0) - 1e-15)

    @given(vgs=st.floats(0.3, 1.5), vds1=positive_voltages,
           vds2=positive_voltages)
    @settings(max_examples=150, deadline=None)
    def test_current_monotone_in_vds(self, vgs, vds1, vds2):
        assume(vds1 < vds2)
        m = make_nmos()
        assert (m.drain_current(vgs, vds2, 0.0)
                >= m.drain_current(vgs, vds1, 0.0) - 1e-15)

    @given(vgs=st.floats(0.3, 1.5), vds=st.floats(0.1, 1.5),
           dvt=st.floats(0.0, 0.3))
    @settings(max_examples=150, deadline=None)
    def test_degradation_never_increases_current(self, vgs, vds, dvt):
        m = make_nmos()
        fresh = m.drain_current(vgs, vds, 0.0)
        m.degradation.delta_vt_v = dvt
        m.degradation.beta_factor = 0.9
        aged = m.drain_current(vgs, vds, 0.0)
        assert aged <= fresh + 1e-15


class TestAnalyticJacobianProperties:
    """Analytic ``linearize`` agrees with the central-FD stencil.

    Tolerance derivation: the model transcendentals vary on the
    moderate-inversion scale ``s = 2·n·φt ≈ 70 mV``, so the central
    difference with step ``h = _FD_STEP_V = 1e-6 V`` carries a relative
    truncation error of order ``h²/(6·s²) ≈ 3e-11`` plus a subtraction
    roundoff term of order ``ε·s/h ≈ 1e-11``.  A relative band of 1e-6
    on the dominant conductance scale at the bias point leaves four
    decades of safety while still failing loudly on a wrong derivative
    (which would be off at O(1)).  The only analytic/FD disagreement by
    construction is the hard gmb = 0 beyond the body clamp — the ±h
    neighbourhood of the clamp kink is assumed away.
    """

    @given(polarity=st.sampled_from(["n", "p"]),
           tech_name=st.sampled_from(["180nm", "90nm", "65nm"]),
           vgs_n=st.floats(-0.5, 1.5), vds_n=st.floats(-1.0, 1.5),
           vbs_n=st.floats(-1.2, 1.2))
    @settings(max_examples=300, deadline=None)
    def test_linearize_matches_central_fd(self, polarity, tech_name,
                                          vgs_n, vds_n, vbs_n):
        from repro.circuit.mosfet import _FD_STEP_V

        tech = get_node(tech_name)
        m = Mosfet.from_technology("m", "d", "g", "s", "b", tech, polarity,
                                   w_m=12.0 * tech.wmin_m,
                                   l_m=2.0 * tech.lmin_m)
        # FD differentiates across the body-clamp kink within ±h of it;
        # the analytic branch is exact on either side but not inside.
        cap = m.params.phi_v - 0.05
        assume(abs(vbs_n - cap) > 4.0 * _FD_STEP_V)

        sign = 1.0 if polarity == "n" else -1.0
        vgs, vds, vbs = sign * vgs_n, sign * vds_n, sign * vbs_n
        ids_a, gm_a, gds_a, gmb_a = m.linearize(vgs, vds, vbs)
        ids_f, gm_f, gds_f, gmb_f = m.linearize_fd(vgs, vds, vbs)

        # Identical current expression, different evaluation order only.
        assert ids_a == pytest.approx(ids_f, rel=1e-12, abs=1e-18)

        phit = units.thermal_voltage(m.params.temperature_k)
        s_v = 2.0 * m.params.n_slope * phit
        g_scale = max(abs(ids_f) / s_v, abs(gm_f), abs(gds_f),
                      abs(gmb_f), 1e-18)
        for g_a, g_f, name in ((gm_a, gm_f, "gm"), (gds_a, gds_f, "gds"),
                               (gmb_a, gmb_f, "gmb")):
            assert abs(g_a - g_f) <= 1e-6 * g_scale, (
                f"{name}: analytic={g_a:.12e} fd={g_f:.12e} "
                f"scale={g_scale:.3e}")

    @given(vgs_n=st.floats(-0.5, 1.5), vds_n=st.floats(0.0, 1.5),
           vbs_n=st.floats(-1.2, 0.2), dvt=st.floats(0.0, 0.25),
           beta_fac=st.floats(0.7, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_fd_agreement_survives_variation_and_aging(self, vgs_n, vds_n,
                                                       vbs_n, dvt, beta_fac):
        """The closed forms track the *effective* parameters — mismatch
        offsets and degradation factors must not desynchronize them
        from the underlying current equation."""
        from repro.circuit.mosfet import _FD_STEP_V

        m = make_nmos()
        assume(abs(vbs_n - (m.params.phi_v - 0.05)) > 4.0 * _FD_STEP_V)
        m.variation.delta_vt_v = dvt * 0.1
        m.variation.beta_factor = beta_fac
        m.degradation.delta_vt_v = dvt
        m.degradation.beta_factor = beta_fac
        ids_a, gm_a, gds_a, gmb_a = m.linearize(vgs_n, vds_n, vbs_n)
        ids_f, gm_f, gds_f, gmb_f = m.linearize_fd(vgs_n, vds_n, vbs_n)
        phit = units.thermal_voltage(m.params.temperature_k)
        g_scale = max(abs(ids_f) / (2.0 * m.params.n_slope * phit),
                      abs(gm_f), abs(gds_f), abs(gmb_f), 1e-18)
        assert ids_a == pytest.approx(ids_f, rel=1e-12, abs=1e-18)
        assert abs(gm_a - gm_f) <= 1e-6 * g_scale
        assert abs(gds_a - gds_f) <= 1e-6 * g_scale
        assert abs(gmb_a - gmb_f) <= 1e-6 * g_scale


class TestPelgromInvariants:
    geometries = st.floats(min_value=0.13, max_value=100.0)

    @given(w=geometries, l=geometries, scale=st.floats(1.1, 10.0))
    @settings(max_examples=100, deadline=None)
    def test_sigma_decreases_with_area(self, w, l, scale):
        s_small = PELGROM.sigma_delta_vt_v(w * 1e-6, l * 1e-6)
        s_big = PELGROM.sigma_delta_vt_v(w * scale * 1e-6, l * scale * 1e-6)
        assert s_big < s_small

    @given(w=geometries, l=geometries,
           d1=st.floats(0.0, 1e-2), d2=st.floats(0.0, 1e-2))
    @settings(max_examples=100, deadline=None)
    def test_sigma_monotone_in_distance(self, w, l, d1, d2):
        assume(d1 < d2)
        assert (PELGROM.sigma_delta_vt_v(w * 1e-6, l * 1e-6, d1)
                <= PELGROM.sigma_delta_vt_v(w * 1e-6, l * 1e-6, d2))

    @given(w=geometries, l=geometries)
    @settings(max_examples=100, deadline=None)
    def test_sigma_positive_and_finite(self, w, l):
        sigma = PELGROM.sigma_delta_vt_v(w * 1e-6, l * 1e-6)
        assert 0.0 < sigma < 1.0


class TestPowerLawInvariants:
    @given(k=st.floats(1e-9, 1e-1), n=st.floats(0.05, 0.95),
           steps=st.lists(st.floats(1.0, 1e7), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_split_accumulation_equals_total(self, k, n, steps):
        """Advancing in pieces at CONSTANT stress equals one shot."""
        delta = 0.0
        for dt in steps:
            delta = power_law_advance(delta, k, n, dt)
        total = k * sum(steps) ** n
        assert delta == pytest.approx(total, rel=1e-6)

    @given(k1=st.floats(1e-9, 1e-3), k2=st.floats(1e-9, 1e-3),
           n=st.floats(0.1, 0.9), dt=st.floats(1.0, 1e6))
    @settings(max_examples=100, deadline=None)
    def test_damage_never_decreases(self, k1, k2, n, dt):
        d1 = power_law_advance(0.0, k1, n, dt)
        d2 = power_law_advance(d1, k2, n, dt)
        assert d2 >= d1


class TestWeibullInvariants:
    @given(eta=st.floats(1e-3, 1e12), shape=st.floats(0.5, 5.0),
           t=st.floats(0.0, 1e15))
    @settings(max_examples=150, deadline=None)
    def test_cdf_in_unit_interval(self, eta, shape, t):
        f = weibull_cdf(t, eta, shape)
        assert 0.0 <= f <= 1.0

    @given(eta=st.floats(1e-3, 1e12), shape=st.floats(0.5, 5.0),
           q=st.floats(1e-6, 1.0 - 1e-6))
    @settings(max_examples=150, deadline=None)
    def test_quantile_cdf_roundtrip(self, eta, shape, q):
        t = weibull_quantile(q, eta, shape)
        assert weibull_cdf(t, eta, shape) == pytest.approx(q, rel=1e-6)

    @given(eta=st.floats(1e-3, 1e12), shape=st.floats(0.5, 5.0),
           t1=st.floats(0.0, 1e15), t2=st.floats(0.0, 1e15))
    @settings(max_examples=100, deadline=None)
    def test_cdf_monotone(self, eta, shape, t1, t2):
        assume(t1 < t2)
        assert weibull_cdf(t1, eta, shape) <= weibull_cdf(t2, eta, shape)


class TestWaveformInvariants:
    wf_values = st.lists(st.floats(-10.0, 10.0), min_size=2, max_size=50)

    @given(values=wf_values)
    @settings(max_examples=100, deadline=None)
    def test_mean_between_extrema(self, values):
        t = np.linspace(0.0, 1.0, len(values))
        w = Waveform(t, np.array(values))
        assert w.trough() - 1e-12 <= w.mean() <= w.peak() + 1e-12

    @given(values=wf_values)
    @settings(max_examples=100, deadline=None)
    def test_rms_at_least_abs_mean(self, values):
        t = np.linspace(0.0, 1.0, len(values))
        w = Waveform(t, np.array(values))
        assert w.rms() >= abs(w.mean()) - 1e-9

    @given(values=wf_values, threshold=st.floats(-20.0, 20.0))
    @settings(max_examples=100, deadline=None)
    def test_duty_in_unit_interval(self, values, threshold):
        t = np.linspace(0.0, 1.0, len(values))
        w = Waveform(t, np.array(values))
        assert 0.0 <= w.duty_above(threshold) <= 1.0


class TestSspaInvariants:
    @given(seed=st.integers(0, 10_000), sigma=st.floats(1e-4, 5e-2),
           n_sources=st.sampled_from([7, 15, 31]))
    @settings(max_examples=50, deadline=None)
    def test_sequence_is_permutation(self, seed, sigma, n_sources):
        errors = np.random.default_rng(seed).normal(0.0, sigma, n_sources)
        seq = sspa_sequence(errors)
        assert sorted(seq.tolist()) == list(range(n_sources))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_calibration_never_moves_endpoints(self, seed):
        cfg = DacConfig(n_bits=8, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(seed))
        out_before = dac.transfer_lsb()
        seq = sspa_sequence(dac.unary_errors)
        out_after = dac.transfer_lsb(seq)
        assert out_after[0] == pytest.approx(out_before[0])
        assert out_after[-1] == pytest.approx(out_before[-1])

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_inl_never_worse_than_3x(self, seed):
        """SSPA may rarely not help, but must never blow INL up."""
        cfg = DacConfig(n_bits=8, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(seed))
        before = dac.max_inl_lsb()
        after = dac.max_inl_lsb(sspa_sequence(dac.unary_errors))
        assert after <= 3.0 * before + 1e-9


class TestParserRoundtripProperties:
    from repro.circuit import format_value, parse_value

    @given(value=st.floats(min_value=1e-15, max_value=1e12,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_format_parse_roundtrip(self, value):
        from repro.circuit import format_value, parse_value

        assert parse_value(format_value(value)) == pytest.approx(
            value, rel=1e-5)

    @given(value=st.floats(min_value=-1e12, max_value=-1e-15,
                           allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_negative_roundtrip(self, value):
        from repro.circuit import format_value, parse_value

        assert parse_value(format_value(value)) == pytest.approx(
            value, rel=1e-5)


class TestSpectrumProperties:
    @given(seed=st.integers(0, 10_000), n=st.sampled_from([256, 500, 1024]))
    @settings(max_examples=50, deadline=None)
    def test_parseval_energy_match(self, seed, n):
        """Single-sided amplitude spectrum conserves signal power."""
        rng = np.random.default_rng(seed)
        values = rng.normal(0.0, 1.0, n)
        t = np.linspace(0.0, 1.0, n)
        w = Waveform(t, values)
        freqs, amps = w.spectrum()
        # Power from the spectrum: DC² + Σ (A_k/√2)².
        power_spec = amps[0] ** 2 + 0.5 * np.sum(amps[1:] ** 2)
        power_time = float(np.mean(values ** 2))
        # rFFT of even-length signals puts Nyquist in the last bin; the
        # single-sided doubling slightly overcounts it — tolerate a few %.
        assert power_spec == pytest.approx(power_time, rel=0.05)

    @given(offset=st.floats(-5.0, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_dc_bin_is_mean(self, offset):
        t = np.linspace(0.0, 1.0, 512)
        w = Waveform(t, np.full(512, offset))
        freqs, amps = w.spectrum()
        assert amps[0] == pytest.approx(abs(offset), abs=1e-9)
        assert np.all(amps[1:] < 1e-9)


class TestOracleProperties:
    """Solver-vs-analytic error stays inside the documented bands over
    randomly drawn oracle parameters (see docs/verification.md)."""

    @given(n_rungs=st.integers(2, 8),
           r_ohms=st.floats(10.0, 1e6),
           vdd=st.floats(0.5, 5.0))
    @settings(max_examples=15, deadline=None)
    def test_ladder_within_band_for_any_geometry(self, n_rungs, r_ohms,
                                                 vdd):
        from repro.verify import check_oracle
        from repro.verify.oracles import ResistiveLadderOracle

        oracle = ResistiveLadderOracle(n_rungs=n_rungs, r_ohms=r_ohms,
                                       vdd_v=vdd)
        for dev in check_oracle(oracle):
            assert dev.passed, (f"{dev.path}:{dev.quantity} "
                                f"err={dev.error:.3g} bound={dev.bound:.3g}")

    @given(region=st.sampled_from(["subthreshold", "triode", "saturation"]),
           w_factor=st.floats(1.0, 40.0),
           tech_name=st.sampled_from(["180nm", "90nm", "65nm"]))
    @settings(max_examples=12, deadline=None)
    def test_mosfet_op_within_newton_band(self, region, w_factor,
                                          tech_name):
        from repro.verify import check_oracle
        from repro.verify.oracles import MosfetRegionOracle

        tech = get_node(tech_name)
        oracle = MosfetRegionOracle(region, tech_name=tech_name,
                                    w_m=w_factor * tech.wmin_m)
        for dev in check_oracle(oracle, paths=["dc.scalar"]):
            assert dev.passed, (f"{dev.quantity} err={dev.error:.3g} "
                                f"bound={dev.bound:.3g}")

    @given(r_ohms=st.floats(100.0, 1e5),
           c_f=st.floats(1e-12, 1e-9),
           vstep=st.floats(0.5, 3.0),
           points_per_tau=st.sampled_from([25, 50]))
    @settings(max_examples=10, deadline=None)
    def test_rc_integrators_hold_their_order_bands(self, r_ohms, c_f,
                                                   vstep, points_per_tau):
        from repro.verify import check_oracle
        from repro.verify.oracles import RcStepOracle

        oracle = RcStepOracle(r_ohms=r_ohms, c_f=c_f, vstep_v=vstep,
                              points_per_tau=points_per_tau)
        for dev in check_oracle(oracle):
            assert dev.passed, (f"{dev.path}:{dev.quantity} "
                                f"err={dev.error:.3g} bound={dev.bound:.3g}")

    @given(w_um=st.floats(0.5, 8.0), l_um=st.floats(0.5, 8.0),
           seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_pelgrom_sampler_within_sampling_band(self, w_um, l_um, seed):
        from repro.verify import check_oracle
        from repro.verify.oracles import PelgromSigmaOracle

        oracle = PelgromSigmaOracle(w_um=w_um, l_um=l_um,
                                    n_samples=800, seed=seed)
        for dev in check_oracle(oracle):
            assert dev.passed, (f"{dev.quantity} err={dev.error:.3g} "
                                f"bound={dev.bound:.3g}")


class TestLifetimeCrossingProperties:
    @given(seed=st.integers(0, 10_000),
           bound=st.floats(0.1, 0.9))
    @settings(max_examples=100, deadline=None)
    def test_crossing_bracketed_by_samples(self, seed, bound):
        """The interpolated crossing lies inside the bracketing epochs."""
        from repro.core import time_to_spec_violation

        rng = np.random.default_rng(seed)
        times = np.concatenate(([0.0], np.sort(rng.uniform(1.0, 1e8, 6))))
        # Strictly decreasing trajectory from 1.0 toward 0.
        drops = np.sort(rng.uniform(0.0, 1.0, 7))[::-1]
        values = drops / drops[0]
        t_fail = time_to_spec_violation(times, values, lower=bound)
        if t_fail in (0.0, float("inf")):
            return
        k = int(np.searchsorted(times, t_fail))
        assert times[k - 1] <= t_fail <= times[k] * (1 + 1e-9)
