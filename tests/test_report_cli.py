"""Tests for the report renderer and the CLI."""

import math

import pytest

from repro.cli import main
from repro.report import (
    format_cell,
    render_key_values,
    render_section,
    render_table,
)


class TestFormatCell:
    def test_none_and_bool(self):
        assert format_cell(None) == "-"
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_floats(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1.2345678) == "1.235"
        assert format_cell(1.5e-7) == "1.500e-07"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("nan")) == "nan"

    def test_strings_and_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderHelpers:
    def test_section(self):
        out = render_section("title", "body")
        assert out.startswith("title\n=====\n")

    def test_key_values_aligned(self):
        out = render_key_values([("a", 1), ("long_key", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_key_values_empty(self):
        assert render_key_values([]) == ""


class TestCli:
    def test_nodes(self, capsys):
        assert main(["nodes"]) == 0
        out = capsys.readouterr().out
        assert "65nm" in out
        assert "A_VT" in out

    def test_node_detail(self, capsys):
        assert main(["node", "90nm"]) == 0
        out = capsys.readouterr().out
        assert "mismatch (Eq 1)" in out
        assert "degradation" in out

    def test_unknown_node_is_error(self, capsys):
        assert main(["node", "7nm"]) == 1
        assert "error" in capsys.readouterr().err

    def test_aging_outlook(self, capsys):
        assert main(["aging", "65nm"]) == 0
        out = capsys.readouterr().out
        assert "NBTI" in out
        assert "TDDB" in out

    def test_op_on_netlist(self, tmp_path, capsys):
        netlist = tmp_path / "div.cir"
        netlist.write_text("divider\nV1 in 0 2.0\nR1 in mid 1k\n"
                           "R2 mid 0 1k\n")
        assert main(["op", str(netlist)]) == 0
        out = capsys.readouterr().out
        assert "mid" in out
        assert "1" in out  # 1.0 V at mid

    def test_op_with_mosfets_needs_tech(self, tmp_path, capsys):
        netlist = tmp_path / "m.cir"
        netlist.write_text("m\nVd d 0 1.0\nM1 d d 0 0 n w=1u l=0.09u\n")
        assert main(["op", str(netlist)]) == 1
        assert main(["op", str(netlist), "--tech", "90nm"]) == 0
        out = capsys.readouterr().out
        assert "M1" in out

    def test_tran_on_netlist(self, tmp_path, capsys):
        netlist = tmp_path / "rc.cir"
        netlist.write_text("rc\nV1 in 0 sin(0.5 0.5 1meg)\n"
                           "R1 in out 1k\nC1 out 0 1n\n")
        assert main(["tran", str(netlist), "--tstop", "5e-6",
                     "--dt", "1e-8", "--nodes", "out"]) == 0
        out = capsys.readouterr().out
        assert "out" in out
        assert "mean" in out

    def test_missing_file_is_error(self, capsys):
        assert main(["op", "/nonexistent/file.cir"]) == 1
        assert "error" in capsys.readouterr().err
