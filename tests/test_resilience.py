"""Resilience supervisor: probing, breakers, guards, budgets, chaos.

The contract under test (docs/robustness.md): every accelerator
failure — injected or organic — ends in a *recorded degradation*, never
a hang, a crash, or a silently wrong answer.  Chaos scenarios force
each PR-6 accelerator seam to fail (compile failure, singular sparse
factorization, corrupted batch lanes, hung worker under a wall-clock
budget) and assert the run completes on the proven fallback ladder with
the quarantine visible in the ledger.  Class names carry ``Chaos`` so
CI's chaos-smoke job can select them with ``-k Chaos``.
"""

import os
import pickle
import shutil
import time

import numpy as np
import pytest

from repro import faultinject, resilience
from repro.checkpoint import CheckpointError, RunInterrupted
from repro.circuit import _ckernel, dc_sweep
from repro.circuit import mna
from repro.circuit.batch import BatchUnsupportedError
from repro.circuits import differential_pair, input_referred_offset_v
from repro.core import MonteCarloYield, Specification
from repro.faultinject import WorkerKilledError
from repro.parallel import FailureLedger, SampleTimeoutError
from repro.resilience import (
    CAPABILITY_NAMES,
    BreakerOpenError,
    BudgetExpiredError,
    CircuitBreaker,
    DeadlineBudget,
    admit_lanes,
    breaker_threshold,
    slab_bytes,
)


@pytest.fixture(autouse=True)
def fresh_supervisor():
    """Every test starts and ends with a clean supervisor: no breaker
    state, no pushed vetoes, no injected faults leaking across tests."""
    resilience.reset_supervisor()
    yield
    faultinject.clear_ckernel_compile_failure()
    faultinject.clear_sparse_singular()
    resilience.reset_supervisor()


def _offset(fixture) -> float:
    return input_referred_offset_v(fixture)


def _slow_offset(fixture) -> float:
    """Module-level (picklable) extractor slow enough that a small
    ``--budget`` expires mid-run but each sample still completes."""
    time.sleep(0.05)
    return input_referred_offset_v(fixture)


def _hanging_offset(fixture) -> float:
    """Module-level (picklable) extractor that hangs forever on sample
    1 — models a wedged worker the budget must route around."""
    if faultinject.current_sample() == 1:
        time.sleep(3600.0)
    return input_referred_offset_v(fixture)


def offset_spec(extractor=_offset, limit_v=5e-3):
    return Specification("offset", extractor, lower=-limit_v,
                         upper=limit_v)


def _sweep_states(solutions) -> np.ndarray:
    return np.stack([sol.x for sol in solutions])


# ----------------------------------------------------------------------
# Circuit breaker unit behavior
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_trips_at_threshold(self):
        b = CircuitBreaker("x", threshold=3)
        assert not b.record_failure("one")
        assert not b.record_failure("two")
        assert b.allows()
        assert b.record_failure("three")
        assert b.tripped and not b.allows()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("x", threshold=3)
        b.record_failure("a")
        b.record_failure("b")
        b.record_success()
        b.record_failure("c")
        b.record_failure("d")
        assert not b.tripped
        assert b.record_failure("e")
        assert b.total_failures == 5

    def test_trip_is_one_way_and_on_trip_fires_once(self):
        fired = []
        b = CircuitBreaker("x", threshold=1, on_trip=fired.append)
        b.record_failure("boom")
        b.record_failure("boom again")
        b.trip("manual")
        assert fired == [b]
        b.record_success()  # a late success must not re-close it
        assert b.tripped

    def test_threshold_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        assert breaker_threshold() == 1
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        assert breaker_threshold() == 1  # floor at 1
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "junk")
        assert breaker_threshold() == resilience.DEFAULT_BREAKER_THRESHOLD

    def test_supervisor_require_raises_after_trip(self):
        sup = resilience.supervisor()
        for _ in range(breaker_threshold()):
            sup.record_failure("batch", "injected")
        assert not sup.allows("batch")
        with pytest.raises(BreakerOpenError) as excinfo:
            sup.require("batch")
        assert excinfo.value.capability == "batch"
        # The trip landed exactly one run-level event.
        kinds = [e["kind"] for e in sup.drain_events()]
        assert kinds.count("breaker-tripped") == 1


# ----------------------------------------------------------------------
# Capability probing
# ----------------------------------------------------------------------
class TestCapabilities:
    def test_snapshot_covers_every_capability(self):
        snap = resilience.snapshot()
        assert set(snap["capabilities"]) == set(CAPABILITY_NAMES)
        for state in snap["capabilities"].values():
            assert isinstance(state["available"], bool)
            assert state["detail"]
            assert "tripped" in state["breaker"]

    def test_kill_switch_disables_batch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BATCH", "1")
        resilience.reset_supervisor()
        cap = resilience.supervisor().registry.capability("batch")
        assert not cap.available
        assert "REPRO_NO_BATCH" in cap.detail
        assert not resilience.allows("batch")

    def test_reprobe_preserves_breaker_state(self):
        sup = resilience.supervisor()
        sup.record_failure("sparse", "one")
        cap = sup.reprobe("sparse")
        assert cap.breaker.total_failures == 1

    def test_drain_into_ledger_as_run_level_records(self):
        sup = resilience.supervisor()
        sup.note_event("breaker-tripped", "sparse", "injected")
        ledger = FailureLedger()
        assert sup.drain_into(ledger) == 1
        record = ledger.records[0]
        assert record.index == -1
        assert record.label == "resilience:sparse"
        assert ledger.quarantined_indices() == []  # run-level, no sample
        # Draining is exactly-once.
        assert sup.drain_into(ledger) == 0

    def test_run_level_records_dedupe(self):
        ledger = FailureLedger()
        for _ in range(3):
            sup = resilience.supervisor()
            sup.note_event("breaker-tripped", "sparse", "same reason")
            sup.drain_into(ledger)
            resilience.reset_supervisor()  # a "new worker" re-reports
        ledger.dedupe_run_level()
        assert len(ledger.records) == 1


# ----------------------------------------------------------------------
# Chaos: injected singular sparse factorizations
# ----------------------------------------------------------------------
@pytest.mark.skipif(not mna.sparse_available(),
                    reason="sparse path needs scipy.sparse")
class TestSparseChaos:
    def test_singular_splu_degrades_to_dense_and_trips(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 7)
        with mna.sparse_mode(1):
            reference = _sweep_states(
                dc_sweep(fx.circuit, "vinp", values, batch=False))
            faultinject.force_sparse_singular(n_solves=1000)
            chaotic = _sweep_states(
                dc_sweep(differential_pair(tech90).circuit, "vinp",
                         values, batch=False))
        faultinject.clear_sparse_singular()
        # Every solve fell through to the dense retry: same fixed
        # points, within the final-ulp gap between solve paths.
        assert np.max(np.abs(chaotic - reference)) < 1e-9
        # Enough anomalies to trip the breaker: sparse is quarantined
        # for the rest of the process and the veto is pushed.
        assert not resilience.allows("sparse")
        assert mna.sparse_vetoed()
        events = resilience.drain_events()
        assert any(e["kind"] == "breaker-tripped"
                   and e["capability"] == "sparse" for e in events)

    def test_reset_supervisor_clears_veto(self, tech90):
        resilience.supervisor()
        for _ in range(breaker_threshold()):
            resilience.record_failure("sparse", "injected")
        assert mna.sparse_vetoed()
        resilience.reset_supervisor()
        assert not mna.sparse_vetoed()
        assert resilience.allows("sparse")


# ----------------------------------------------------------------------
# Chaos: forced C-kernel compile failure
# ----------------------------------------------------------------------
@pytest.mark.skipif(not _ckernel.available(),
                    reason="needs a working compiled kernel to break")
class TestCkernelChaos:
    def test_compile_failure_falls_back_to_numpy(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 7)
        reference = _sweep_states(
            dc_sweep(fx.circuit, "vinp", values, batch=False))
        faultinject.force_ckernel_compile_failure()
        try:
            assert not _ckernel.available()
            assert not resilience.allows("ckernel")
            degraded = _sweep_states(
                dc_sweep(differential_pair(tech90).circuit, "vinp",
                         values, batch=False))
            # numpy analytic pass: same linearization to rounding.
            assert np.max(np.abs(degraded - reference)) < 1e-9
            cap = resilience.supervisor().registry.capability("ckernel")
            assert cap.anomalous
            assert "failed to compile" in cap.detail
        finally:
            faultinject.clear_ckernel_compile_failure()
        assert _ckernel.available()

    def test_anomalous_probe_is_a_ledger_event(self):
        faultinject.force_ckernel_compile_failure()
        try:
            ledger = FailureLedger()
            resilience.drain_into(ledger)
            assert any(r.label == "resilience:ckernel"
                       and r.exception_type == "capability-unavailable"
                       for r in ledger.records)
        finally:
            faultinject.clear_ckernel_compile_failure()


# ----------------------------------------------------------------------
# Chaos: corrupted batch lanes (NaN storms)
# ----------------------------------------------------------------------
class TestBatchChaos:
    def test_corrupt_lanes_recover_via_scalar_fallback(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 9)
        reference = _sweep_states(
            dc_sweep(fx.circuit, "vinp", values, batch=False))
        faultinject.corrupt_batch_lanes(fx.circuit, range(len(values)))
        try:
            chaotic = _sweep_states(
                dc_sweep(fx.circuit, "vinp", values, batch=True))
        finally:
            faultinject.clear_corrupt_batch_lanes(fx.circuit)
        # Poisoned lanes diverge, get caught by the lane mask, and are
        # re-solved one-by-one on the scalar ladder.
        assert np.max(np.abs(chaotic - reference)) < 1e-9

    def test_nan_storms_trip_batch_breaker(self, tech90):
        fx = differential_pair(tech90)
        vcm = fx.circuit["vinp"].spec.dc_value()
        values = np.linspace(vcm - 0.1, vcm + 0.1, 9)
        faultinject.corrupt_batch_lanes(fx.circuit, range(len(values)))
        try:
            for _ in range(breaker_threshold()):
                dc_sweep(fx.circuit, "vinp", values, batch=True)
        finally:
            faultinject.clear_corrupt_batch_lanes(fx.circuit)
        assert not resilience.allows("batch")
        # Quarantined: batch=True now routes through the scalar loop
        # and still answers correctly.
        reference = _sweep_states(
            dc_sweep(fx.circuit, "vinp", values, batch=False))
        degraded = _sweep_states(
            dc_sweep(fx.circuit, "vinp", values, batch=True))
        np.testing.assert_array_equal(degraded, reference)

    def test_mc_completes_with_batch_quarantined(self, tech90):
        # End-to-end: a tripped batch breaker degrades MonteCarloYield
        # to the scalar per-die path — identical verdicts, run completes.
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        clean = mc.run(n_samples=8, seed=3, chunk_size=4)
        for _ in range(breaker_threshold()):
            resilience.record_failure("batch", "injected storm")
        degraded = mc.run(n_samples=8, seed=3, chunk_size=4,
                          batch_size=4)
        np.testing.assert_array_equal(degraded.passes, clean.passes)
        np.testing.assert_allclose(degraded.values["offset"],
                                   clean.values["offset"],
                                   rtol=0, atol=1e-9)


# ----------------------------------------------------------------------
# Resource guard
# ----------------------------------------------------------------------
class TestResourceGuard:
    def test_slab_bytes_accounts_for_history(self):
        base = slab_bytes(4, 10)
        with_history = slab_bytes(4, 10, n_steps=100)
        assert with_history == base + 8 * 4 * 101 * 10

    def test_admit_lanes_halves_under_ceiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_CEILING_MB", "1")
        # 64 lanes of a 256-unknown circuit is ~64 MiB of matrix slab.
        admitted = admit_lanes(64, 256, where="test")
        assert admitted < 64
        assert slab_bytes(admitted, 256) <= 1024 * 1024 or admitted == 1
        events = resilience.drain_events()
        assert any(e["kind"] == "resource-clamp" for e in events)

    def test_admit_lanes_disabled_ceiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_CEILING_MB", "0")
        assert admit_lanes(4096, 4096) == 4096

    def test_admit_lanes_floor_is_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM_CEILING_MB", "1")
        assert admit_lanes(2, 8192) == 1

    def test_mc_clamped_batch_matches_unclamped(self, tech90,
                                                monkeypatch):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        clean = mc.run(n_samples=8, seed=5, chunk_size=8, batch_size=8)
        # A ceiling small enough to clamp even this tiny circuit.
        monkeypatch.setattr("repro.resilience.guards.memory_ceiling_bytes",
                            lambda: 4096)
        resilience.reset_supervisor()
        clamped = mc.run(n_samples=8, seed=5, chunk_size=8,
                         batch_size=8)
        # Fewer lanes per slab never changes verdicts.
        np.testing.assert_array_equal(clamped.passes, clean.passes)
        np.testing.assert_allclose(clamped.values["offset"],
                                   clean.values["offset"],
                                   rtol=0, atol=1e-9)
        # The clamp is visible as a run-level ledger record.
        assert any(r.index == -1 and r.exception_type == "resource-clamp"
                   for r in clamped.ledger.records)


# ----------------------------------------------------------------------
# Deadline budgets
# ----------------------------------------------------------------------
class TestBudget:
    def test_after_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeadlineBudget.after(0.0)

    def test_check_raises_when_expired(self):
        budget = DeadlineBudget.after(1e-4)
        time.sleep(0.01)
        assert budget.expired()
        assert budget.remaining() == 0.0
        with pytest.raises(BudgetExpiredError) as excinfo:
            budget.check("unit test")
        assert "unit test" in str(excinfo.value)

    def test_budget_is_picklable_and_absolute(self):
        budget = DeadlineBudget.after(3600.0)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone.deadline_epoch == budget.deadline_epoch
        assert clone.total_s == budget.total_s
        assert not clone.expired()

    def test_generous_budget_is_invisible(self, tech90):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        clean = mc.run(n_samples=6, seed=7, chunk_size=3)
        budgeted = mc.run(n_samples=6, seed=7, chunk_size=3,
                          budget=3600.0)
        assert not budgeted.is_degraded
        np.testing.assert_array_equal(budgeted.values["offset"],
                                      clean.values["offset"])

    def test_expired_budget_yields_clean_partial(self, tech90):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec(_slow_offset)], tech90)
        result = mc.run(n_samples=20, seed=7, chunk_size=2,
                        budget=0.12)
        assert result.is_degraded
        assert 0 < result.n_evaluated < 20 or result.n_evaluated == 0
        assert any(r.label == "resilience:budget"
                   for r in result.ledger.records)

    def test_budget_checkpoint_then_resume_bit_identical(self, tech90,
                                                         tmp_path):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec(_slow_offset)], tech90)
        clean = mc.run(n_samples=10, seed=9, chunk_size=2)
        ckpt = tmp_path / "budgeted"
        with pytest.raises(RunInterrupted) as excinfo:
            mc.run(n_samples=10, seed=9, chunk_size=2,
                   checkpoint=ckpt, budget=0.15)
        assert excinfo.value.reason == "budget"
        assert excinfo.value.checkpoint_path is not None
        resumed = mc.run(n_samples=10, seed=9, chunk_size=2,
                         checkpoint=ckpt, resume=True)
        np.testing.assert_array_equal(resumed.values["offset"],
                                      clean.values["offset"])
        np.testing.assert_array_equal(resumed.passes, clean.passes)


class TestBudgetChaosHungWorker:
    def test_hung_process_worker_cannot_outlive_budget(self, tech90,
                                                       tmp_path):
        # One worker hangs forever on sample 1; the budget must stop
        # the run coercively, write the final checkpoint, and leave a
        # resumable state — bounded wall-clock, no orphan hang.
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec(_hanging_offset)], tech90)
        ckpt = tmp_path / "hung"
        started = time.monotonic()
        with pytest.raises(RunInterrupted) as excinfo:
            mc.run(n_samples=8, seed=11, chunk_size=1, jobs=2,
                   backend="process", checkpoint=ckpt, budget=2.0)
        elapsed = time.monotonic() - started
        assert excinfo.value.reason == "budget"
        assert elapsed < 30.0
        # Resume (hang cleared) completes bit-identical to a clean run.
        clean = MonteCarloYield(fx, [offset_spec()], tech90).run(
            n_samples=8, seed=11, chunk_size=1)
        resumed = MonteCarloYield(fx, [offset_spec()], tech90).run(
            n_samples=8, seed=11, chunk_size=1,
            checkpoint=ckpt, resume=True)
        np.testing.assert_array_equal(resumed.values["offset"],
                                      clean.values["offset"])


# ----------------------------------------------------------------------
# Satellite 2: accelerator configuration in checkpoint manifests
# ----------------------------------------------------------------------
class TestCheckpointAccelManifest:
    def _interrupt_run(self, mc, ckpt, **kwargs):
        from repro.faultinject import interrupting_extractor
        spec = Specification(
            "offset", interrupting_extractor(_offset, interrupt_on=4),
            lower=-5e-3, upper=5e-3)
        broken = MonteCarloYield(mc.fixture, [spec], mc.tech)
        with pytest.raises(RunInterrupted):
            broken.run(n_samples=8, seed=13, chunk_size=2,
                       checkpoint=ckpt, **kwargs)

    def test_batch_size_mismatch_refused(self, tech90, tmp_path):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        ckpt = tmp_path / "accel"
        self._interrupt_run(mc, ckpt)
        with pytest.raises(CheckpointError) as excinfo:
            mc.run(n_samples=8, seed=13, chunk_size=2,
                   checkpoint=ckpt, resume=True, batch_size=4)
        message = str(excinfo.value)
        assert "accelerator configuration mismatch" in message
        assert "batch_size" in message
        # Matching configuration resumes fine.
        result = mc.run(n_samples=8, seed=13, chunk_size=2,
                        checkpoint=ckpt, resume=True)
        assert result.n_evaluated == 8

    def test_pre_accel_manifest_still_resumes(self, tech90, tmp_path):
        import json
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        ckpt = tmp_path / "legacy"
        self._interrupt_run(mc, ckpt)
        manifest_path = ckpt / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["accel"]  # a checkpoint written before PR 7
        manifest_path.write_text(json.dumps(manifest))
        result = mc.run(n_samples=8, seed=13, chunk_size=2,
                        checkpoint=ckpt, resume=True)
        assert result.n_evaluated == 8


# ----------------------------------------------------------------------
# Satellite 1: every cross-process exception pickles faithfully
# ----------------------------------------------------------------------
class TestExceptionPickling:
    @pytest.mark.parametrize("exc", [
        BudgetExpiredError("budget of 2 s expired at task 3",
                           budget_s=2.0, where="task 3"),
        BreakerOpenError("capability 'sparse' is unavailable", "sparse"),
        SampleTimeoutError("sample 4 exceeded 0.2 s"),
        WorkerKilledError("worker died on sample 5"),
        BatchUnsupportedError("per-lane params swap unsupported"),
        CheckpointError("accelerator configuration mismatch"),
    ], ids=lambda e: type(e).__name__)
    def test_round_trip(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)

    def test_budget_expired_payload(self):
        exc = BudgetExpiredError("expired", budget_s=1.5, where="pool")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.budget_s == 1.5
        assert clone.where == "pool"

    def test_breaker_open_payload(self):
        clone = pickle.loads(pickle.dumps(
            BreakerOpenError("open", "ckernel")))
        assert clone.capability == "ckernel"

    def test_run_interrupted_keeps_reason(self, tmp_path):
        exc = RunInterrupted("budget stop", checkpoint_path=tmp_path,
                             reason="budget")
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.reason == "budget"
        assert clone.checkpoint_path == tmp_path


# ----------------------------------------------------------------------
# Satellite 3: the fallback matrix answers identically
# ----------------------------------------------------------------------
class TestFallbackMatrix:
    """Disable each accelerator in turn and re-solve the 5-circuit
    verify corpus.  dgesv vs ``np.linalg.solve`` is bit-identical
    (same LAPACK routine underneath); the compiled stamp kernel agrees
    with the numpy analytic pass only to final-ulp rounding, so the two
    no-ckernel legs must be bit-identical *to each other* and within a
    tight band of the accelerated reference."""

    @pytest.fixture(scope="class")
    def corpus_reference(self, tech90):
        from repro.verify.differential import _batch_corpus
        resilience.reset_supervisor()
        states = {}
        for name, circuit, source, values in _batch_corpus(tech90):
            states[name] = _sweep_states(
                dc_sweep(circuit, source, values, batch=False))
        return states

    def _solve_corpus(self, tech):
        from repro.verify.differential import _batch_corpus
        return {name: _sweep_states(
                    dc_sweep(circuit, source, values, batch=False))
                for name, circuit, source, values in _batch_corpus(tech)}

    def test_no_scipy_leg_bit_identical(self, tech90, corpus_reference,
                                        monkeypatch):
        monkeypatch.setattr(mna, "_dgesv", None)
        monkeypatch.setattr(mna, "_csc_matrix", None)
        monkeypatch.setattr(mna, "_splu", None)
        resilience.reset_supervisor()
        assert not resilience.allows("sparse")
        for name, states in self._solve_corpus(tech90).items():
            np.testing.assert_array_equal(
                states, corpus_reference[name], err_msg=name)

    @pytest.mark.skipif(not _ckernel.available(),
                        reason="needs the compiled kernel as reference")
    def test_ckernel_off_and_gcc_absent_agree(self, tech90,
                                              corpus_reference,
                                              monkeypatch):
        # Leg 1: kernel administratively disabled (REPRO_NO_CKERNEL).
        monkeypatch.setattr(_ckernel, "_DISABLED", True)
        _ckernel.reset()
        resilience.reset_supervisor()
        no_kernel = self._solve_corpus(tech90)
        # Leg 2: no C compiler on PATH at all.
        monkeypatch.setattr(_ckernel, "_DISABLED", False)
        monkeypatch.setattr(shutil, "which", lambda *a, **k: None)
        _ckernel.reset()
        resilience.reset_supervisor()
        assert not _ckernel.available()
        no_compiler = self._solve_corpus(tech90)
        monkeypatch.undo()
        _ckernel.reset()
        # Both legs run the identical numpy analytic pass.
        for name in no_kernel:
            np.testing.assert_array_equal(
                no_kernel[name], no_compiler[name], err_msg=name)
            # And stay within final-ulp of the accelerated reference.
            scale = np.maximum(1.0, np.abs(corpus_reference[name]))
            gap = np.abs(no_kernel[name] - corpus_reference[name])
            assert np.max(gap / scale) < 1e-9, name
