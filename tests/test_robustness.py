"""Resilience-layer tests: solver ladder telemetry, fault injection,
retry/timeout, checkpoint/resume and graceful degradation.

Every failure path the engines claim to absorb is *proven* here by
injecting the corresponding fault (see :mod:`repro.faultinject`) and
asserting the run completes with the documented diagnostics.
"""

import math
import pickle

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointError,
    McCheckpointStore,
    RunInterrupted,
    atomic_write_json,
)
from repro.circuit import (
    Circuit,
    ConvergenceError,
    ConvergenceReport,
    Mosfet,
    NewtonOptions,
    SingularCircuitError,
    StrategyAttempt,
    dc_operating_point,
    transient,
)
from repro.circuits import differential_pair, input_referred_offset_v
from repro.core import MonteCarloYield, SampleEvaluationError, Specification
from repro.core.corners import CornerAnalysis
from repro.faultinject import (
    WorkerKilledError,
    current_sample,
    failing_extractor,
    force_nonconvergence,
    hanging_extractor,
    inject_open,
    inject_short,
    inject_stuck_parameter,
    interrupting_extractor,
    killing_extractor,
    set_current_sample,
)
from repro.parallel import (
    FailureLedger,
    FailureRecord,
    RetryPolicy,
    SampleTimeoutError,
    call_resilient,
    call_with_timeout,
)
from repro.report import render_failure_ledger

FULL_LADDER = ["newton", "gmin-stepping", "source-stepping",
               "pseudo-transient"]


def _offset(fixture) -> float:
    return input_referred_offset_v(fixture)


def offset_spec(extractor=_offset, limit_v=5e-3):
    return Specification("offset", extractor, lower=-limit_v, upper=limit_v)


# ----------------------------------------------------------------------
# Solver failure telemetry
# ----------------------------------------------------------------------
class TestConvergenceReport:
    def _poisoned_fixture(self, tech90):
        fx = differential_pair(tech90)
        force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        return fx

    def test_full_ladder_recorded_in_order(self, tech90):
        fx = self._poisoned_fixture(tech90)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(fx.circuit)
        report = excinfo.value.report
        assert report is not None
        assert report.analysis == "dc"
        assert report.strategy_names() == FULL_LADDER

    def test_report_carries_residual_and_iterations(self, tech90):
        fx = self._poisoned_fixture(tech90)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(fx.circuit)
        exc = excinfo.value
        assert exc.iterations == exc.report.total_iterations > 0
        for attempt in exc.report.strategies:
            assert not attempt.converged
        assert "dc solve failed" in exc.report.summary()

    def test_nan_guard_classifies_not_linalgerror(self, tech90):
        # The NaN residual guard must raise ConvergenceError — a bare
        # LinAlgError (or an infinite loop) may never escape the solver.
        fx = self._poisoned_fixture(tech90)
        with pytest.raises(ConvergenceError):
            dc_operating_point(fx.circuit)

    def test_report_round_trips_through_dict(self):
        report = ConvergenceReport(
            analysis="dc",
            strategies=[StrategyAttempt(name="newton", iterations=150,
                                        converged=False, final_residual=0.5,
                                        detail="")],
            worst_unknown="out", worst_device="m1", message="boom")
        clone = ConvergenceReport.from_dict(report.to_dict())
        assert clone.strategy_names() == ["newton"]
        assert clone.worst_device == "m1"
        assert clone.final_residual == 0.5

    def test_worst_device_attribution(self, tech90):
        fx = self._poisoned_fixture(tech90)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(fx.circuit)
        report = excinfo.value.report
        # The worst unknown is labelled with a netlist name, not a raw
        # MNA index.
        assert report.worst_unknown is None or \
            isinstance(report.worst_unknown, str)


class TestPathologicalCorpus:
    """The netlists a million-sample Monte-Carlo run inevitably draws."""

    def test_floating_node_is_classified(self, tech90):
        # Two parallel voltage sources make the MNA matrix structurally
        # singular; the solver must classify this, never leak a raw
        # LinAlgError.
        ckt = Circuit("vloop")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.voltage_source("v2", "a", "0", 2.0)
        ckt.resistor("r1", "a", "0", 1e3)
        with pytest.raises(SingularCircuitError):
            dc_operating_point(ckt)

    def test_capacitor_only_node_converges_via_gmin_floor(self, tech90):
        # A node with only a capacitor is DC-floating; the gmin floor
        # pins it at 0 V instead of blowing up the factorisation.
        ckt = Circuit("float")
        ckt.voltage_source("v1", "a", "0", 1.0)
        ckt.resistor("r1", "a", "b", 1e3)
        ckt.capacitor("c1", "c", "0", 1e-12)  # c is DC-floating
        ckt.resistor("r2", "b", "0", 1e3)
        op = dc_operating_point(ckt)
        assert op.voltage("c") == pytest.approx(0.0, abs=1e-6)

    def test_zero_gm_loop(self, tech90):
        # Cross-coupled gate loop with zero-kp devices: no gm anywhere
        # in the loop.  Must either converge or fail with a full report.
        ckt = Circuit("zero-gm")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.resistor("r1", "vdd", "x", 1e5)
        ckt.resistor("r2", "vdd", "y", 1e5)
        for name, d, g in (("m1", "x", "y"), ("m2", "y", "x")):
            device = Mosfet.from_technology(name, d, g, "0", "0", tech90,
                                            "n", w_m=1e-6, l_m=1e-6)
            ckt.mosfet(device)
        inject_stuck_parameter(ckt, "m1", "kp_a_per_v2", 1e-30)
        inject_stuck_parameter(ckt, "m2", "kp_a_per_v2", 1e-30)
        try:
            op = dc_operating_point(ckt)
            # Dead devices: the resistors pull both drains to VDD.
            assert op.voltage("x") == pytest.approx(tech90.vdd, rel=1e-3)
        except ConvergenceError as exc:
            assert exc.report is not None
            assert exc.report.strategy_names() == FULL_LADDER

    def test_bistable_latch_settles_or_reports(self, tech90):
        # A live cross-coupled latch is bistable: the ladder must drive
        # it into ONE stable state (any), or fail with full telemetry.
        ckt = Circuit("latch")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.resistor("r1", "vdd", "x", 2e4)
        ckt.resistor("r2", "vdd", "y", 2e4)
        for name, d, g in (("m1", "x", "y"), ("m2", "y", "x")):
            ckt.mosfet(Mosfet.from_technology(name, d, g, "0", "0", tech90,
                                              "n", w_m=4e-6, l_m=0.4e-6))
        try:
            op = dc_operating_point(ckt)
            for node in ("x", "y"):
                assert -0.5 <= op.voltage(node) <= tech90.vdd + 0.5
        except ConvergenceError as exc:
            assert exc.report is not None
            assert exc.report.strategy_names() == FULL_LADDER

    def test_extreme_w_over_l(self, tech90):
        # A 10^6:1 aspect-ratio device drives enormous currents through
        # a weak resistor — numerically brutal, still classified.
        ckt = Circuit("extreme-wl")
        ckt.voltage_source("vdd", "vdd", "0", tech90.vdd)
        ckt.voltage_source("vg", "g", "0", tech90.vdd)
        ckt.resistor("r1", "vdd", "d", 1e6)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "g", "0", "0", tech90,
                                          "n", w_m=1.0, l_m=1e-6))
        try:
            op = dc_operating_point(ckt)
            assert math.isfinite(op.voltage("d"))
        except ConvergenceError as exc:
            assert exc.report is not None
            assert exc.report.strategy_names() == FULL_LADDER

    def test_every_failure_carries_a_report(self, tech90):
        # Programmatic sweep: any ConvergenceError out of the public DC
        # entry point must carry a structured report.
        fx = differential_pair(tech90)
        force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(fx.circuit)
        report = excinfo.value.report
        assert isinstance(report, ConvergenceReport)
        assert report.strategy_names() == FULL_LADDER


class TestTransientStepControl:
    def _rc_circuit(self):
        ckt = Circuit("rc")
        ckt.voltage_source("v1", "in", "0", 1.0)
        ckt.resistor("r1", "in", "out", 1e3)
        ckt.capacitor("c1", "out", "0", 1e-9)
        return ckt

    def test_lte_rejection_keeps_output_grid(self):
        ckt = self._rc_circuit()
        plain = transient(ckt, t_stop=1e-5, dt=1e-6)
        ckt2 = self._rc_circuit()
        tight = transient(ckt2, t_stop=1e-5, dt=1e-6, lte_rtol=1e-3)
        assert np.array_equal(plain.times, tight.times)
        # Sub-stepping only improves accuracy; both must track RC decay.
        v_plain = plain.voltage("out").values[-1]
        v_tight = tight.voltage("out").values[-1]
        assert v_plain == pytest.approx(1.0, rel=1e-2)
        assert v_tight == pytest.approx(1.0, rel=1e-2)

    def test_step_failure_reports_halving_depth(self, tech90):
        fx = differential_pair(tech90)
        op = dc_operating_point(fx.circuit)
        force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        with pytest.raises(ConvergenceError) as excinfo:
            transient(fx.circuit, t_stop=1e-9, dt=1e-10, initial_op=op,
                      max_step_halvings=2)
        report = excinfo.value.report
        assert report is not None
        assert report.analysis == "transient"
        assert report.strategy_names() == ["step-halving"]
        assert "depth 2/2" in report.strategies[0].detail


# ----------------------------------------------------------------------
# Exception pickling (process-pool workers ship these across processes)
# ----------------------------------------------------------------------
class TestExceptionPickling:
    def test_convergence_error_with_report(self):
        report = ConvergenceReport(
            analysis="dc",
            strategies=[StrategyAttempt(name="newton", iterations=150,
                                        converged=False,
                                        final_residual=1.5, detail="x")],
            worst_unknown="out", worst_device="m2", message="no OP")
        exc = ConvergenceError("no OP", report=report, iterations=150,
                               final_residual=1.5, worst_index=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, ConvergenceError)
        assert clone.iterations == 150
        assert clone.final_residual == 1.5
        assert clone.worst_index == 3
        assert clone.report.strategy_names() == ["newton"]
        assert clone.report.worst_device == "m2"
        assert str(clone) == str(exc)

    def test_singular_circuit_error(self):
        exc = SingularCircuitError("singular MNA matrix")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, SingularCircuitError)
        assert str(clone) == str(exc)

    def test_sample_evaluation_error(self):
        exc = SampleEvaluationError(7, "offset", ValueError("bad node"))
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.sample_index == 7
        assert clone.spec_name == "offset"
        assert isinstance(clone.original, ValueError)
        assert str(clone) == str(exc)

    def test_run_interrupted(self, tmp_path):
        exc = RunInterrupted("stopped", checkpoint_path=tmp_path / "ck",
                             partial_result=None)
        clone = pickle.loads(pickle.dumps(exc))
        assert clone.checkpoint_path == tmp_path / "ck"

    def test_real_solver_failure_round_trips(self, tech90):
        fx = differential_pair(tech90)
        force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(fx.circuit)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert clone.report.strategy_names() == FULL_LADDER


# ----------------------------------------------------------------------
# Retry / timeout primitives
# ----------------------------------------------------------------------
class TestRetryPrimitives:
    def test_timeout_raises_sample_timeout(self):
        with pytest.raises(SampleTimeoutError):
            call_with_timeout(lambda: __import__("time").sleep(5.0),
                              timeout_s=0.05)

    def test_timeout_passthrough_when_none(self):
        assert call_with_timeout(lambda: 42, timeout_s=None) == 42

    def test_retry_succeeds_on_later_attempt(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ValueError("transient glitch")
            return "ok"

        policy = RetryPolicy(max_attempts=3, backoff_s=0.0)
        assert call_resilient(flaky, policy, retry_on=(ValueError,)) == "ok"
        assert len(attempts) == 3

    def test_retry_exhaustion_reraises_last(self):
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        with pytest.raises(ValueError, match="always"):
            call_resilient(lambda: (_ for _ in ()).throw(
                ValueError("always")), policy, retry_on=(ValueError,))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=-1.0)


# ----------------------------------------------------------------------
# Fault injection → graceful degradation
# ----------------------------------------------------------------------
class TestFaultInjectionYield:
    def test_device_fault_samples_quarantined(self, tech90):
        # Samples 5 and 21 raise; the run completes, quarantines them,
        # and the confidence interval widens by exactly their mass.
        fx = differential_pair(tech90)
        spec = offset_spec(failing_extractor(_offset, fail_on=[5, 21]))
        mc = MonteCarloYield(fx, [spec], tech90)
        result = mc.run(n_samples=32, seed=1, chunk_size=8)
        assert result.is_degraded
        assert result.n_quarantined == 2
        assert result.ledger.quarantined_indices() == [5, 21]
        assert result.failure_counts == {"ValueError": 2}
        assert np.isnan(result.values["offset"][5])
        assert not result.passes[5]
        lo, hi = result.confidence_interval()
        lo_plain, hi_plain = result.wilson_interval()
        assert lo == lo_plain
        assert hi > hi_plain  # widened upward by the unresolved mass

    def test_worker_kill_quarantined(self, tech90):
        fx = differential_pair(tech90)
        spec = offset_spec(killing_extractor(_offset, kill_on=[3]))
        mc = MonteCarloYield(fx, [spec], tech90)
        result = mc.run(n_samples=16, seed=1, chunk_size=8)
        assert result.n_quarantined == 1
        assert result.failure_counts == {"WorkerKilledError": 1}
        record = result.ledger.records[0]
        assert record.index == 3
        assert record.exception_type == "WorkerKilledError"

    def test_nonconvergent_sample_carries_report(self, tech90):
        # A forced solver failure lands in the ledger WITH the full
        # convergence report (strategy ladder, residual).
        fx = differential_pair(tech90)

        def nonconvergent(fixture):
            if current_sample() == 2:
                force_nonconvergence(fixture.circuit,
                                     fixture.circuit.mosfets[0].name)
            return _offset(fixture)

        mc = MonteCarloYield(fx, [offset_spec(nonconvergent)], tech90)
        result = mc.run(n_samples=8, seed=1, chunk_size=8)
        # The poison persists on the chunk's replica, so sample 2 and
        # every later sample in its chunk fail — all quarantined, run
        # completes regardless.
        assert result.is_degraded
        assert 2 in result.ledger.quarantined_indices()
        record = next(r for r in result.ledger.records if r.index == 2)
        assert record.exception_type == "ConvergenceError"
        assert record.convergence_report is not None
        assert record.convergence_report["strategies"][0]["name"] == "newton"

    def test_timeout_quarantines_hanging_sample(self, tech90):
        fx = differential_pair(tech90)
        spec = offset_spec(hanging_extractor(_offset, hang_on=[1],
                                             hang_s=30.0))
        mc = MonteCarloYield(fx, [spec], tech90)
        policy = RetryPolicy(max_attempts=1, timeout_s=0.2)
        result = mc.run(n_samples=4, seed=1, chunk_size=4, retry=policy)
        assert result.failure_counts == {"SampleTimeoutError": 1}
        assert result.ledger.quarantined_indices() == [1]

    def test_retry_recovers_flaky_sample(self, tech90):
        # A fault that clears on the second attempt: with a retry
        # policy the run is NOT degraded.
        fx = differential_pair(tech90)
        seen = []

        def flaky(fixture):
            if current_sample() == 2 and seen.count(2) < 1:
                seen.append(2)
                raise ValueError("transient fault")
            return _offset(fixture)

        mc = MonteCarloYield(fx, [offset_spec(flaky)], tech90)
        degraded = mc.run(n_samples=8, seed=1, chunk_size=8)
        assert degraded.is_degraded  # no retry: quarantined
        seen.clear()
        recovered = mc.run(n_samples=8, seed=1, chunk_size=8,
                           retry=RetryPolicy(max_attempts=2))
        assert not recovered.is_degraded
        assert np.array_equal(degraded.passes[:2], recovered.passes[:2])

    def test_injected_defects_shift_metric(self, tech90):
        # Sanity of the silicon-style defects: each rewrite survives the
        # sampler's per-sample mismatch assignment and changes the DC
        # answer.
        healthy = differential_pair(tech90)
        baseline = _offset(healthy)
        shorted = differential_pair(tech90)
        inject_short(shorted.circuit, shorted.circuit.mosfets[0].name)
        opened = differential_pair(tech90)
        inject_open(opened.circuit, opened.circuit.mosfets[0].name)
        for faulty in (shorted, opened):
            try:
                assert abs(_offset(faulty) - baseline) > 1e-6
            except (ConvergenceError, SingularCircuitError, ValueError):
                # A defect that kills convergence (or pushes the metric
                # search off its range) is also an observable change.
                pass

    def test_current_sample_context_is_cleaned_up(self, tech90):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        mc.run(n_samples=4, seed=1)
        assert current_sample() is None


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def _engine(self, tech90, extractor=_offset):
        fx = differential_pair(tech90)
        return MonteCarloYield(fx, [offset_spec(extractor)], tech90)

    def test_kill_and_resume_bit_identical(self, tech90, tmp_path):
        reference = self._engine(tech90).run(n_samples=64, seed=3,
                                             chunk_size=8)
        ckpt = tmp_path / "ck"
        interrupted = self._engine(
            tech90, interrupting_extractor(_offset, interrupt_on=37))
        with pytest.raises(RunInterrupted) as excinfo:
            interrupted.run(n_samples=64, seed=3, chunk_size=8,
                            checkpoint=ckpt)
        exc = excinfo.value
        assert exc.checkpoint_path == ckpt
        partial = exc.partial_result
        assert partial is not None
        assert 0 < partial.n_evaluated < 64
        assert partial.is_degraded
        # Completed chunks in the partial result already match.
        mask = partial.evaluated
        assert np.array_equal(partial.passes[mask], reference.passes[mask])

        resumed = self._engine(tech90).run(n_samples=64, seed=3,
                                           chunk_size=8, checkpoint=ckpt,
                                           resume=True)
        assert np.array_equal(resumed.passes, reference.passes)
        assert np.array_equal(resumed.values["offset"],
                              reference.values["offset"])
        assert resumed.yield_fraction == reference.yield_fraction
        assert not resumed.is_degraded

    def test_ledger_round_trips_through_checkpoint(self, tech90, tmp_path):
        # Quarantine records written before an interrupt must survive
        # the resume — the final ledger equals the uninterrupted one.
        ckpt = tmp_path / "ck"
        faulty = failing_extractor(_offset, fail_on=[2])
        reference = self._engine(tech90, faulty).run(n_samples=32, seed=5,
                                                     chunk_size=8)

        def faulty_interrupting(fixture):
            if current_sample() == 20:
                raise KeyboardInterrupt("injected")
            return faulty(fixture)

        with pytest.raises(RunInterrupted):
            self._engine(tech90, faulty_interrupting).run(
                n_samples=32, seed=5, chunk_size=8, checkpoint=ckpt)
        resumed = self._engine(tech90, faulty).run(
            n_samples=32, seed=5, chunk_size=8, checkpoint=ckpt, resume=True)
        assert resumed.ledger.quarantined_indices() == \
            reference.ledger.quarantined_indices() == [2]
        assert resumed.failure_counts == reference.failure_counts

    def test_checkpoint_mismatch_refused(self, tech90, tmp_path):
        ckpt = tmp_path / "ck"
        engine = self._engine(tech90)
        engine.run(n_samples=16, seed=1, chunk_size=8, checkpoint=ckpt)
        with pytest.raises(CheckpointError, match="seed"):
            engine.run(n_samples=16, seed=2, chunk_size=8, checkpoint=ckpt,
                       resume=True)
        with pytest.raises(CheckpointError, match="n_samples"):
            engine.run(n_samples=32, seed=1, chunk_size=8, checkpoint=ckpt,
                       resume=True)

    def test_existing_checkpoint_not_clobbered_without_resume(
            self, tech90, tmp_path):
        ckpt = tmp_path / "ck"
        engine = self._engine(tech90)
        engine.run(n_samples=16, seed=1, chunk_size=8, checkpoint=ckpt)
        with pytest.raises(CheckpointError, match="resume"):
            engine.run(n_samples=16, seed=1, chunk_size=8, checkpoint=ckpt)

    def test_resume_without_checkpoint_refused(self, tech90, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            self._engine(tech90).run(n_samples=16, seed=1,
                                     checkpoint=tmp_path / "absent",
                                     resume=True)

    def test_corrupt_manifest_refused(self, tech90, tmp_path):
        ckpt = tmp_path / "ck"
        engine = self._engine(tech90)
        engine.run(n_samples=16, seed=1, chunk_size=8, checkpoint=ckpt)
        (ckpt / "manifest.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="unreadable"):
            engine.run(n_samples=16, seed=1, chunk_size=8, checkpoint=ckpt,
                       resume=True)

    def test_atomic_write_replaces_not_truncates(self, tmp_path):
        target = tmp_path / "data.json"
        atomic_write_json(target, {"v": 1})
        atomic_write_json(target, {"v": 2})
        import json

        assert json.loads(target.read_text())["v"] == 2
        # No temp droppings left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_store_validates_schema(self, tmp_path):
        store = McCheckpointStore(tmp_path / "ck")
        params = {"kind": "mc-yield", "seed": 0, "n_samples": 8,
                  "chunk_size": 8, "spec_names": ["s"]}
        chunk = {"start": 0, "stop": 8,
                 "passes": np.ones(8, dtype=bool),
                 "values": {"s": np.zeros(8)},
                 "spec_passes": {"s": np.ones(8, dtype=bool)},
                 "failure_counts": {}, "ledger": []}
        store.save(params, {0: chunk})
        loaded, ledger = store.load(params)
        assert list(loaded) == [0]
        assert np.array_equal(loaded[0]["values"]["s"], np.zeros(8))
        assert len(ledger) == 0


# ----------------------------------------------------------------------
# Degradation in the other engines
# ----------------------------------------------------------------------
class TestCornerDegradation:
    def test_bad_corner_is_nan_and_ledgered(self, tech90):
        fx = differential_pair(tech90)

        calls = []

        def sometimes(fixture):
            calls.append(1)
            if len(calls) == 2:  # the second PVT point evaluated
                raise ConvergenceError("injected corner failure")
            return _offset(fixture)

        spec = offset_spec(sometimes, limit_v=1.0)
        analysis = CornerAnalysis(fx, [spec], tech90,
                                  vdd_scales=[1.0],
                                  temperatures_k=[300.0])
        result = analysis.run()
        assert result.is_degraded
        assert len(result.ledger) == 1
        record = result.ledger.records[0]
        assert record.exception_type == "ConvergenceError"
        assert record.label.startswith("offset@")
        # The failed point is NaN, and NaN dominates worst_case.
        label, value = result.worst_case(spec)
        assert math.isnan(value)
        assert not result.all_pass(spec)

    def test_clean_matrix_not_degraded(self, tech90):
        fx = differential_pair(tech90)
        analysis = CornerAnalysis(fx, [offset_spec(limit_v=1.0)], tech90,
                                  vdd_scales=[1.0],
                                  temperatures_k=[300.0])
        result = analysis.run()
        assert not result.is_degraded
        assert len(result.ledger) == 0


class TestAgingEnsembleQuarantine:
    def test_bad_die_quarantined(self, tech90):
        from repro.aging import NbtiModel
        from repro.core import MissionProfile, aging_ensemble

        fx = differential_pair(tech90)
        profile = MissionProfile(n_epochs=2, duration_s=1e6,
                                 t_first_epoch_s=1e3)

        def metric(fixture):
            if current_sample() == 1:
                raise ConvergenceError("die 1 refuses to bias")
            return _offset(fixture)

        reports, ledger = aging_ensemble(
            fx, [NbtiModel(tech90.aging)], profile, {"offset": metric},
            tech90, n_samples=3, seed=0, quarantine=True)
        assert len(reports) == 3
        assert reports[0] is not None and reports[2] is not None
        assert reports[1] is None
        assert ledger.quarantined_indices() == [1]
        assert ledger.records[0].label == "mission"

    def test_default_contract_unchanged(self, tech90):
        from repro.aging import NbtiModel
        from repro.core import MissionProfile, aging_ensemble

        fx = differential_pair(tech90)
        profile = MissionProfile(n_epochs=2, duration_s=1e6,
                                 t_first_epoch_s=1e3)
        reports = aging_ensemble(
            fx, [NbtiModel(tech90.aging)], profile,
            {"offset": _offset}, tech90, n_samples=2, seed=0)
        assert len(reports) == 2
        assert all(r is not None for r in reports)


# ----------------------------------------------------------------------
# Ledger rendering and CLI exit codes
# ----------------------------------------------------------------------
class TestLedgerReporting:
    def _ledger(self):
        ledger = FailureLedger()
        ledger.add(5, ConvergenceError("no OP", iterations=150,
                                       final_residual=2.0), label="offset")
        ledger.add(9, SampleTimeoutError("timed out"), label="offset",
                   attempts=3)
        return ledger

    def test_render_failure_ledger(self):
        text = render_failure_ledger(self._ledger())
        assert "ConvergenceError x1" in text
        assert "SampleTimeoutError x1" in text
        assert "offset" in text
        assert "5" in text and "9" in text

    def test_render_empty_ledger_is_empty(self):
        assert render_failure_ledger(FailureLedger()) == ""

    def test_render_truncates(self):
        ledger = FailureLedger()
        for i in range(15):
            ledger.add(i, ValueError("x"), label="s")
        text = render_failure_ledger(ledger, max_rows=10)
        assert "5 more record(s)" in text

    def test_ledger_record_round_trip(self):
        ledger = self._ledger()
        clone = FailureLedger.from_list(ledger.to_list())
        assert len(clone) == 2
        assert clone.records[0].convergence_report is None or \
            isinstance(clone.records[0].convergence_report, dict)
        assert clone.counts_by_type() == ledger.counts_by_type()


class TestCliExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["mc", "--samples", "8", "--seed", "1"]) == 0
        assert "yield" in capsys.readouterr().out

    def test_degraded_run_exits_two(self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli

        # Patch the offset extractor with a sample-targeted fault.
        monkeypatch.setattr(
            cli, "_offset_extractor",
            failing_extractor(_offset, fail_on=[1]))
        code = cli.main(["mc", "--samples", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "quarantined evaluations" in out
        assert "widened" in out

    def test_hard_failure_exits_one(self, capsys):
        from repro.cli import main

        assert main(["node", "13nm"]) == 1
        assert "error" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        from repro.cli import main

        assert main(["mc", "--samples", "8", "--resume"]) == 1

    def test_exit_codes_documented_in_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["mc", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "130" in out

    def test_interrupt_writes_checkpoint_and_exits_130(
            self, capsys, monkeypatch, tmp_path):
        import repro.cli as cli

        monkeypatch.setattr(
            cli, "_offset_extractor",
            interrupting_extractor(_offset, interrupt_on=40))
        ckpt = tmp_path / "ck"
        code = cli.main(["mc", "--samples", "64", "--seed", "3",
                         "--checkpoint", str(ckpt)])
        assert code == 130
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.out
        assert "--resume" in captured.err
        assert (ckpt / "manifest.json").is_file()

        monkeypatch.setattr(cli, "_offset_extractor", _offset)
        code = cli.main(["mc", "--samples", "64", "--seed", "3",
                         "--checkpoint", str(ckpt), "--resume"])
        assert code == 0
