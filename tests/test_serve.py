"""Black-box tests for the analysis service (``repro serve``).

The tentpole suite of PR 10: a real in-process daemon is started on an
ephemeral port and driven over a socket with the stdlib
:class:`~repro.serve.client.ServeClient` — nothing here reaches into
the server except to ask it to stop, so every assertion holds for an
out-of-process deployment too.  Covers:

* canonical netlist hashing (including hypothesis property tests —
  formatting/order permutations hash identically, any parameter or
  topology change re-keys);
* the content-addressed result cache (bit-identical cached replies,
  LRU bounds, disk tier, corrupt-file hardening) and the engine
  session cache (build-once lease semantics, eviction);
* the priority/fairness queue, HTTP backpressure (429 + Retry-After)
  and graceful drain (queued jobs cancelled, running jobs stopped at
  the next chunk via :class:`~repro.resilience.CancellableBudget`);
* wall-clock budgets with partial results and resumable checkpoints;
* chaos-mode fault injection (worker death mid-job) leaving the
  service healthy;
* the concurrent-client soak: ≥8 simultaneous clients, mixed
  workloads and backends, deterministic and cache-verified;
* satellites — repo hygiene (no committed run records), /metrics
  concurrency + port-collision degradation, and run-registry
  round-trips (gc, diff) for serve-produced records.
"""

import json
import os
import socket
import subprocess
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import promexp, runlog
from repro.obs.diff import diff_runs
from repro.parallel import fair_share_jobs
from repro.resilience import (
    BudgetExpiredError,
    CancellableBudget,
    DeadlineBudget,
)
from repro.serve import (
    OUTCOME_EXIT_CODES,
    UNCACHED_ANALYSES,
    Backpressure,
    EngineSessionCache,
    Job,
    JobQueue,
    JobSpecError,
    ResultCache,
    ServeApp,
    ServeClient,
    ServeConfig,
    cache_key,
    canonical_json,
    canonical_netlist,
    canonical_netlist_hash,
    parse_job_spec,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

NETLIST = """divider test
v1 in 0 dc 1.5
r1 in mid 10k
r2 mid 0 5k
c1 mid 0 1p
.end
"""

_BASE_CARDS = [
    "v1 in 0 dc 1.5",
    "r1 in mid 10k",
    "r2 mid 0 5k",
    "c1 mid 0 1p",
]
_BASE_HASH = canonical_netlist_hash(NETLIST)


# ----------------------------------------------------------------------
# Server harness
# ----------------------------------------------------------------------

@contextmanager
def serving(**kwargs):
    """A live daemon on an ephemeral port, drained on exit."""
    kwargs.setdefault("record_runs", False)
    app = ServeApp(ServeConfig(port=0, **kwargs))
    exit_code = {}
    thread = threading.Thread(
        target=lambda: exit_code.setdefault("code", app.run()),
        daemon=True)
    thread.start()
    assert app.wait_ready(20), "server did not bind"
    client = ServeClient("127.0.0.1", app.port)
    try:
        yield app, client, exit_code
    finally:
        app.request_stop()
        thread.join(40)
        assert not thread.is_alive(), "server thread failed to drain"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One shared daemon for the read-mostly black-box tests."""
    spool = tmp_path_factory.mktemp("spool")
    with serving(workers=2, chaos=True, spool=str(spool)) as ctx:
        yield ctx


def mc_spec(**overrides):
    spec = {"analysis": "mc", "tech": "90nm",
            "params": {"samples": 12}, "seed": 11, "backend": "thread"}
    spec.update(overrides)
    return spec


# ----------------------------------------------------------------------
# Canonical netlist hashing (satellite: hypothesis properties)
# ----------------------------------------------------------------------

class TestCanonicalNetlist:
    def test_whitespace_and_comments_invariant(self):
        messy = ("another title\n\n  * leading comment\n"
                 "R1   in  mid   10k\n* mid comment\nv1 in 0 dc 1.5\n"
                 "\t r2 mid 0 5k\nc1 mid 0 1p\n.end\n")
        assert canonical_netlist_hash(messy) == _BASE_HASH

    def test_value_spelling_invariant(self):
        respelled = NETLIST.replace("10k", "10000").replace("5k", "5e3")
        assert canonical_netlist_hash(respelled) == _BASE_HASH

    def test_title_excluded(self):
        retitled = NETLIST.replace("divider test", "completely different")
        assert canonical_netlist_hash(retitled) == _BASE_HASH

    def test_element_name_case_invariant(self):
        shouted = NETLIST.replace("r1", "R1").replace("c1", "C1")
        assert canonical_netlist_hash(shouted) == _BASE_HASH

    def test_parameter_change_rekeys(self):
        tweaked = NETLIST.replace("10k", "10.000001k")
        assert canonical_netlist_hash(tweaked) != _BASE_HASH

    def test_topology_change_rekeys(self):
        rewired = NETLIST.replace("r2 mid 0", "r2 mid in")
        assert canonical_netlist_hash(rewired) != _BASE_HASH

    def test_added_element_rekeys(self):
        grown = NETLIST.replace(".end", "r3 mid 0 1k\n.end")
        assert canonical_netlist_hash(grown) != _BASE_HASH

    def test_unparseable_refused(self):
        with pytest.raises(JobSpecError):
            canonical_netlist("t\nq1 what is this\n.end")

    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(_BASE_CARDS),
           pad=st.sampled_from(["", " ", "  ", "\t"]),
           comment=st.booleans(), blank=st.booleans())
    def test_formatting_permutations_hash_identically(
            self, order, pad, comment, blank):
        lines = ["permuted"]
        for card in order:
            if comment:
                lines.append("* injected comment")
            if blank:
                lines.append("")
            lines.append(pad + card)
        text = "\n".join(lines) + "\n.end\n"
        assert canonical_netlist_hash(text) == _BASE_HASH

    @settings(max_examples=25, deadline=None)
    @given(rel=st.floats(min_value=1e-6, max_value=0.9,
                         allow_nan=False, allow_infinity=False))
    def test_any_value_change_rekeys(self, rel):
        value = 10000.0 * (1.0 + rel)
        text = NETLIST.replace("10k", repr(value))
        assert canonical_netlist_hash(text) != _BASE_HASH

    @settings(max_examples=15, deadline=None)
    @given(node=st.text(alphabet="abcdefgh", min_size=1, max_size=6))
    def test_node_rename_rekeys(self, node):
        text = NETLIST.replace("mid", "n_" + node)
        assert canonical_netlist_hash(text) != _BASE_HASH


# ----------------------------------------------------------------------
# Job-spec validation and cache keys
# ----------------------------------------------------------------------

class TestJobSpec:
    def test_defaults(self):
        spec = parse_job_spec({"analysis": "mc", "tech": "90nm"})
        assert (spec.seed, spec.jobs, spec.backend) == (0, 1, "auto")
        assert (spec.priority, spec.client) == ("normal", "anon")

    @pytest.mark.parametrize("payload,fragment", [
        ({"analysis": "spice"}, "analysis"),
        ({"analysis": "mc", "tech": "90nm", "bogus": 1}, "bogus"),
        ({"analysis": "mc", "tech": "90nm", "seed": -1}, "seed"),
        ({"analysis": "mc", "tech": "90nm", "seed": True}, "seed"),
        ({"analysis": "mc", "tech": "90nm", "jobs": 0}, "jobs"),
        ({"analysis": "mc", "tech": "90nm", "jobs": 65}, "jobs"),
        ({"analysis": "mc", "tech": "90nm", "backend": "gpu"}, "backend"),
        ({"analysis": "mc", "tech": "90nm", "priority": "urgent"},
         "priority"),
        ({"analysis": "mc", "tech": "90nm", "timeout_s": 0}, "timeout_s"),
        ({"analysis": "mc"}, "tech"),
        ({"analysis": "op"}, "netlist"),
        ({"analysis": "mc", "tech": "3nm"}, "technology"),
    ])
    def test_refusals(self, payload, fragment):
        with pytest.raises(JobSpecError, match=fragment):
            parse_job_spec(payload)

    def test_cache_key_ignores_scheduling_fields(self):
        caps = {"sparse": True}
        base = parse_job_spec(mc_spec())
        for change in ({"jobs": 8}, {"backend": "process"},
                       {"priority": "high"}, {"client": "someone-else"},
                       {"timeout_s": 9.0}):
            other = parse_job_spec(mc_spec(**change))
            assert cache_key(other, caps) == cache_key(base, caps), change

    def test_cache_key_tracks_result_defining_fields(self):
        caps = {"sparse": True}
        base = parse_job_spec(mc_spec())
        keys = {cache_key(base, caps)}
        for change in ({"seed": 12}, {"params": {"samples": 13}},
                       {"tech": "65nm"}, {"batch_size": 8},
                       {"analysis": "corners"}):
            keys.add(cache_key(parse_job_spec(mc_spec(**change)), caps))
        assert len(keys) == 6

    def test_cache_key_tracks_capabilities_and_netlist(self):
        spec = parse_job_spec(mc_spec())
        assert cache_key(spec, {"sparse": True}) \
            != cache_key(spec, {"sparse": False})
        with_net = parse_job_spec(mc_spec(
            netlist=NETLIST,
            params={"samples": 12, "node": "mid", "lower": 0.0}))
        assert cache_key(with_net, {}) != cache_key(spec, {})

    def test_config_elides_netlist_text(self):
        spec = parse_job_spec({"analysis": "op", "netlist": NETLIST})
        config = spec.to_config()
        assert "netlist" not in config
        assert config["netlist_hash"] == spec.netlist_hash


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_round_trip_is_bit_identical(self):
        cache = ResultCache(4)
        text = cache.put("k1", {"b": 2, "a": [1.5, float("nan")]})
        assert cache.get("k1") == text == canonical_json(
            {"a": [1.5, float("nan")], "b": 2})

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", {}), cache.put("b", {})
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", {})
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None

    def test_metrics_counters(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(1, metrics=registry)
        cache.get("missing")
        cache.put("a", {}), cache.get("a"), cache.put("b", {})
        snap = registry.snapshot()["counters"]
        assert snap["serve.cache.misses"] == 1
        assert snap["serve.cache.hits"] == 1
        assert snap["serve.cache.evictions"] == 1

    def test_disk_tier_survives_process_restart(self, tmp_path):
        first = ResultCache(4, root=str(tmp_path))
        text = first.put("k", {"x": 1})
        second = ResultCache(4, root=str(tmp_path))
        assert second.get("k") == text

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        (tmp_path / "bad.json").write_text("{truncated", encoding="utf-8")
        cache = ResultCache(4, root=str(tmp_path))
        assert cache.get("bad") is None

    def test_traversal_key_never_reads_outside_root(self, tmp_path):
        # A key is raw client input via GET /results/<key>: anything
        # that is not a plain file-name component must be a miss, not
        # an open() of an arbitrary JSON file.
        secret = tmp_path / "secret.json"
        secret.write_text('{"leak": true}', encoding="utf-8")
        root = tmp_path / "cache"
        root.mkdir()
        cache = ResultCache(4, root=str(root))
        for key in ("../secret", "a/../../secret", "..", ".",
                    "sub/dir", "..\\secret", ""):
            assert cache.get(key) is None
        assert len(cache) == 0  # nothing traversal-shaped entered the LRU

    def test_traversal_key_never_writes_outside_root(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(4, root=str(root))
        cache.put("../escape", {"x": 1})
        assert not (tmp_path / "escape.json").exists()
        assert not root.exists()  # nothing was spilled at all


class TestEngineSessionCache:
    def test_build_once_then_reuse(self):
        cache = EngineSessionCache(2)
        builds = []
        for _ in range(3):
            with cache.lease(("h", "90nm"), lambda: builds.append(1)
                             or "fixture") as (fixture, reused):
                assert fixture == "fixture"
        assert builds == [1]

    def test_eviction_of_oldest(self):
        cache = EngineSessionCache(2)
        for key in ("a", "b", "c"):
            with cache.lease((key, "t"), lambda: key):
                pass
        assert len(cache) == 2
        with cache.lease(("a", "t"), lambda: "rebuilt") as (fx, reused):
            assert not reused and fx == "rebuilt"

    def test_leased_session_never_evicted(self):
        cache = EngineSessionCache(1)
        held = threading.Event()
        release = threading.Event()

        def holder():
            with cache.lease(("keep", "t"), lambda: "kept"):
                held.set()
                release.wait(10)
        thread = threading.Thread(target=holder)
        thread.start()
        assert held.wait(10)
        with cache.lease(("other", "t"), lambda: "other"):
            pass  # over capacity, but the live lease is not a victim
        release.set()
        thread.join(10)
        with cache.lease(("keep", "t"), lambda: "rebuilt") as (fx, reused):
            assert reused and fx == "kept"

    def test_exclusive_lease_serialises_same_topology(self):
        cache = EngineSessionCache(2)
        active, peak = [0], [0]

        def worker():
            with cache.lease(("same", "t"), lambda: "fx"):
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                time.sleep(0.02)
                active[0] -= 1
        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak[0] == 1

    def test_shared_leases_overlap(self):
        # MC-style read-only leases on the same topology must run
        # concurrently: all three threads reach the barrier inside
        # their lease, which is impossible if they serialise.
        cache = EngineSessionCache(2)
        barrier = threading.Barrier(3, timeout=10)
        errors = []

        def reader():
            try:
                with cache.lease(("same", "t"), lambda: "fx",
                                 shared=True):
                    barrier.wait()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        assert not errors

    def test_exclusive_lease_excludes_shared(self):
        # The PR-review bug: a corners/op job mutating the fixture
        # while an MC job clones from it.  A live exclusive lease must
        # hold shared leases out until it releases.
        cache = EngineSessionCache(2)
        writing = threading.Event()
        release = threading.Event()
        read = threading.Event()

        def mutator():
            with cache.lease(("same", "t"), lambda: "fx"):
                writing.set()
                release.wait(10)

        def reader():
            with cache.lease(("same", "t"), lambda: "fx", shared=True):
                read.set()
        t_w = threading.Thread(target=mutator)
        t_w.start()
        assert writing.wait(10)
        t_r = threading.Thread(target=reader)
        t_r.start()
        assert not read.wait(0.2), "shared lease overlapped an exclusive"
        release.set()
        assert read.wait(10)
        t_w.join(10), t_r.join(10)

    def test_shared_lease_excludes_exclusive(self):
        cache = EngineSessionCache(2)
        reading = threading.Event()
        release = threading.Event()
        wrote = threading.Event()

        def reader():
            with cache.lease(("same", "t"), lambda: "fx", shared=True):
                reading.set()
                release.wait(10)

        def mutator():
            with cache.lease(("same", "t"), lambda: "fx"):
                wrote.set()
        t_r = threading.Thread(target=reader)
        t_r.start()
        assert reading.wait(10)
        t_w = threading.Thread(target=mutator)
        t_w.start()
        assert not wrote.wait(0.2), "exclusive lease overlapped a shared"
        release.set()
        assert wrote.wait(10)
        t_r.join(10), t_w.join(10)

    def test_build_failure_does_not_wedge_the_session(self):
        cache = EngineSessionCache(2)

        def boom():
            raise RuntimeError("compile failed")
        for shared in (False, True):
            with pytest.raises(RuntimeError):
                with cache.lease(("same", "t"), boom, shared=shared):
                    pass  # pragma: no cover — build raises first
        with cache.lease(("same", "t"), lambda: "fx") as (fx, reused):
            assert fx == "fx" and not reused


# ----------------------------------------------------------------------
# Queue
# ----------------------------------------------------------------------

class TestJobQueue:
    def test_priority_order(self):
        queue = JobQueue(8)
        queue.put("low", "low"), queue.put("normal", "normal")
        queue.put("high", "high")
        assert [queue.get(0.1) for _ in range(3)] == \
            ["high", "normal", "low"]

    def test_fairness_interleaves_clients(self):
        queue = JobQueue(8)
        for index in range(3):
            queue.put(f"hog-{index}", "normal", client="hog")
        queue.put("polite-0", "normal", client="polite")
        order = [queue.get(0.1) for _ in range(4)]
        # The hog's 2nd/3rd jobs rank behind the polite client's 1st.
        assert order.index("polite-0") == 1

    def test_arrival_breaks_ties(self):
        queue = JobQueue(8)
        queue.put("first", "normal", client="a")
        queue.put("second", "normal", client="b")
        assert queue.get(0.1) == "first"

    def test_backpressure_raises_with_estimate(self):
        queue = JobQueue(2)
        queue.put("a"), queue.put("b")
        with pytest.raises(Backpressure) as err:
            queue.put("c")
        assert err.value.depth == 2
        assert err.value.retry_after_s >= 1.0

    def test_drain_pending_and_close(self):
        queue = JobQueue(4)
        queue.put("a"), queue.put("b")
        assert queue.drain_pending() == ["a", "b"]
        queue.close()
        assert queue.get(0.05) is None
        with pytest.raises(Backpressure):
            queue.put("c")


# ----------------------------------------------------------------------
# Budgets and fair-share worker counts
# ----------------------------------------------------------------------

class TestCancellableBudget:
    def test_behaves_like_a_deadline(self):
        budget = CancellableBudget.after(0.01, threading.Event())
        assert isinstance(budget, DeadlineBudget)
        time.sleep(0.03)
        assert budget.expired() and budget.remaining() == 0.0
        with pytest.raises(BudgetExpiredError):
            budget.check("test")

    def test_cancel_event_trips_immediately(self):
        event = threading.Event()
        budget = CancellableBudget.after(3600.0, event, reason="drain")
        assert not budget.expired()
        event.set()
        assert budget.expired() and budget.cancelled()
        with pytest.raises(BudgetExpiredError, match="drain"):
            budget.check("test")

    def test_pickles_down_to_plain_deadline(self):
        import pickle

        budget = CancellableBudget.after(60.0, threading.Event())
        clone = pickle.loads(pickle.dumps(budget))
        assert type(clone) is DeadlineBudget
        assert clone.total_s == budget.total_s

    def test_fair_share_jobs(self):
        import multiprocessing

        cores = multiprocessing.cpu_count()
        assert fair_share_jobs(1, lanes=1) == 1
        assert fair_share_jobs(64, lanes=1) <= cores
        assert fair_share_jobs(64, lanes=cores * 2) == 1
        with pytest.raises(ValueError):
            fair_share_jobs(2, lanes=0)

    def test_outcome_exit_codes_match_taxonomy(self):
        assert set(OUTCOME_EXIT_CODES) <= set(runlog.OUTCOMES)
        assert OUTCOME_EXIT_CODES["ok"] == 0
        assert OUTCOME_EXIT_CODES["error"] == 1
        assert OUTCOME_EXIT_CODES["interrupted"] == 130


# ----------------------------------------------------------------------
# Job events, verify caching policy, submit-vs-drain atomicity
# ----------------------------------------------------------------------

class TestJobEventFraming:
    def test_heartbeat_fields_cannot_clobber_framing(self):
        # Engine progress dicts can carry any key; the NDJSON framing
        # fields (seq/event/job_id) must survive a collision.
        job = Job("j000001", parse_job_spec(mc_spec()), "0" * 24)
        job.heartbeat({"event": "evil", "seq": 99, "job_id": "spoof",
                       "done": 3})
        event = job.events_after(0)[-1]
        assert event["event"] == "heartbeat"
        assert event["seq"] == 0
        assert event["job_id"] == "j000001"
        assert event["x_event"] == "evil"
        assert event["x_seq"] == 99 and event["x_job_id"] == "spoof"
        assert event["done"] == 3


class TestVerifyNeverCached:
    def test_verify_is_listed_uncached(self):
        assert "verify" in UNCACHED_ANALYSES

    def test_submit_skips_cache_lookup_for_verify(self):
        # A pre-seeded cache entry for the verify key must not be
        # served: the goldens on disk may have changed since.
        app = ServeApp(ServeConfig(record_runs=False))
        payload = {"analysis": "verify", "params": {"ids": ["E1"]}}
        key = cache_key(parse_job_spec(payload), app.capabilities)
        app.cache.put(key, {"analysis": "verify", "passed": True})
        status, response = app.submit(payload)
        assert status == 202 and response["cached"] is False

    def test_finalize_skips_cache_publish_for_verify(self):
        app = ServeApp(ServeConfig(record_runs=False))
        status, response = app.submit({"analysis": "verify",
                                       "params": {}})
        assert status == 202
        job = app.get_job(response["job_id"])
        app.runner._finalize(job, "ok",
                             {"analysis": "verify", "passed": True},
                             None)
        assert job.state == "done" and len(app.cache) == 0


class TestSubmitDrainAtomicity:
    def test_submit_after_drain_is_refused_even_with_dead_workers(self):
        # No workers are running: a job that slipped past the drain
        # check would be stranded in 'queued' forever.  The state lock
        # shared by submit and begin_drain forbids that interleaving.
        app = ServeApp(ServeConfig(record_runs=False))
        app.begin_drain("test")
        assert app._finish_drain()  # workers (none) joined; queue closed
        status, response = app.submit(mc_spec())
        assert status == 503 and response["outcome"] == "refused"

    def test_drained_queue_cancels_jobs_it_held(self):
        app = ServeApp(ServeConfig(record_runs=False))
        status, response = app.submit(mc_spec())
        assert status == 202
        app.begin_drain("test")
        job = app.get_job(response["job_id"])
        assert job.state == "cancelled" and job.outcome == "cancelled"


# ----------------------------------------------------------------------
# Black-box service behaviour (shared daemon)
# ----------------------------------------------------------------------

class TestServiceEndpoints:
    def test_healthz_shape(self, server):
        _app, client, _exit = server
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["uptime_s"] >= 0.0

    def test_compute_then_cache_hit_bit_identical(self, server):
        _app, client, _exit = server
        spec = mc_spec(seed=101)
        hits_before = client.metric_value("serve.cache.hits")
        first = client.run(spec)
        assert first["cached"] is False and first["outcome"] == "ok"
        second = client.run(spec)
        assert second["cached"] is True
        # Bit-identical by construction: the raw cached text IS the
        # canonical serialisation of the computed envelope.
        raw = client.result_text(first["cache_key"])
        assert raw == canonical_json(first["result"])
        assert json.loads(raw) == second["result"]
        assert client.metric_value("serve.cache.hits") > hits_before

    def test_different_seed_misses(self, server):
        _app, client, _exit = server
        first = client.run(mc_spec(seed=201))
        other = client.run(mc_spec(seed=202))
        assert other["cached"] is False
        assert other["cache_key"] != first["cache_key"]

    def test_op_on_netlist(self, server):
        _app, client, _exit = server
        reply = client.run({"analysis": "op", "netlist": NETLIST})
        assert reply["outcome"] == "ok"
        nodes = reply["result"]["nodes"]
        assert abs(nodes["mid"] - 0.5) < 1e-6  # 1.5 V across 10k/5k

    def test_mc_on_netlist_node_spec(self, server):
        _app, client, _exit = server
        reply = client.run({
            "analysis": "mc", "tech": "90nm", "netlist": NETLIST,
            "params": {"samples": 6, "node": "mid",
                       "lower": 0.4, "upper": 0.6}, "seed": 3})
        assert reply["outcome"] == "ok"
        assert reply["result"]["yield_fraction"] == 1.0

    def test_mc_unknown_node_refused_in_runner(self, server):
        _app, client, _exit = server
        payload = client.submit_ok({
            "analysis": "mc", "tech": "90nm", "netlist": NETLIST,
            "params": {"samples": 4, "node": "ghost", "lower": 0.0}})
        final = client.wait(payload["job_id"])
        assert final["state"] == "failed"
        assert final["outcome"] == "refused"
        assert "ghost" in final["error"]

    def test_corners(self, server):
        _app, client, _exit = server
        reply = client.run({"analysis": "corners", "tech": "90nm",
                            "params": {}})
        assert reply["outcome"] in ("ok", "degraded")
        values = reply["result"]["values"]["offset"]
        assert any(label.startswith("TT/") for label in values)
        assert reply["result"]["worst_case"]["offset"]["point"] in values

    def test_aging(self, server):
        _app, client, _exit = server
        reply = client.run({"analysis": "aging", "tech": "90nm",
                            "params": {"years": 10.0}})
        result = reply["result"]
        assert result["nbti_dvt_v"] > 0
        assert result["em_mttf_years"] > 0

    def test_verify_single_experiment(self, server):
        _app, client, _exit = server
        reply = client.run({"analysis": "verify",
                            "params": {"ids": ["E1"]}}, timeout=200)
        assert reply["outcome"] == "ok"
        assert reply["result"]["experiments"] == ["E1"]
        assert reply["result"]["passed"] is True

    def test_submit_refusals_are_400(self, server):
        _app, client, _exit = server
        status, payload = client.submit({"analysis": "warp"})
        assert status == 400 and payload["outcome"] == "refused"
        status, _headers, payload = client.request_json("POST", "/jobs")
        assert status == 400

    def test_unknown_job_and_result_are_404(self, server):
        _app, client, _exit = server
        status, _payload = client.job("j999999")
        assert status == 404
        assert client.result_text("no-such-key") is None

    def test_method_and_route_errors(self, server):
        _app, client, _exit = server
        status, _h, _b = client.request("DELETE", "/jobs/j000001")
        assert status == 405
        status, _h, _b = client.request("GET", "/teapot")
        assert status == 404

    def test_oversized_body_is_413(self):
        # Dedicated daemon with a tiny limit: the whole oversized body
        # fits in socket buffers, so the reply arrives before any reset.
        with serving(workers=1, max_body_bytes=1024) as (
                _app, client, _exit):
            body = b"x" * 2048
            status, _h, _b = client.request("POST", "/jobs", body=body)
            assert status == 413

    def test_event_stream_shape(self, server):
        _app, client, _exit = server
        reply = client.run(mc_spec(seed=301, params={"samples": 8}))
        events = client.events(reply["job_id"])
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert kinds[1] == "started"
        assert kinds[-1] == "finished"
        assert any(k == "heartbeat" for k in kinds)
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats[-1]["done"] == beats[-1]["total"] == 8
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_jobs_listing(self, server):
        _app, client, _exit = server
        reply = client.run(mc_spec(seed=401, params={"samples": 4}))
        status, _h, listing = client.request_json("GET", "/jobs")
        assert status == 200
        ids = [j["id"] for j in listing["jobs"]]
        assert reply["job_id"] in ids
        assert all("result" not in j for j in listing["jobs"])

    def test_job_snapshot_fields(self, server):
        _app, client, _exit = server
        reply = client.run(mc_spec(seed=501, params={"samples": 4}))
        snapshot = reply["snapshot"]
        assert snapshot["state"] == "done"
        assert snapshot["cache_key"] == reply["cache_key"]
        assert snapshot["t_end"] >= snapshot["t_start"] >= \
            snapshot["t_submit"]
        assert snapshot["session_reused"] in (True, False)

    def test_session_reuse_across_same_topology(self, server):
        _app, client, _exit = server
        specs = [mc_spec(seed=601 + i, params={"samples": 4})
                 for i in range(2)]
        replies = [client.run(spec) for spec in specs]
        assert replies[1]["snapshot"]["session_reused"] is True

    def test_metrics_exposition_is_strictly_valid(self, server):
        app, client, _exit = server
        families = promexp.scrape("127.0.0.1", app.port)
        assert families["repro_run_info"]["samples"][0][1]["command"] \
            == "serve"
        assert "repro_serve_jobs_submitted_total" in families

    def test_metric_value_helper(self, server):
        _app, client, _exit = server
        assert client.metric_value("serve.jobs.submitted") >= 1
        assert client.metric_value("repro_serve_jobs_submitted_total") >= 1
        assert client.metric_value("no.such.metric", default=-1.0) == -1.0


# ----------------------------------------------------------------------
# Dedicated daemons: /results hardening, fixture-lease isolation
# ----------------------------------------------------------------------

class TestResultsEndpointHardening:
    def test_traversal_paths_are_404(self, tmp_path):
        # With a disk cache tier, /results/<key> must never open a
        # file outside the cache directory.
        secret = tmp_path / "secret.json"
        secret.write_text('{"leak": true}', encoding="utf-8")
        cache_dir = tmp_path / "cache"
        with serving(workers=1, cache_dir=str(cache_dir)) as (
                _app, client, _exit):
            for path in ("/results/../secret",
                         "/results/../../etc/passwd",
                         "/results/a/../../secret",
                         "/results/..%2Fsecret"):
                status, _headers, data = client.request("GET", path)
                assert status == 404, path
                assert b"leak" not in data

    def test_non_hex_keys_are_404_without_touching_disk(self, server):
        _app, client, _exit = server
        assert client.result_text("0" * 23) is None  # wrong length
        assert client.result_text("G" * 24) is None  # not hex
        assert client.result_text("secret") is None


class TestFixtureLeaseIsolation:
    def test_mc_unskewed_by_concurrent_corners_same_netlist(self):
        # The review finding: corners mutates the shared fixture
        # (corner params, vdd, temperature) while MC chunks clone it.
        # MC must see only nominal parameters, so its result matches a
        # run with no corners job in flight.
        mc = {"analysis": "mc", "tech": "90nm", "netlist": NETLIST,
              "params": {"samples": 24, "node": "mid", "lower": 0.0},
              "seed": 77, "backend": "thread"}
        corners = {"analysis": "corners", "tech": "90nm",
                   "netlist": NETLIST, "priority": "high",
                   "params": {"node": "mid", "lower": 0.0,
                              "vdd_source": "v1"}}
        with serving(workers=1) as (_app, client, _exit):
            reference = client.run(mc)["result"]
        with serving(workers=2) as (_app, client, _exit):
            corners_ack = client.submit_ok(corners)
            mc_ack = client.submit_ok(mc)
            mc_final = client.wait(mc_ack["job_id"])
            corners_final = client.wait(corners_ack["job_id"])
            assert corners_final["outcome"] in ("ok", "degraded")
            assert mc_final["outcome"] == "ok"
            assert mc_final["result"] == reference


# ----------------------------------------------------------------------
# Concurrent-client soak (tentpole acceptance)
# ----------------------------------------------------------------------

class TestSoak:
    N_CLIENTS = 9

    def _client_workload(self, index):
        backend = ("serial", "thread", "process")[index % 3]
        if index % 4 == 3:
            return {"analysis": "op",
                    "netlist": NETLIST.replace(
                        "5k", repr(5000.0 + index))}
        return mc_spec(seed=1000 + index, backend=backend,
                       params={"samples": 6 + index % 3},
                       client=f"soak-{index}")

    def test_soak_mixed_backends_deterministic(self, server):
        _app, client, _exit = server
        specs = [self._client_workload(i) for i in range(self.N_CLIENTS)]
        rounds = []
        for _round in range(2):
            replies = [None] * len(specs)

            def drive(index):
                replies[index] = client.run(specs[index], timeout=180)
            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(len(specs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(200)
            assert all(r is not None for r in replies)
            assert all(r["outcome"] == "ok" for r in replies)
            rounds.append(replies)
        for first, second in zip(*rounds):
            assert second["cached"] is True
            assert second["result"] == first["result"]
            raw = client.result_text(first["cache_key"])
            assert raw == canonical_json(first["result"])

    def test_soak_service_still_healthy(self, server):
        _app, client, _exit = server
        assert client.healthz()["status"] == "ok"


# ----------------------------------------------------------------------
# Backpressure, drain, budgets, chaos (dedicated daemons)
# ----------------------------------------------------------------------

class TestBackpressure:
    def test_queue_full_maps_to_429_with_retry_after(self):
        with serving(workers=1, queue_depth=1) as (app, client, _exit):
            slow = mc_spec(params={"samples": 600, "chunk_size": 8},
                           backend="serial")
            seen_429 = None
            for seed in range(40):
                status, headers, payload = client.request_json(
                    "POST", "/jobs", dict(slow, seed=7000 + seed))
                if status == 429:
                    seen_429 = (headers, payload)
                    break
                assert status == 202
            assert seen_429 is not None, "queue never backpressured"
            headers, payload = seen_429
            assert int(headers["retry-after"]) >= 1
            assert payload["retry_after_s"] >= 1.0
            assert client.metric_value(
                "serve.backpressure.rejections") >= 1
            app.begin_drain("test")  # fast teardown: cancel the backlog


class TestDrain:
    def test_drain_cancels_queued_and_stops_running(self):
        with serving(workers=1, drain_grace_s=30.0) as (
                app, client, exit_code):
            running = client.submit_ok(mc_spec(
                seed=8001, backend="serial",
                params={"samples": 20000, "chunk_size": 4}))
            queued = client.submit_ok(mc_spec(
                seed=8002, params={"samples": 50}))
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, snap = client.job(running["job_id"])
                if snap.get("progress", {}).get("done", 0) > 0:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("job never started")
            app.request_stop()
            running_job = app.get_job(running["job_id"])
            queued_job = app.get_job(queued["job_id"])
            assert running_job.wait(30) and queued_job.wait(30)
            assert queued_job.outcome == "cancelled"
            assert running_job.outcome in ("budget", "interrupted")
            # Partial work is returned, not thrown away.
            result = running_job.result
            assert result is not None and result["partial"] is True
            assert 0 < result["n_evaluated"] < result["n_samples"]
        assert exit_code["code"] == 0

    def test_submit_while_draining_is_503(self):
        with serving(workers=1) as (app, client, _exit):
            app.begin_drain("test")
            status, payload = client.submit(mc_spec())
            assert status == 503
            assert payload["outcome"] == "refused"
            assert client.healthz()["status"] == "draining"

    def test_drain_is_idempotent(self):
        with serving(workers=1) as (app, client, _exit):
            app.begin_drain("one")
            app.begin_drain("two")
            assert client.metric_value("serve.drains") == 1


class TestBudgetExpiry:
    def test_budget_stop_returns_partial_result(self):
        with serving(workers=1) as (_app, client, _exit):
            reply = client.run(mc_spec(
                seed=8101, backend="serial", timeout_s=0.4,
                params={"samples": 20000, "chunk_size": 4}), timeout=60)
            assert reply["outcome"] == "budget"
            result = reply["result"]
            assert result["partial"] is True
            assert 0 < result["n_evaluated"] < 20000

    def test_budget_stop_with_checkpoint_is_resumable(self, tmp_path):
        with serving(workers=1, spool=str(tmp_path)) as (
                _app, client, _exit):
            payload = client.submit_ok(mc_spec(
                seed=8201, backend="serial", timeout_s=0.4,
                checkpoint=True,
                params={"samples": 20000, "chunk_size": 4}))
            final = client.wait(payload["job_id"], timeout=60)
            assert final["outcome"] == "budget"
            assert final["resumable"] is True
            manifest = (Path(final["checkpoint_dir"]) / "manifest.json")
            assert manifest.is_file()
            saved = json.loads(manifest.read_text())
            assert saved["completed"], "no chunks checkpointed"

    def test_budget_outcome_never_cached(self):
        with serving(workers=1) as (_app, client, _exit):
            spec = mc_spec(seed=8301, backend="serial", timeout_s=0.3,
                           params={"samples": 20000, "chunk_size": 4})
            first = client.run(spec, timeout=60)
            assert first["outcome"] == "budget"
            assert client.result_text(first["cache_key"]) is None
            second = client.submit_ok(spec)
            assert second["cached"] is False


class TestChaos:
    def test_worker_death_mid_job_degrades_not_kills(self, server):
        _app, client, _exit = server
        reply = client.run(mc_spec(
            seed=8401, backend="thread",
            params={"samples": 12, "fault": {"kill_on": [3]}}))
        assert reply["outcome"] == "degraded"
        result = reply["result"]
        assert result["failure_counts"] == {"WorkerKilledError": 1}
        assert result["degraded"] is True
        assert client.healthz()["status"] == "ok"

    def test_fault_requires_chaos_flag(self):
        with serving(workers=1, chaos=False) as (_app, client, _exit):
            payload = client.submit_ok(mc_spec(
                params={"samples": 4, "fault": {"kill_on": [1]}}))
            final = client.wait(payload["job_id"])
            assert final["outcome"] == "refused"
            assert "chaos" in final["error"]

    def test_fault_refuses_process_backend(self, server):
        _app, client, _exit = server
        payload = client.submit_ok(mc_spec(
            backend="process",
            params={"samples": 4, "fault": {"kill_on": [1]}}))
        final = client.wait(payload["job_id"])
        assert final["outcome"] == "refused"
        assert "picklable" in final["error"]


# ----------------------------------------------------------------------
# Satellite: repo hygiene — run records must never be committed
# ----------------------------------------------------------------------

class TestRepoHygiene:
    def test_no_run_registry_artifacts_tracked(self):
        if not (REPO_ROOT / ".git").exists():
            pytest.skip("not a git checkout")
        try:
            tracked = subprocess.run(
                ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
                text=True, check=True, timeout=30).stdout.splitlines()
        except (OSError, subprocess.SubprocessError):
            pytest.skip("git unavailable")
        offenders = [p for p in tracked if p.startswith(".repro/")]
        assert offenders == [], (
            f"run-registry artifacts committed: {offenders}")

    def test_gitignore_covers_run_registry(self):
        text = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
        assert ".repro/" in text.split()


# ----------------------------------------------------------------------
# Satellite: /metrics concurrency and port-collision degradation
# ----------------------------------------------------------------------

class TestMetricsConcurrency:
    def test_parallel_scrapes_during_active_run_parse_cleanly(self):
        with serving(workers=1) as (_app, client, _exit):
            client.submit_ok(mc_spec(
                seed=8501, backend="serial",
                params={"samples": 4000, "chunk_size": 8}))
            failures = []

            def scrape_loop():
                try:
                    for _ in range(8):
                        promexp.parse_exposition(client.metrics_text())
                except Exception as exc:  # noqa: BLE001 — recorded
                    failures.append(exc)
            threads = [threading.Thread(target=scrape_loop)
                       for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert failures == []

    def test_exporter_port_collision_degrades_cli_run(self, capsys):
        from repro.cli import main

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main(["mc", "--tech", "90nm", "--samples", "4",
                         "--metrics-port", str(port)])
        finally:
            blocker.close()
        assert code == 0
        assert "metrics endpoint disabled" in capsys.readouterr().err

    def test_serve_bind_collision_fails_loudly_not_tracebacks(
            self, capsys):
        from repro.cli import main

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            code = main(["serve", "--port", str(port)])
        finally:
            blocker.close()
        assert code == 1
        assert "error" in capsys.readouterr().err.lower()


# ----------------------------------------------------------------------
# Satellite: run-registry round-trips for serve-produced records
# ----------------------------------------------------------------------

class TestServeRunRecords:
    @pytest.fixture()
    def recording_server(self, tmp_path, monkeypatch):
        runs_dir = tmp_path / "runs"
        monkeypatch.setenv("REPRO_RUNS_DIR", str(runs_dir))
        monkeypatch.delenv("REPRO_NO_RUNLOG", raising=False)
        with serving(workers=1, chaos=True, record_runs=True) as ctx:
            yield ctx, runs_dir

    def test_outcome_taxonomy_round_trips_through_http(
            self, recording_server):
        (_app, client, _exit), runs_dir = recording_server
        client.run(mc_spec(seed=9001, params={"samples": 6}))
        client.run(mc_spec(seed=9002, params={
            "samples": 8, "fault": {"kill_on": [2]}}))
        client.run(mc_spec(seed=9003, backend="serial", timeout_s=0.3,
                           params={"samples": 20000, "chunk_size": 4}),
                   timeout=60)
        refused = client.submit_ok({
            "analysis": "mc", "tech": "90nm", "netlist": NETLIST,
            "params": {"samples": 4, "node": "ghost", "lower": 0.0}})
        client.wait(refused["job_id"])
        records = runlog.RunRegistry(runs_dir).list()
        outcomes = {r["outcome"] for r in records}
        assert {"ok", "degraded", "budget", "refused"} <= outcomes
        for record in records:
            assert record["command"] == "serve.mc"
            assert record["outcome"] in runlog.OUTCOMES
            assert record["exit_code"] == \
                OUTCOME_EXIT_CODES[record["outcome"]]
            assert record["job_id"].startswith("j")
            assert len(record["cache_key"]) == 24
            assert "netlist" not in record["config"]

    def test_diff_runs_on_serve_records(self, recording_server):
        (_app, client, _exit), runs_dir = recording_server
        client.run(mc_spec(seed=9101, params={"samples": 6}))
        client.run(mc_spec(seed=9101, params={"samples": 10}))
        records = runlog.RunRegistry(runs_dir).list()
        assert len(records) == 2
        diff = diff_runs(records[0], records[1])
        assert diff["outcome_a"] == diff["outcome_b"] == "ok"
        assert not diff["comparable"]  # sample counts differ
        assert any("params" in d["key"] for d in diff["config_deltas"])

    def test_runs_gc_keeps_newest_serve_records(self, recording_server):
        from repro.cli import main

        (_app, client, _exit), runs_dir = recording_server
        for seed in range(4):
            client.run(mc_spec(seed=9201 + seed, params={"samples": 4}))
        registry = runlog.RunRegistry(runs_dir)
        assert len(registry.list()) == 4
        newest = registry.list()[-1]["run_id"]
        assert main(["runs", "gc", "--keep", "2"]) == 0
        survivors = registry.list()
        assert len(survivors) == 2
        assert survivors[-1]["run_id"] == newest


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

class TestCliServe:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 8040
        assert args.workers == 2
        assert args.queue_depth == 16
        assert args.chaos is False

    def test_serve_listed_in_module_docstring(self):
        import repro.cli as cli

        assert "serve" in cli.__doc__
