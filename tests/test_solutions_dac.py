"""Unit tests for the current-steering DAC and SSPA calibration (§5.1)."""

import math

import numpy as np
import pytest

from repro.solutions import (
    CurrentSteeringDac,
    DacConfig,
    DacDesign,
    area_tradeoff,
    calibrate,
    inl_yield,
    intrinsic_sigma_for_inl,
    max_sigma_for_yield,
    measure_unary_errors,
    sspa_sequence,
    sspa_sequence_paired,
)


_HAVE_SCIPY_STATS = True
try:
    import scipy.stats  # noqa: F401
except ImportError:
    _HAVE_SCIPY_STATS = False
requires_scipy_stats = pytest.mark.skipif(
    not _HAVE_SCIPY_STATS,
    reason="needs scipy.stats (yield/area closed forms)")


class TestDacConfig:
    def test_segmentation_arithmetic(self):
        cfg = DacConfig(n_bits=14, n_unary_bits=6)
        assert cfg.n_lsb_bits == 8
        assert cfg.n_unary_sources == 63
        assert cfg.unary_weight_lsb == 256
        assert cfg.n_codes == 16384

    def test_validation(self):
        with pytest.raises(ValueError):
            DacConfig(n_bits=1)
        with pytest.raises(ValueError):
            DacConfig(n_bits=8, n_unary_bits=9)


class TestDacTransfer:
    def test_ideal_dac_perfectly_linear(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, unit_sigma_rel=0.0, rng=rng)
        assert dac.max_inl_lsb() == pytest.approx(0.0, abs=1e-9)
        assert dac.max_dnl_lsb() == pytest.approx(0.0, abs=1e-9)

    def test_transfer_monotone_levels(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, unit_sigma_rel=0.005, rng=rng)
        out = dac.transfer_lsb()
        assert out.size == 1024
        # Small errors: transfer is still monotone.
        assert np.all(np.diff(out) > -0.5)

    def test_endpoints_absorbed_by_inl(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, unit_sigma_rel=0.01, rng=rng)
        inl = dac.inl_lsb()
        assert inl[0] == pytest.approx(0.0, abs=1e-12)
        assert inl[-1] == pytest.approx(0.0, abs=1e-9)

    def test_inl_scales_with_sigma(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=5)
        inls = []
        for sigma in (0.002, 0.02):
            vals = [CurrentSteeringDac(cfg, sigma,
                                       np.random.default_rng(s)).max_inl_lsb()
                    for s in range(10)]
            inls.append(np.mean(vals))
        assert inls[1] > 5.0 * inls[0]

    def test_sequence_permutation_enforced(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.01, rng)
        with pytest.raises(ValueError, match="permutation"):
            dac.set_sequence([0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13])

    def test_sequence_changes_inl_not_endpoints(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.02, rng)
        out_id = dac.transfer_lsb()
        perm = rng.permutation(cfg.n_unary_sources)
        out_perm = dac.transfer_lsb(perm)
        assert out_perm[-1] == pytest.approx(out_id[-1])
        assert not np.allclose(out_perm, out_id)

    def test_meets_inl_spec(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        perfect = CurrentSteeringDac(cfg, 0.0, rng)
        assert perfect.meets_inl_spec(0.5)
        with pytest.raises(ValueError):
            perfect.meets_inl_spec(0.0)


class TestSspaSequence:
    def test_reduces_line_deviation(self, rng):
        errors = rng.normal(0.0, 1e-3, 63)
        total = errors.sum()
        line = total * np.arange(1, 64) / 63

        def max_dev(seq):
            return np.abs(np.cumsum(errors[seq]) - line).max()

        identity = np.arange(63)
        improved = sspa_sequence(errors)
        assert max_dev(improved) < max_dev(identity)

    def test_paired_at_least_as_good_on_average(self, rng):
        devs_greedy, devs_paired = [], []
        for seed in range(8):
            local = np.random.default_rng(seed)
            errors = local.normal(0.0, 1e-3, 31)
            line = errors.sum() * np.arange(1, 32) / 31
            g = np.abs(np.cumsum(errors[sspa_sequence(errors)]) - line).max()
            p = np.abs(np.cumsum(errors[sspa_sequence_paired(errors)]) - line).max()
            devs_greedy.append(g)
            devs_paired.append(p)
        assert np.mean(devs_paired) <= np.mean(devs_greedy) * 1.01

    def test_is_permutation(self, rng):
        errors = rng.normal(0.0, 1e-3, 31)
        for fn in (sspa_sequence, sspa_sequence_paired):
            seq = fn(errors)
            assert sorted(seq.tolist()) == list(range(31))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sspa_sequence(np.array([]))


class TestCalibrate:
    def test_improves_inl(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=6)
        improvements = []
        for seed in range(6):
            dac = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(seed))
            result = calibrate(dac)
            improvements.append(result.inl_improvement)
        assert np.mean(improvements) > 1.5

    def test_installs_sequence(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=5)
        dac = CurrentSteeringDac(cfg, 0.01, rng)
        result = calibrate(dac, install=True)
        assert np.array_equal(dac.sequence, result.sequence)
        assert dac.max_inl_lsb() == pytest.approx(result.inl_after_lsb)

    def test_measurement_noise_degrades_calibration(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=6)
        clean, noisy = [], []
        for seed in range(8):
            d1 = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(seed))
            d2 = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(seed))
            clean.append(calibrate(d1).inl_after_lsb)
            noisy.append(calibrate(
                d2, comparator_sigma_rel=0.01,
                rng=np.random.default_rng(seed + 100)).inl_after_lsb)
        assert np.mean(noisy) > np.mean(clean)

    def test_perfect_comparator_reads_truth(self, rng):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.01, rng)
        measured = measure_unary_errors(dac)
        assert np.array_equal(measured, dac.unary_errors)


@requires_scipy_stats
class TestYieldAndArea:
    def test_calibrated_yield_beats_uncalibrated(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=6)
        sigma = 3.0 * intrinsic_sigma_for_inl(cfg)
        y_raw = inl_yield(cfg, sigma, n_samples=40, calibrated=False, seed=1)
        y_cal = inl_yield(cfg, sigma, n_samples=40, calibrated=True, seed=1)
        assert y_cal > y_raw + 0.3

    def test_intrinsic_sigma_gives_high_yield(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=6)
        sigma = intrinsic_sigma_for_inl(cfg, yield_target=0.9973)
        assert inl_yield(cfg, sigma, n_samples=40, seed=2) > 0.85

    def test_max_sigma_search_bracket(self):
        cfg = DacConfig(n_bits=10, n_unary_bits=5)
        sigma = max_sigma_for_yield(cfg, yield_target=0.9, n_samples=30,
                                    calibrated=False, seed=3)
        assert inl_yield(cfg, sigma, n_samples=30, seed=3) >= 0.9
        assert inl_yield(cfg, 2.5 * sigma, n_samples=30, seed=3) < 0.9

    def test_area_tradeoff_shape(self, tech90):
        # The §5.1 claim: calibrated array area ≪ intrinsic array area.
        cfg = DacConfig(n_bits=12, n_unary_bits=6)
        result = area_tradeoff(cfg, tech90, yield_target=0.9, n_samples=40,
                               seed=4)
        assert result.sigma_calibrated > 1.5 * result.sigma_intrinsic
        assert result.area_ratio < 0.5
        assert result.area_calibrated_mm2 > 0.0


class TestDacDesign:
    def test_sigma_falls_with_area(self, tech90):
        small = DacDesign(tech90, unit_area_um2=0.1)
        big = DacDesign(tech90, unit_area_um2=10.0)
        assert big.unit_sigma_rel() < small.unit_sigma_rel()

    def test_pelgrom_area_scaling(self, tech90):
        a1 = DacDesign(tech90, unit_area_um2=1.0)
        a4 = DacDesign(tech90, unit_area_um2=4.0)
        assert a1.unit_sigma_rel() / a4.unit_sigma_rel() == pytest.approx(
            2.0, rel=0.1)

    def test_total_area(self, tech90):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        design = DacDesign(tech90, unit_area_um2=1.0)
        # 1023 units × 1 µm² × 1.2 overhead.
        assert design.analog_area_mm2(cfg) == pytest.approx(
            1023 * 1.2e-6, rel=1e-6)

    def test_validation(self, tech90):
        with pytest.raises(ValueError):
            DacDesign(tech90, unit_area_um2=-1.0)
