"""Unit tests for the knobs-and-monitors framework (§5.2, Fig 6)."""

import pytest

from repro.solutions import (
    AdaptiveSystem,
    ControlAlgorithm,
    Knob,
    Monitor,
    SpecTarget,
)


class FakePlant:
    """A toy system: performance = gain·knob − degradation; power ∝ knob²."""

    def __init__(self, gain=10.0):
        self.gain = gain
        self.degradation = 0.0
        self.knob_value = 1.0

    def performance(self):
        return self.gain * self.knob_value - self.degradation

    def power(self):
        return self.knob_value ** 2


def build_system(plant, quantization=0.0, settings=(1.0, 1.1, 1.2, 1.3, 1.4),
                 spec_lower=9.5):
    monitor = Monitor("perf", plant.performance, quantization=quantization)
    knob = Knob("bias", list(settings),
                lambda v: setattr(plant, "knob_value", v))
    spec = SpecTarget("perf", lower=spec_lower)
    return AdaptiveSystem([monitor], [knob], [spec], plant.power)


class TestMonitor:
    def test_reads_measurement(self):
        plant = FakePlant()
        m = Monitor("perf", plant.performance)
        assert m.read() == pytest.approx(10.0)

    def test_quantization(self):
        m = Monitor("x", lambda: 1.234, quantization=0.1)
        assert m.read() == pytest.approx(1.2)

    def test_rejects_negative_quantization(self):
        with pytest.raises(ValueError):
            Monitor("x", lambda: 0.0, quantization=-1.0)


class TestKnob:
    def test_applies_initial_setting(self):
        plant = FakePlant()
        Knob("k", [2.0, 3.0], lambda v: setattr(plant, "knob_value", v))
        assert plant.knob_value == 2.0

    def test_set_index(self):
        plant = FakePlant()
        k = Knob("k", [1.0, 2.0], lambda v: setattr(plant, "knob_value", v))
        k.set_index(1)
        assert plant.knob_value == 2.0
        assert k.value == 2.0
        with pytest.raises(ValueError):
            k.set_index(5)

    def test_needs_two_settings(self):
        with pytest.raises(ValueError):
            Knob("k", [1.0], lambda v: None)


class TestSpecTarget:
    def test_margin_signs(self):
        spec = SpecTarget("m", lower=1.0, upper=2.0)
        assert spec.margin(1.5) == pytest.approx(0.5)
        assert spec.margin(0.5) == pytest.approx(-0.5)
        assert spec.margin(2.5) == pytest.approx(-0.5)
        assert spec.satisfied(1.5)
        assert not spec.satisfied(0.5)

    def test_one_sided(self):
        spec = SpecTarget("m", lower=1.0)
        assert spec.margin(100.0) == pytest.approx(99.0)


class TestAdaptiveSystem:
    def test_validation(self):
        plant = FakePlant()
        monitor = Monitor("perf", plant.performance)
        knob = Knob("k", [1.0, 1.1], lambda v: None)
        with pytest.raises(ValueError, match="unknown monitor"):
            AdaptiveSystem([monitor], [knob],
                           [SpecTarget("other", lower=0.0)], plant.power)
        with pytest.raises(ValueError):
            AdaptiveSystem([], [knob], [], plant.power)

    def test_no_action_when_in_spec(self):
        plant = FakePlant()
        system = build_system(plant)
        record = system.regulate()
        assert record.in_spec
        assert record.knob_indices["bias"] == 0  # cheapest setting kept

    def test_compensates_degradation(self):
        # Fig 6 in miniature: degradation accumulates, the loop holds spec.
        plant = FakePlant()
        system = build_system(plant)
        for degradation in (1.0, 2.0, 3.0, 4.0):
            plant.degradation = degradation
            record = system.regulate()
            assert record.in_spec, f"lost spec at degradation {degradation}"
        # Knob must have moved up to compensate.
        assert system.knobs[0].index > 0

    def test_minimizes_cost_among_feasible(self):
        plant = FakePlant()
        system = build_system(plant)
        plant.degradation = 1.0  # needs knob ≥ 1.1 hmm: 10·1.1−1 = 10 ≥ 9.5
        record = system.regulate()
        assert record.in_spec
        # The CHEAPEST satisfying setting is 1.05? settings are 1.0
        # (perf 9.0, fails) and 1.1 (perf 10.0, passes) → index 1.
        assert record.knob_indices["bias"] == 1

    def test_reports_violation_when_exhausted(self):
        plant = FakePlant()
        system = build_system(plant)
        plant.degradation = 100.0  # unfixable
        record = system.regulate()
        assert not record.in_spec
        # Controller should have pushed the knob to its maximum.
        assert record.knob_indices["bias"] == len(system.knobs[0].settings) - 1

    def test_quantized_monitor_still_regulates(self):
        plant = FakePlant()
        system = build_system(plant, quantization=0.5)
        plant.degradation = 2.0
        record = system.regulate()
        assert record.in_spec

    def test_history_recorded(self):
        plant = FakePlant()
        system = build_system(plant)
        system.regulate()
        plant.degradation = 2.0
        system.regulate()
        assert len(system.history) == 2
        assert system.history[1].evaluations > 0

    def test_two_knob_coordinate_descent(self):
        # Performance needs BOTH knobs; cost prefers the second knob low.
        state = {"a": 1.0, "b": 1.0, "deg": 3.0}

        def perf():
            return 5.0 * state["a"] + 5.0 * state["b"] - state["deg"]

        def cost():
            return state["a"] ** 2 + 3.0 * state["b"] ** 2

        monitor = Monitor("perf", perf)
        ka = Knob("a", [1.0, 1.2, 1.4], lambda v: state.update(a=v))
        kb = Knob("b", [1.0, 1.2, 1.4], lambda v: state.update(b=v))
        system = AdaptiveSystem([monitor], [ka, kb],
                                [SpecTarget("perf", lower=9.0)], cost,
                                ControlAlgorithm(max_sweeps=4))
        record = system.regulate()
        assert record.in_spec
        # Cheaper to raise knob a than knob b.
        assert ka.index >= kb.index
