"""Tests for SRAM read/write margins and DAC dynamic/aging extensions."""

import numpy as np
import pytest

from repro import units
from repro.aging import NbtiModel
from repro.circuit import DeviceVariation
from repro.circuits import (
    sram_cell,
    sram_hold_butterfly,
    sram_read_butterfly,
    sram_write_trip_voltage,
    static_noise_margin,
)
from repro.solutions import (
    CurrentSteeringDac,
    DacConfig,
    age_dac_sources,
    calibrate,
    intrinsic_sigma_for_inl,
    sfdr_db,
)


_HAVE_SCIPY_STATS = True
try:
    import scipy.stats  # noqa: F401
except ImportError:
    _HAVE_SCIPY_STATS = False
requires_scipy_stats = pytest.mark.skipif(
    not _HAVE_SCIPY_STATS,
    reason="needs scipy.stats (yield/area closed forms)")


class TestSramReadMargin:
    def test_read_snm_below_hold_snm(self, tech90):
        fx = sram_cell(tech90)
        vh, rh = sram_hold_butterfly(fx)
        vr, rr = sram_read_butterfly(fx)
        hold = static_noise_margin(vh, rh)
        read = static_noise_margin(vr, rr)
        assert read < 0.8 * hold
        assert read > 0.05 * tech90.vdd

    def test_bigger_cell_ratio_improves_read_snm(self, tech90):
        weak = sram_cell(tech90, cell_ratio=1.2)
        strong = sram_cell(tech90, cell_ratio=3.0)
        snm = {}
        for name, fx in (("weak", weak), ("strong", strong)):
            v, r = sram_read_butterfly(fx)
            snm[name] = static_noise_margin(v, r)
        assert snm["strong"] > snm["weak"]

    def test_wordline_restored_after_read_analysis(self, tech90):
        fx = sram_cell(tech90)
        sram_read_butterfly(fx)
        assert fx.circuit["vwl"].spec.dc_value() == 0.0


class TestSramWriteMargin:
    def test_trip_voltage_in_range(self, tech90):
        fx = sram_cell(tech90)
        trip = sram_write_trip_voltage(fx)
        assert 0.0 < trip < tech90.vdd

    def test_stronger_pullup_harder_to_write(self, tech90):
        easy = sram_cell(tech90, pu_ratio=0.8)
        hard = sram_cell(tech90, pu_ratio=2.0)
        assert (sram_write_trip_voltage(hard)
                < sram_write_trip_voltage(easy))

    def test_sources_restored(self, tech90):
        fx = sram_cell(tech90)
        sram_write_trip_voltage(fx)
        assert fx.circuit["vwl"].spec.dc_value() == 0.0
        assert fx.circuit["vbl"].spec.dc_value() == pytest.approx(tech90.vdd)


@requires_scipy_stats
class TestSfdr:
    def test_ideal_dac_at_quantization_floor(self):
        # A perfect 12-bit DAC is limited by quantization spurs:
        # SFDR ≈ 6.02·N + ~10 dB ≈ low 80s.
        cfg = DacConfig(n_bits=12, n_unary_bits=5)
        dac = CurrentSteeringDac(cfg, 0.0, np.random.default_rng(0))
        assert sfdr_db(dac) > 78.0

    def test_mismatch_lowers_sfdr(self):
        cfg = DacConfig(n_bits=12, n_unary_bits=5)
        sigma = intrinsic_sigma_for_inl(cfg)
        clean = CurrentSteeringDac(cfg, 0.0, np.random.default_rng(1))
        dirty = CurrentSteeringDac(cfg, 8.0 * sigma, np.random.default_rng(1))
        assert sfdr_db(dirty) < sfdr_db(clean) - 10.0

    def test_validation(self):
        cfg = DacConfig(n_bits=10, n_unary_bits=4)
        dac = CurrentSteeringDac(cfg, 0.01, np.random.default_rng(0))
        with pytest.raises(ValueError, match="coprime"):
            sfdr_db(dac, n_samples=4096, cycles=4)
        with pytest.raises(ValueError, match="64"):
            sfdr_db(dac, n_samples=32)


@requires_scipy_stats
class TestDacAging:
    def setup_dac(self, seed=1):
        cfg = DacConfig(n_bits=12, n_unary_bits=5)
        sigma = intrinsic_sigma_for_inl(cfg)
        dac = CurrentSteeringDac(cfg, 2.0 * sigma,
                                 np.random.default_rng(seed))
        return dac

    def aging_inputs(self, tech):
        return dict(eox_v_per_m=tech.nominal_oxide_field(),
                    temperature_k=units.celsius_to_kelvin(105.0),
                    t_stress_s=units.years_to_seconds(10.0))

    def test_aging_degrades_calibrated_inl(self, tech90):
        dac = self.setup_dac()
        nbti = NbtiModel(tech90.aging)
        fresh = calibrate(dac).inl_after_lsb
        age_dac_sources(dac, nbti, rng=np.random.default_rng(2),
                        **self.aging_inputs(tech90))
        aged = dac.max_inl_lsb()
        assert aged > 2.0 * fresh

    def test_runtime_recalibration_recovers(self, tech90):
        dac = self.setup_dac()
        nbti = NbtiModel(tech90.aging)
        calibrate(dac)
        age_dac_sources(dac, nbti, rng=np.random.default_rng(2),
                        **self.aging_inputs(tech90))
        aged = dac.max_inl_lsb()
        recal = calibrate(dac)
        assert recal.inl_after_lsb < 0.7 * aged

    def test_all_sources_lose_current(self, tech90):
        dac = self.setup_dac()
        nbti = NbtiModel(tech90.aging)
        deltas = age_dac_sources(dac, nbti, rng=np.random.default_rng(3),
                                 **self.aging_inputs(tech90))
        assert np.all(deltas < 0.0)

    def test_zero_spread_uniform_drift_cancels(self, tech90):
        # With identical duty everywhere, aging is a pure gain error —
        # absorbed by the endpoint INL correction.
        dac = self.setup_dac()
        inl_before = dac.max_inl_lsb()
        nbti = NbtiModel(tech90.aging)
        age_dac_sources(dac, nbti, duty_spread=0.0,
                        rng=np.random.default_rng(4),
                        **self.aging_inputs(tech90))
        assert dac.max_inl_lsb() == pytest.approx(inl_before, rel=0.05)

    def test_validation(self, tech90):
        dac = self.setup_dac()
        nbti = NbtiModel(tech90.aging)
        with pytest.raises(ValueError):
            age_dac_sources(dac, nbti, duty_spread=1.5,
                            **self.aging_inputs(tech90))
