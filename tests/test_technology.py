"""Unit tests for the technology-node library (§2 substrate)."""

import math

import pytest

from repro import units
from repro.technology import (
    AVT_FLOOR_MV_UM,
    NODES,
    TechnologyNode,
    get_node,
    modeled_avt,
    node_names,
    scaling_trend,
    tuinhout_benchmark_avt,
)


class TestLibraryLookup:
    def test_all_names_resolve(self):
        for name in node_names():
            assert isinstance(get_node(name), TechnologyNode)

    def test_unknown_node_raises_with_hint(self):
        with pytest.raises(KeyError, match="65nm"):
            get_node("7nm")

    def test_trend_ordering(self):
        trend = scaling_trend()
        lmins = [t.lmin_m for t in trend]
        assert lmins == sorted(lmins, reverse=True)

    def test_expected_node_count(self):
        assert len(NODES) == 8


class TestScalingTrends:
    def test_tox_shrinks_with_node(self):
        trend = scaling_trend()
        toxes = [t.tox_nm for t in trend]
        assert toxes == sorted(toxes, reverse=True)

    def test_vdd_shrinks_with_node(self):
        trend = scaling_trend()
        vdds = [t.vdd for t in trend]
        assert vdds == sorted(vdds, reverse=True)

    def test_oxide_field_grows_with_scaling(self):
        # The central storyline: fields go UP even as VDD goes down.
        assert (get_node("32nm").nominal_oxide_field()
                > get_node("350nm").nominal_oxide_field())

    def test_cox_grows_with_scaling(self):
        assert get_node("32nm").cox_f_per_m2 > get_node("180nm").cox_f_per_m2

    def test_nbti_severity_grows(self):
        assert (get_node("32nm").aging.nbti_prefactor_v
                > get_node("350nm").aging.nbti_prefactor_v)

    def test_weibull_shape_shrinks_for_thin_oxides(self):
        # Thin oxides have shallower Weibull slopes (§3.1).
        assert (get_node("32nm").aging.tddb_weibull_shape
                < get_node("350nm").aging.tddb_weibull_shape)


class TestTuinhoutBenchmark:
    def test_slope_is_1mv_um_per_nm(self):
        assert tuinhout_benchmark_avt(10.0) == pytest.approx(10.0)

    def test_modeled_tracks_benchmark_for_thick_oxide(self):
        # Above ~10 nm the benchmark dominates the floor.
        assert modeled_avt(25.0) == pytest.approx(
            tuinhout_benchmark_avt(25.0), rel=0.01)

    def test_modeled_saturates_for_thin_oxide(self):
        # Below ~10 nm the measured curve sits clearly ABOVE the line.
        thin = 2.0
        assert modeled_avt(thin) > 1.2 * tuinhout_benchmark_avt(thin)

    def test_floor_bounds_thin_oxide_avt(self):
        assert modeled_avt(0.5) == pytest.approx(AVT_FLOOR_MV_UM, rel=0.05)

    def test_rejects_non_positive_tox(self):
        with pytest.raises(ValueError):
            tuinhout_benchmark_avt(0.0)


class TestNodeProperties:
    def test_kp_consistency(self, tech90):
        assert tech90.kp_n == pytest.approx(
            tech90.u0_n_m2_per_vs * tech90.cox_f_per_m2)

    def test_pmos_slower_than_nmos(self, tech90):
        assert tech90.kp_p < tech90.kp_n

    def test_lmin_um_conversion(self, tech90):
        assert tech90.lmin_um == pytest.approx(0.09)

    def test_scaled_override(self, tech90):
        hot = tech90.scaled(vdd=1.32)
        assert hot.vdd == pytest.approx(1.32)
        assert hot.tox_nm == tech90.tox_nm
        assert tech90.vdd == pytest.approx(1.2)  # original untouched

    def test_validate_catches_bad_vt(self, tech90):
        bad = tech90.scaled(vt0_n=2.0)  # above VDD
        with pytest.raises(ValueError, match="headroom"):
            bad.validate()

    def test_validate_catches_positive_pmos_vt(self, tech90):
        bad = tech90.scaled(vt0_p=0.3)
        with pytest.raises(ValueError, match="negative"):
            bad.validate()

    def test_all_shipped_nodes_validate(self):
        for tech in scaling_trend():
            tech.validate()


class TestMismatchCoefficients:
    def test_avt_matches_model(self):
        for tech in scaling_trend():
            assert tech.mismatch.a_vt_mv_um == pytest.approx(
                modeled_avt(tech.tox_nm))

    def test_short_channel_scale_positive(self, tech90):
        assert tech90.mismatch.short_channel_l_um > 0.0
        assert tech90.mismatch.narrow_channel_w_um > 0.0


class TestHciAnchors:
    def test_reference_overdrive_positive(self):
        for tech in scaling_trend():
            assert tech.aging.hci_vov_ref_v > 0.0

    def test_reference_em_in_physical_range(self):
        # Peak lateral fields live in the 1e7–1e9 V/m window.
        for tech in scaling_trend():
            assert 1e6 < tech.aging.hci_em_ref_v_per_m < 1e9


class TestInterpolatedNode:
    def test_matches_shipped_at_library_points(self):
        from repro.technology import interpolated_node

        for name, size in (("90nm", 90.0), ("180nm", 180.0)):
            shipped = get_node(name)
            synthetic = interpolated_node(size)
            assert synthetic.tox_nm == pytest.approx(shipped.tox_nm, rel=1e-6)
            assert synthetic.vdd == pytest.approx(shipped.vdd, rel=1e-6)
            assert synthetic.mismatch.a_vt_mv_um == pytest.approx(
                shipped.mismatch.a_vt_mv_um, rel=1e-6)

    def test_intermediate_node_between_neighbours(self):
        from repro.technology import interpolated_node

        mid = interpolated_node(75.0)
        lo, hi = get_node("65nm"), get_node("90nm")
        assert lo.tox_nm < mid.tox_nm < hi.tox_nm
        assert lo.vdd < mid.vdd < hi.vdd
        assert (lo.mismatch.a_vt_mv_um < mid.mismatch.a_vt_mv_um
                < hi.mismatch.a_vt_mv_um)
        mid.validate()

    def test_devices_buildable_on_synthetic_node(self):
        from repro.circuit import Circuit, Mosfet, dc_operating_point
        from repro.technology import interpolated_node

        tech = interpolated_node(75.0)
        ckt = Circuit("interp test")
        ckt.voltage_source("vdd", "vdd", "0", tech.vdd)
        ckt.resistor("rb", "vdd", "d", 10e3)
        ckt.mosfet(Mosfet.from_technology("m1", "d", "d", "0", "0",
                                          tech, "n", w_m=1e-6,
                                          l_m=tech.lmin_m))
        op = dc_operating_point(ckt)
        assert 0.0 < op.voltage("d") < tech.vdd

    def test_out_of_range_rejected(self):
        from repro.technology import interpolated_node

        with pytest.raises(ValueError, match="outside"):
            interpolated_node(20.0)
        with pytest.raises(ValueError, match="outside"):
            interpolated_node(500.0)

    def test_monotone_trend_on_fine_grid(self):
        from repro.technology import interpolated_node

        sizes = [340.0, 200.0, 120.0, 70.0, 40.0]
        fields = [interpolated_node(s).nominal_oxide_field()
                  for s in sizes]
        assert all(b > a for a, b in zip(fields, fields[1:]))
