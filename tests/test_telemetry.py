"""Telemetry-layer tests: spans, metrics, sessions, trace files and the
observability seams in the solvers, engines and CLI.

The contract under test (see ``docs/observability.md``):

* hierarchical spans with correct nesting under the serial, thread AND
  process backends (worker buffers merge into one connected tree);
* results are bit-identical with telemetry on or off — observation
  never perturbs the physics;
* the disabled path is a near-free no-op (micro-benchmarked here,
  macro-gated by ``scripts/check_regression.py``);
* trace files round-trip through :func:`repro.telemetry.read_trace`
  and render deterministically through ``repro trace``.
"""

import json
import time

import numpy as np
import pytest

from repro import telemetry
from repro.circuit import ConvergenceError, dc_operating_point, transient
from repro.circuits import differential_pair, input_referred_offset_v
from repro.cli import main
from repro.core import MonteCarloYield, Specification
from repro.faultinject import failing_extractor, force_nonconvergence
from repro.report import render_trace_summary
from repro.telemetry import (
    ITERATION_BUCKETS,
    NULL_SPAN,
    MetricsRegistry,
    TelemetrySession,
    TraceError,
    aggregate_spans,
    profile_phases,
    read_trace,
)


def _offset(fixture) -> float:
    return input_referred_offset_v(fixture)


def offset_spec(extractor=_offset, limit_v=5e-3):
    return Specification("offset", extractor, lower=-limit_v, upper=limit_v)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.gauge("g", 1.0)
        reg.gauge("g", 3.0)
        assert reg.counter("a") == 3
        assert reg.counter("missing") == 0
        assert reg.snapshot()["gauges"]["g"] == 3.0

    def test_counters_with_prefix(self):
        reg = MetricsRegistry()
        reg.inc("solver.dc.strategy.newton", 5)
        reg.inc("solver.dc.strategy.gmin-stepping")
        reg.inc("solver.transient.solves")
        assert reg.counters_with_prefix("solver.dc.strategy.") == {
            "newton": 5, "gmin-stepping": 1}

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        for value in (1, 2, 2, 7, 1000):
            reg.observe("it", value, ITERATION_BUCKETS)
        stats = reg.histogram_stats("it")
        assert stats["count"] == 5
        assert stats["max"] == 1000
        hist = reg.snapshot()["histograms"]["it"]
        assert sum(hist["counts"]) == 5
        assert hist["counts"][-1] == 1  # 1000 overflows the last edge

    def test_snapshot_merge_roundtrip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only_b")
        a.gauge("g", 1.0)
        b.gauge("g", 9.0)
        a.observe("h", 0.5)
        b.observe("h", 1.5)
        a.merge(b.snapshot())
        assert a.counter("n") == 5
        assert a.counter("only_b") == 1
        assert a.snapshot()["gauges"]["g"] == 9.0
        assert a.histogram_stats("h")["count"] == 2

    def test_merge_empty_is_noop(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.merge(None)
        reg.merge({})
        assert reg.counter("a") == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("h", 1.0)
        reg.reset()
        assert reg.counter("a") == 0
        assert reg.histogram_stats("h") is None


# ----------------------------------------------------------------------
# Spans and sessions
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_span_is_null_singleton(self):
        assert telemetry.active() is None
        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("x") as sp:
            sp.set(ignored=1)  # must not raise
        telemetry.event("nothing-happens")

    def test_nesting_and_attributes(self):
        with telemetry.session() as sess:
            with sess.tracer.span("outer", a=1) as outer:
                with sess.tracer.span("inner") as inner:
                    inner.set(b=2)
                assert inner.parent_id == outer.span_id
            records = sess.tracer.export_records()
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["outer"]["attrs"] == {"a": 1}
        assert spans["inner"]["attrs"] == {"b": 2}
        # inner closes first, so it is recorded first
        assert [r["name"] for r in records] == ["inner", "outer"]

    def test_span_records_exception_type(self):
        with telemetry.session() as sess:
            with pytest.raises(ValueError):
                with sess.tracer.span("boom"):
                    raise ValueError("x")
        record = sess.tracer.export_records()[0]
        assert record["attrs"]["error"] == "ValueError"

    def test_event_binds_to_current_span(self):
        with telemetry.session() as sess:
            with sess.tracer.span("s") as sp:
                telemetry.event("ping", k=1)
            records = sess.tracer.export_records()
        event = next(r for r in records if r["type"] == "event")
        assert event["span"] == sp.span_id
        assert event["attrs"] == {"k": 1}

    def test_session_scoping(self):
        assert not telemetry.enabled()
        with telemetry.session() as sess:
            assert telemetry.active() is sess
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_worker_session_masks_ambient(self):
        with telemetry.session() as outer:
            with telemetry.worker_session(False):
                assert telemetry.active() is None
            with telemetry.worker_session(True, "w.") as inner:
                assert telemetry.active() is inner
                with inner.tracer.span("job"):
                    pass
            assert telemetry.active() is outer
        assert len(outer.tracer) == 0
        job = inner.tracer.export_records()[0]
        assert job["id"].startswith("w.")

    def test_merge_worker_reparents_orphans(self):
        parent = TelemetrySession()
        with telemetry.session():
            pass
        worker = TelemetrySession(id_prefix="c0.")
        # Build the worker tree outside any ambient session.
        with telemetry.worker_session(True, "c0.") as wsess:
            with wsess.tracer.span("chunk"):
                with wsess.tracer.span("sample"):
                    pass
        parent_span_ids = []
        with telemetry.session() as main:
            with main.tracer.span("run") as run_sp:
                parent_span_ids.append(run_sp.span_id)
            main.merge_worker(wsess.export(), parent_span_ids[0])
            spans = [r for r in main.tracer.export_records()
                     if r["type"] == "span"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["chunk"]["parent"] == parent_span_ids[0]
        assert by_name["sample"]["parent"] == by_name["chunk"]["id"]
        del parent, worker  # constructed-only sessions: nothing to assert

    def test_merge_worker_accumulates_metrics(self):
        worker = TelemetrySession()
        worker.metrics.inc("n", 4)
        main = TelemetrySession()
        main.metrics.inc("n", 1)
        main.merge_worker(worker.export())
        assert main.metrics.counter("n") == 5


# ----------------------------------------------------------------------
# Disabled-path overhead
# ----------------------------------------------------------------------
class TestNoOpOverhead:
    def test_disabled_span_is_cheap(self):
        # 20k disabled span() entries must stay comfortably under the
        # budget that would show up in the BENCH gate (~5 us each would
        # already be pathological; assert far above the expected
        # ~100 ns to stay robust on loaded CI machines).
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with telemetry.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5, f"{elapsed / n * 1e6:.2f} us per no-op span"

    def test_solver_results_identical_with_session(self, tech90):
        from repro.circuits import simple_current_mirror

        fx = simple_current_mirror(tech90)
        baseline = dc_operating_point(fx.circuit).x.copy()
        with telemetry.session():
            traced = dc_operating_point(fx.circuit).x.copy()
        assert np.array_equal(baseline, traced)


# ----------------------------------------------------------------------
# Solver instrumentation
# ----------------------------------------------------------------------
class TestSolverTelemetry:
    def test_dc_strategy_and_iteration_metrics(self, tech90):
        from repro.circuits import simple_current_mirror

        fx = simple_current_mirror(tech90)
        with telemetry.session() as sess:
            dc_operating_point(fx.circuit)
        assert sess.metrics.counter("solver.dc.solves") == 1
        assert sess.metrics.counter("solver.dc.strategy.newton") == 1
        assert sess.metrics.counter("solver.factorizations") > 0
        span = sess.tracer.export_records()[0]
        assert span["name"] == "solve.dc"
        assert span["attrs"]["strategy"] == "newton"
        assert span["attrs"]["iterations"] >= 1

    def test_dc_failure_records_summary(self, tech90):
        fx = differential_pair(tech90)
        force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        with telemetry.session() as sess:
            with pytest.raises(ConvergenceError):
                dc_operating_point(fx.circuit)
        assert sess.metrics.counter("solver.dc.failures") == 1
        span = next(r for r in sess.tracer.export_records()
                    if r["name"] == "solve.dc")
        assert span["attrs"]["status"] == "failed"
        assert "dc solve failed" in span["attrs"]["summary"]
        # fault.injected event recorded by force_nonconvergence?  No —
        # no session was active at injection time; that path is covered
        # in TestEngineTelemetry below.

    def test_transient_metrics(self, tech90):
        from repro.circuits import ring_oscillator

        fx = ring_oscillator(tech90, n_stages=3)
        with telemetry.session() as sess:
            transient(fx.circuit, t_stop=0.2e-9, dt=5e-12)
        assert sess.metrics.counter("solver.transient.solves") == 1
        assert sess.metrics.counter("solver.transient.steps") > 0
        span = next(r for r in sess.tracer.export_records()
                    if r["name"] == "solve.transient")
        assert span["attrs"]["steps"] > 0
        # The t=0 operating point is solved BEFORE the transient span
        # opens: its solve.dc span is a sibling, never a child, so
        # phase reports don't double-count DC time inside the
        # integration.
        dc_spans = [r for r in sess.tracer.export_records()
                    if r["name"] == "solve.dc"]
        assert dc_spans
        assert all(s["parent"] != span["id"] for s in dc_spans)
        assert all(s["parent"] == span["parent"] for s in dc_spans)


# ----------------------------------------------------------------------
# Engine integration: span trees and bit-identical results
# ----------------------------------------------------------------------
class TestEngineTelemetry:
    def _run(self, tech90, **kwargs):
        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        return mc.run(n_samples=48, seed=7, **kwargs)

    @pytest.mark.parametrize("backend,jobs", [("serial", 1),
                                              ("thread", 2),
                                              ("process", 2)])
    def test_span_tree_connected_and_results_identical(
            self, tech90, backend, jobs):
        baseline = self._run(tech90)
        with telemetry.session() as sess:
            result = self._run(tech90, backend=backend, jobs=jobs)
        assert np.array_equal(result.passes, baseline.passes)
        assert np.array_equal(result.values["offset"],
                              baseline.values["offset"])
        spans = [r for r in sess.tracer.export_records()
                 if r["type"] == "span"]
        counts = {}
        for span in spans:
            counts[span["name"]] = counts.get(span["name"], 0) + 1
        assert counts["run"] == 1
        assert counts["chunk"] == 2  # 48 samples / DEFAULT_CHUNK_SIZE
        assert counts["sample"] == 48
        assert counts["analysis"] == 48
        assert counts["solve.dc"] > 48
        # one connected tree: every parent id resolves
        ids = {s["id"] for s in spans}
        assert all(s["parent"] in ids for s in spans
                   if s["parent"] is not None)
        run_id = next(s["id"] for s in spans if s["name"] == "run")
        assert all(s["parent"] == run_id for s in spans
                   if s["name"] == "chunk")
        assert sess.metrics.counter("engine.samples") == 48
        assert sess.metrics.histogram_stats(
            "engine.sample_duration_s")["count"] == 48

    def test_quarantine_and_fault_events(self, tech90):
        fx = differential_pair(tech90)
        ext = failing_extractor(_offset, fail_on=[5])
        mc = MonteCarloYield(fx, [offset_spec(ext)], tech90)
        with telemetry.session() as sess:
            result = mc.run(n_samples=16, seed=0)
        assert result.n_quarantined == 1
        assert sess.metrics.counter("engine.quarantines") == 1
        assert sess.metrics.counter("faults.activated") == 1
        events = [r for r in sess.tracer.export_records()
                  if r["type"] == "event"]
        names = {e["name"] for e in events}
        assert {"fault.activated", "quarantine"} <= names
        quarantine = next(e for e in events if e["name"] == "quarantine")
        assert quarantine["attrs"]["index"] == 5
        assert quarantine["attrs"]["exception"] == "ValueError"

    def test_fault_injected_event(self, tech90):
        fx = differential_pair(tech90)
        with telemetry.session() as sess:
            force_nonconvergence(fx.circuit, fx.circuit.mosfets[0].name)
        events = [r for r in sess.tracer.export_records()
                  if r["type"] == "event"]
        assert events[0]["name"] == "fault.injected"
        assert events[0]["attrs"]["kind"] == "force-nonconvergence"
        assert sess.metrics.counter("faults.injected") == 1

    def test_progress_callback_without_session(self, tech90):
        beats = []
        result = self._run(tech90, progress=beats.append)
        baseline = self._run(tech90)
        assert np.array_equal(result.passes, baseline.passes)
        assert [b["done"] for b in beats] == [32, 48]
        assert all(b["total"] == 48 for b in beats)

    def test_checkpoint_metrics_accumulate_across_resume(self, tech90,
                                                         tmp_path):
        from repro.checkpoint import McCheckpointStore, RunInterrupted
        from repro.faultinject import interrupting_extractor

        fx = differential_pair(tech90)
        ck = tmp_path / "ck"
        ext = interrupting_extractor(_offset, interrupt_on=40)
        mc = MonteCarloYield(fx, [offset_spec(ext)], tech90)
        with telemetry.session():
            with pytest.raises(RunInterrupted):
                mc.run(n_samples=64, seed=1, checkpoint=ck)
        persisted = McCheckpointStore(ck).load_metrics()
        first_solves = persisted["counters"]["solver.dc.solves"]
        assert first_solves > 0
        assert persisted["counters"]["engine.samples"] == 32

        mc_clean = MonteCarloYield(fx, [offset_spec()], tech90)
        with telemetry.session() as sess:
            result = mc_clean.run(n_samples=64, seed=1, checkpoint=ck,
                                  resume=True)
        final = McCheckpointStore(ck).load_metrics()
        # counters carried over the interruption and kept growing
        assert final["counters"]["engine.samples"] == 64
        assert final["counters"]["solver.dc.solves"] > first_solves
        assert sess.metrics.counter("engine.samples") == 64
        baseline = mc_clean.run(n_samples=64, seed=1)
        assert np.array_equal(result.passes, baseline.passes)

    def test_old_checkpoint_without_metrics_still_loads(self, tech90,
                                                        tmp_path):
        from repro.checkpoint import McCheckpointStore

        fx = differential_pair(tech90)
        mc = MonteCarloYield(fx, [offset_spec()], tech90)
        ck = tmp_path / "ck"
        mc.run(n_samples=32, seed=2, checkpoint=ck)  # no session
        store = McCheckpointStore(ck)
        # without a session only the (empty) accumulator is persisted
        persisted = store.load_metrics()
        assert persisted.get("counters", {}).get("engine.samples") is None
        result = mc.run(n_samples=32, seed=2, checkpoint=ck, resume=True)
        assert result.n_samples == 32

    def test_corner_analysis_span_tree(self, tech90):
        from repro.core.corners import CornerAnalysis

        fx = differential_pair(tech90)
        analysis = CornerAnalysis(fx, [offset_spec(limit_v=1.0)], tech90,
                                  vdd_scales=[1.0],
                                  temperatures_k=[300.0])
        baseline = analysis.run()
        with telemetry.session() as sess:
            traced = analysis.run(jobs=2, backend="thread")
        assert traced.values == baseline.values
        spans = [r for r in sess.tracer.export_records()
                 if r["type"] == "span"]
        points = [s for s in spans if s["name"] == "point"]
        assert len(points) == 5  # five corners x 1 vdd x 1 T
        run_id = next(s["id"] for s in spans if s["name"] == "run")
        assert all(p["parent"] == run_id for p in points)
        assert sess.metrics.counter("engine.corner_points") == 5

    def test_aging_ensemble_span_tree(self, tech90):
        from repro.aging import NbtiModel
        from repro.core import MissionProfile, aging_ensemble

        fx = differential_pair(tech90)
        profile = MissionProfile(n_epochs=2, duration_s=1e6,
                                 t_first_epoch_s=1e3)
        baseline = aging_ensemble(fx, [NbtiModel(tech90.aging)], profile,
                                  {"offset": _offset}, tech90,
                                  n_samples=2, seed=0)
        with telemetry.session() as sess:
            traced = aging_ensemble(fx, [NbtiModel(tech90.aging)], profile,
                                    {"offset": _offset}, tech90,
                                    n_samples=2, seed=0, jobs=2,
                                    backend="thread")
        for a, b in zip(baseline, traced):
            assert np.array_equal(a.metrics["offset"], b.metrics["offset"])
        spans = [r for r in sess.tracer.export_records()
                 if r["type"] == "span"]
        names = [s["name"] for s in spans]
        assert names.count("sample") == 2
        assert names.count("aging.mission") == 2
        assert names.count("aging.epoch") == 4
        assert sess.metrics.counter("engine.aging_epochs") == 4


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------
class TestTraceFiles:
    def _write_session(self, path):
        with telemetry.session(meta={"command": "test"}) as sess:
            with sess.tracer.span("run", kind="test"):
                with sess.tracer.span("sample", index=0):
                    telemetry.event("marker", note="hi")
            sess.metrics.inc("n", 3)
            count = sess.write_trace(path)
        return count

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        count = self._write_session(path)
        trace = read_trace(path)
        trace.validate()
        assert len(trace.spans) == 2
        assert count == 3  # 2 spans + 1 event
        assert len(trace.events) == 1
        assert trace.meta["command"] == "test"
        assert trace.metrics["counters"]["n"] == 3

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "meta", "schema": 999}) + "\n")
        with pytest.raises(TraceError, match="schema"):
            read_trace(path)

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps({"type": "span", "id": "1",
                                    "t0": 0, "t1": 1}) + "\n")
        with pytest.raises(TraceError, match="meta"):
            read_trace(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": 1}) + "\n"
            + json.dumps({"type": "mystery"}) + "\n")
        with pytest.raises(TraceError, match="unknown record type"):
            read_trace(path)

    def test_validate_rejects_unknown_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": 1}) + "\n"
            + json.dumps({"type": "span", "name": "x", "id": "1",
                          "parent": "ghost", "t0": 0, "t1": 1,
                          "attrs": {}}) + "\n")
        trace = read_trace(path)
        with pytest.raises(TraceError, match="unknown parent"):
            trace.validate()

    def test_validate_rejects_unfinished_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"type": "meta", "schema": 1}) + "\n"
            + json.dumps({"type": "span", "name": "x", "id": "1",
                          "parent": None, "t0": 0, "t1": None,
                          "attrs": {}}) + "\n")
        with pytest.raises(TraceError, match="unfinished"):
            read_trace(path).validate()

    def test_aggregate_spans_self_time(self):
        spans = [
            {"type": "span", "name": "outer", "id": "1", "parent": None,
             "t0": 0.0, "t1": 10.0, "attrs": {}},
            {"type": "span", "name": "inner", "id": "2", "parent": "1",
             "t0": 1.0, "t1": 7.0, "attrs": {}},
        ]
        stats = aggregate_spans(spans)
        assert stats["outer"]["total_s"] == 10.0
        assert stats["outer"]["self_s"] == 4.0  # 10 - 6 of child time
        assert stats["inner"]["self_s"] == 6.0

    def test_profile_phases(self, tech90):
        from repro.circuits import simple_current_mirror

        fx = simple_current_mirror(tech90)
        phases = profile_phases(lambda: dc_operating_point(fx.circuit),
                                repeats=2)
        assert "solve.dc" in phases
        assert phases["solve.dc"]["count"] == 1.0  # per-repeat average
        assert phases["solve.dc"]["total_s"] > 0.0


# ----------------------------------------------------------------------
# Trace report rendering (golden output on a synthetic trace)
# ----------------------------------------------------------------------
GOLDEN_TRACE_LINES = [
    json.dumps({"type": "meta", "schema": 1, "t": 100.0, "command": "mc",
                "samples": 2, "seed": 0, "jobs": 1}),
    json.dumps({"type": "span", "name": "run", "id": "1", "parent": None,
                "t0": 100.0, "t1": 103.0, "attrs": {"kind": "mc-yield"}}),
    json.dumps({"type": "span", "name": "chunk", "id": "c0.1",
                "parent": "1", "t0": 100.0, "t1": 103.0,
                "attrs": {"worker": "123/MainThread",
                          "queue_wait_s": 0.25}}),
    json.dumps({"type": "span", "name": "sample", "id": "c0.2",
                "parent": "c0.1", "t0": 100.0, "t1": 102.0,
                "attrs": {"index": 0}}),
    json.dumps({"type": "span", "name": "sample", "id": "c0.3",
                "parent": "c0.1", "t0": 102.0, "t1": 102.5,
                "attrs": {"index": 1}}),
    json.dumps({"type": "event", "name": "quarantine", "t": 102.4,
                "span": "c0.3",
                "attrs": {"index": 1, "label": "offset",
                          "exception": "ConvergenceError",
                          "attempts": 1,
                          "summary": "dc solve failed after newton(60it)"}}),
    json.dumps({"type": "metrics",
                "data": {"counters": {"solver.dc.solves": 4,
                                      "solver.dc.strategy.newton": 3,
                                      "solver.dc.failures": 1,
                                      "solver.factorizations": 80,
                                      "engine.samples": 2,
                                      "engine.quarantines": 1},
                         "gauges": {}, "histograms": {}}}),
]

GOLDEN_SUMMARY = """\
trace summary
=============
  command   : mc
  samples   : 2
  seed      : 0
  jobs      : 1
  wall time : 3.000 s
  records   : 4 spans, 1 events
  workers   : 1 (123/MainThread)

top time sinks (by self time)
=============================
  span  count  total [s]  self [s]  max [s]
-------------------------------------------
sample      2        2.5       2.5        2
 chunk      1          3       0.5        3
   run      1          3         0        3

DC convergence
==============
strategy  solves   share
------------------------
  newton       3  75.0 %
(failed)       1  25.0 %
  matrix factorizations : 80

slowest samples
===============
sample  duration [s]          worker
------------------------------------
     0             2  123/MainThread
     1           0.5  123/MainThread

quarantined samples (1)
=======================
sample   label         exception                           diagnosis
--------------------------------------------------------------------
     1  offset  ConvergenceError  dc solve failed after newton(60it)

engine
======
  engine.quarantines : 1
  engine.samples     : 2
"""


class TestTraceSummaryGolden:
    def test_golden_output(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_text("\n".join(GOLDEN_TRACE_LINES) + "\n")
        trace = read_trace(path)
        trace.validate()
        assert render_trace_summary(trace) == GOLDEN_SUMMARY


# ----------------------------------------------------------------------
# CLI: mc --trace / --quiet and the trace command
# ----------------------------------------------------------------------
class TestCliTrace:
    def test_mc_trace_roundtrip(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(["mc", "--samples", "8", "--jobs", "2",
                     "--backend", "thread", "--quiet",
                     "--trace", str(trace_path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "Monte-Carlo offset yield" in captured.out
        assert captured.err == ""  # --quiet: no heartbeat, no trace note
        trace = read_trace(trace_path)
        trace.validate()
        names = {s["name"] for s in trace.spans}
        assert {"run", "chunk", "sample", "analysis", "solve.dc"} <= names
        assert trace.meta["command"] == "mc"
        assert trace.metrics["counters"]["engine.samples"] == 8

        code = main(["trace", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "top time sinks" in out
        assert "DC convergence" in out

    def test_mc_heartbeat_on_stderr(self, capsys):
        code = main(["mc", "--samples", "8"])
        assert code == 0
        err = capsys.readouterr().err
        assert "[mc] 8/8 samples" in err
        assert "fail=0" in err

    def test_trace_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
