"""Unit tests for :mod:`repro.units`."""

import math

import pytest

from repro import units


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert units.thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2.0 * units.thermal_voltage(300.0))

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            units.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            units.thermal_voltage(-10.0)


class TestTemperatureConversion:
    def test_celsius_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(105.0)) == pytest.approx(105.0)

    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-300.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-1.0)


class TestOxide:
    def test_capacitance_for_2nm(self):
        # eps_SiO2 / 2 nm ≈ 1.73e-2 F/m².
        cox = units.oxide_capacitance_per_area(2e-9)
        assert cox == pytest.approx(3.9 * 8.854e-12 / 2e-9, rel=1e-3)

    def test_capacitance_inverse_in_thickness(self):
        assert units.oxide_capacitance_per_area(1e-9) == pytest.approx(
            2.0 * units.oxide_capacitance_per_area(2e-9))

    def test_field_is_v_over_t(self):
        assert units.oxide_field(1.2, 2e-9) == pytest.approx(6e8)

    def test_field_uses_magnitude(self):
        assert units.oxide_field(-1.2, 2e-9) == pytest.approx(6e8)

    def test_rejects_zero_thickness(self):
        with pytest.raises(ValueError):
            units.oxide_capacitance_per_area(0.0)
        with pytest.raises(ValueError):
            units.oxide_field(1.0, 0.0)


class TestLengthHelpers:
    def test_nm_roundtrip(self):
        assert units.to_nm(units.nm(65.0)) == pytest.approx(65.0)

    def test_um_roundtrip(self):
        assert units.to_um(units.um(1.5)) == pytest.approx(1.5)

    def test_nm_value(self):
        assert units.nm(1.0) == pytest.approx(1e-9)


class TestDecibels:
    def test_20db_is_factor_10(self):
        assert units.db(10.0) == pytest.approx(20.0)

    def test_roundtrip(self):
        assert units.from_db(units.db(3.7)) == pytest.approx(3.7)

    def test_rejects_non_positive_ratio(self):
        with pytest.raises(ValueError):
            units.db(0.0)


class TestYears:
    def test_ten_years_roundtrip(self):
        assert units.seconds_to_years(units.years_to_seconds(10.0)) == pytest.approx(10.0)

    def test_one_year_magnitude(self):
        assert units.years_to_seconds(1.0) == pytest.approx(3.156e7, rel=1e-3)
