"""Unit tests for the variability package (paper §2, Eq 1)."""

import math

import numpy as np
import pytest

from repro import units
from repro.circuits import differential_pair
from repro.variability import (
    LerModel,
    MismatchSampler,
    PelgromModel,
    Placement,
    standard_corners,
)


class TestPelgromLaw:
    def test_area_scaling(self, tech90):
        # Quadrupling the area halves sigma (Eq 1) — compare geometries
        # large enough that the short/narrow corrections are negligible.
        pm = PelgromModel.for_technology(tech90)
        s1 = pm.sigma_delta_vt_v(10e-6, 10e-6)
        s2 = pm.sigma_delta_vt_v(20e-6, 20e-6)
        assert s1 / s2 == pytest.approx(2.0, rel=0.02)

    def test_magnitude_anchored_to_avt(self, tech90):
        # For a 1 µm × 1 µm pair: σ = A_VT mV (up to the geometry corr.).
        pm = PelgromModel.for_technology(tech90)
        sigma_mv = pm.sigma_delta_vt_v(1e-6, 1e-6) * 1e3
        avt = tech90.mismatch.a_vt_mv_um
        assert avt < sigma_mv < 1.5 * avt

    def test_distance_term_adds_in_variance(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        s0 = pm.sigma_delta_vt_v(1e-6, 1e-6, distance_m=0.0)
        s_far = pm.sigma_delta_vt_v(1e-6, 1e-6, distance_m=1e-3)
        d_um = 1000.0
        expected = math.hypot(s0, tech90.mismatch.s_vt_mv_per_um
                              * d_um * 1e-3)
        assert s_far == pytest.approx(expected, rel=1e-6)
        assert s_far > s0

    def test_short_channel_extra_variance(self, tech90):
        # Same area, shorter L → more variance (refs [5], [41]).
        pm = PelgromModel.for_technology(tech90)
        s_short = pm.sigma_delta_vt_v(1e-6, 0.09e-6)
        s_square = pm.sigma_delta_vt_v(0.3e-6, 0.3e-6)
        assert s_short > s_square

    def test_single_device_is_pair_over_sqrt2(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        assert pm.sigma_single_vt_v(1e-6, 1e-6) == pytest.approx(
            pm.sigma_delta_vt_v(1e-6, 1e-6) / math.sqrt(2.0))

    def test_beta_mismatch_fractional(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        frac = pm.sigma_delta_beta_fraction(1e-6, 1e-6)
        assert 0.001 < frac < 0.1

    def test_rejects_bad_geometry(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        with pytest.raises(ValueError):
            pm.sigma_delta_vt_v(-1e-6, 1e-6)
        with pytest.raises(ValueError):
            pm.sigma_delta_vt_v(1e-6, 1e-6, distance_m=-1.0)

    def test_area_for_sigma_inverse(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        w, l = pm.area_for_sigma_vt(1e-3)
        assert pm.sigma_delta_vt_v(w, l) == pytest.approx(1e-3, rel=1e-3)

    def test_area_for_sigma_respects_aspect(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        w, l = pm.area_for_sigma_vt(2e-3, aspect_ratio=4.0)
        assert w / l == pytest.approx(4.0)

    def test_tighter_sigma_needs_more_area(self, tech90):
        pm = PelgromModel.for_technology(tech90)
        w1, l1 = pm.area_for_sigma_vt(2e-3)
        w2, l2 = pm.area_for_sigma_vt(1e-3)
        assert w2 * l2 > 3.0 * w1 * l1


class TestLerModel:
    def test_sigma_grows_at_short_l(self, tech90):
        ler = LerModel.for_technology(tech90)
        assert ler.sigma_vt_v(1e-6, tech90.lmin_m) > ler.sigma_vt_v(1e-6, 4 * tech90.lmin_m)

    def test_sigma_falls_with_width(self, tech90):
        ler = LerModel.for_technology(tech90)
        s1 = ler.sigma_vt_v(0.2e-6, tech90.lmin_m)
        s2 = ler.sigma_vt_v(3.2e-6, tech90.lmin_m)
        assert s1 / s2 == pytest.approx(4.0, rel=0.05)

    def test_width_averaging_floor(self):
        # Below one correlation length there is a single segment.
        ler = LerModel()
        assert ler.independent_segments(10e-9) == 1.0
        assert ler.sigma_leff_m(10e-9) == pytest.approx(ler.rms_amplitude_m)

    def test_pair_sigma_is_sqrt2(self, tech90):
        ler = LerModel.for_technology(tech90)
        assert ler.sigma_delta_vt_v(1e-6, 0.09e-6) == pytest.approx(
            math.sqrt(2) * ler.sigma_vt_v(1e-6, 0.09e-6))

    def test_scaled_nodes_more_sensitive(self, tech65, tech350):
        l65 = LerModel.for_technology(tech65)
        l350 = LerModel.for_technology(tech350)
        # At each node's own minimum geometry, LER hurts the new node more.
        assert (l65.sigma_vt_v(10 * tech65.wmin_m, tech65.lmin_m)
                > l350.sigma_vt_v(10 * tech350.wmin_m, tech350.lmin_m))

    def test_rejects_bad_inputs(self):
        ler = LerModel()
        with pytest.raises(ValueError):
            ler.sigma_vt_v(-1e-6, 1e-7)
        with pytest.raises(ValueError):
            ler.dvt_dl_v_per_m(0.0)
        with pytest.raises(ValueError):
            LerModel(rms_amplitude_m=-1.0)


class TestMismatchSampler:
    def test_pair_statistics_match_eq1(self, tech90, rng):
        sampler = MismatchSampler(tech90, rng)
        pm = sampler.pelgrom
        draws = np.array([sampler.sample_pair_delta_vt_v(1e-6, 1e-6)
                          for _ in range(4000)])
        assert draws.mean() == pytest.approx(0.0, abs=2e-4)
        assert draws.std() == pytest.approx(
            pm.sigma_delta_vt_v(1e-6, 1e-6), rel=0.06)

    def test_distance_term_in_pair_draws(self, tech90, rng):
        sampler = MismatchSampler(tech90, rng)
        pm = sampler.pelgrom
        d = 500e-6
        draws = np.array([sampler.sample_pair_delta_vt_v(1e-6, 1e-6, d)
                          for _ in range(4000)])
        assert draws.std() == pytest.approx(
            pm.sigma_delta_vt_v(1e-6, 1e-6, d), rel=0.06)

    def test_assign_and_clear(self, tech90, rng):
        fx = differential_pair(tech90)
        sampler = MismatchSampler(tech90, rng)
        sampler.assign(fx.circuit)
        deltas = [m.variation.delta_vt_v for m in fx.circuit.mosfets]
        assert any(d != 0.0 for d in deltas)
        sampler.clear(fx.circuit)
        assert all(m.variation.delta_vt_v == 0.0 for m in fx.circuit.mosfets)

    def test_placement_gradient_correlation(self, tech90):
        # Two devices placed far apart pick up a correlated gradient:
        # their DIFFERENCE grows with distance per S_VT·D.
        fx = differential_pair(tech90, w_m=20e-6, l_m=2e-6)
        placements = {"m1": Placement(0.0, 0.0), "m2": Placement(2e-3, 0.0)}
        diffs = []
        for seed in range(500):
            sampler = MismatchSampler(tech90, np.random.default_rng(seed))
            sampler.assign(fx.circuit, placements)
            m1, m2 = fx.circuit["m1"], fx.circuit["m2"]
            diffs.append(m1.variation.delta_vt_v - m2.variation.delta_vt_v)
        pm = PelgromModel.for_technology(tech90)
        expected = pm.sigma_delta_vt_v(20e-6, 2e-6, distance_m=2e-3)
        assert np.std(diffs) == pytest.approx(expected, rel=0.15)

    def test_ler_inflates_sigma(self, tech90, rng):
        plain = MismatchSampler(tech90, rng)
        with_ler = MismatchSampler(tech90, rng, include_ler=True)
        w, l = 0.5e-6, tech90.lmin_m
        assert with_ler.sigma_single_vt_v(w, l) > plain.sigma_single_vt_v(w, l)

    def test_beta_factor_positive(self, tech90):
        sampler = MismatchSampler(tech90, np.random.default_rng(7))
        for _ in range(200):
            var = sampler.sample_device(0.2e-6, 0.09e-6)
            assert var.beta_factor > 0.0
            assert var.gamma_factor > 0.0

    def test_deterministic_given_seed(self, tech90):
        s1 = MismatchSampler(tech90, np.random.default_rng(42))
        s2 = MismatchSampler(tech90, np.random.default_rng(42))
        v1 = s1.sample_device(1e-6, 1e-6)
        v2 = s2.sample_device(1e-6, 1e-6)
        assert v1.delta_vt_v == v2.delta_vt_v
        assert v1.beta_factor == v2.beta_factor


class TestProcessCorners:
    def test_five_corners(self, tech90):
        corners = standard_corners(tech90)
        assert set(corners) == {"TT", "FF", "SS", "FS", "SF"}

    def test_tt_is_nominal(self, tech90):
        fx = differential_pair(tech90)
        standard_corners(tech90)["TT"].apply(fx.circuit)
        assert all(m.variation.delta_vt_v == 0.0 for m in fx.circuit.mosfets)

    def test_ss_slows_devices(self, tech90):
        fx = differential_pair(tech90)
        standard_corners(tech90)["SS"].apply(fx.circuit)
        for m in fx.circuit.mosfets:
            assert m.variation.delta_vt_v > 0.0
            assert m.variation.beta_factor < 1.0

    def test_fs_splits_polarity(self, tech90):
        from repro.circuits import five_transistor_ota

        fx = five_transistor_ota(tech90)
        standard_corners(tech90)["FS"].apply(fx.circuit)
        for m in fx.circuit.mosfets:
            if m.params.polarity == "n":
                assert m.variation.delta_vt_v < 0.0
            else:
                assert m.variation.delta_vt_v > 0.0
