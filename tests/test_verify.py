"""The differential verification subsystem (`repro verify`).

Covers the oracle closed forms, cross-path differential agreement, the
golden artifact store round-trip, and — critically — that deliberately
perturbed models and solver constants are *caught*: a verification gate
that cannot fail is worthless.
"""

import json
import math

import numpy as np
import pytest

from repro.circuit import NewtonOptions
from repro.cli import main
from repro.verify import (
    BATCH_AGREEMENT_FACTORS,
    GoldenDrift,
    GoldenError,
    Quantity,
    Tolerance,
    check_oracle,
    default_oracles,
    diff_goldens,
    load_goldens,
    load_manifest,
    run_corpus,
    run_differential,
    run_experiments,
    ulp_diff,
    write_goldens,
)
from repro.verify.oracles import (
    MosfetRegionOracle,
    RcStepOracle,
    ResistiveLadderOracle,
)


# ----------------------------------------------------------------------
# Tolerance and ULP plumbing
# ----------------------------------------------------------------------
_HAVE_SCIPY_STATS = True
try:
    import scipy.stats  # noqa: F401
except ImportError:
    _HAVE_SCIPY_STATS = False
requires_scipy_stats = pytest.mark.skipif(
    not _HAVE_SCIPY_STATS,
    reason="needs scipy.stats (golden experiments use scipy.stats)")


class TestTolerance:
    def test_bound_combines_rtol_and_atol(self):
        tol = Tolerance(rtol=1e-3, atol=1e-6)
        assert tol.bound(2.0) == pytest.approx(1e-6 + 2e-3)
        assert tol.bound(-2.0) == pytest.approx(1e-6 + 2e-3)

    def test_dict_round_trip(self):
        tol = Tolerance(rtol=1e-3, atol=1e-6, ulps=8, note="why")
        back = Tolerance.from_dict(tol.to_dict())
        assert (back.rtol, back.atol, back.ulps, back.note) == \
            (1e-3, 1e-6, 8, "why")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Tolerance(rtol=-1e-3)


class TestUlpDiff:
    def test_equal_is_zero(self):
        assert ulp_diff(1.5, 1.5) == 0.0
        assert ulp_diff(0.0, -0.0) == 0.0

    def test_adjacent_doubles_are_one(self):
        x = 1.0
        assert ulp_diff(x, math.nextafter(x, 2.0)) == 1.0
        assert ulp_diff(-x, math.nextafter(-x, -2.0)) == 1.0

    def test_sign_straddle_counts_through_zero(self):
        tiny = 5e-324  # smallest subnormal
        assert ulp_diff(-tiny, tiny) == 2.0

    def test_non_finite_is_inf(self):
        assert ulp_diff(float("nan"), 1.0) == math.inf
        assert ulp_diff(float("inf"), 1.0) == math.inf


# ----------------------------------------------------------------------
# Oracle closed forms
# ----------------------------------------------------------------------
class TestOracles:
    @pytest.mark.parametrize("oracle", default_oracles(),
                             ids=lambda o: o.name)
    def test_every_path_within_band(self, oracle):
        deviations = check_oracle(oracle)
        assert deviations, "oracle produced no checks"
        bad = [d for d in deviations if not d.passed]
        assert not bad, "\n".join(
            f"{d.subject}:{d.path}:{d.quantity} err={d.error:.3g} "
            f"bound={d.bound:.3g}" for d in bad)

    def test_ladder_analytic_is_the_divider_law(self):
        oracle = ResistiveLadderOracle(n_rungs=4, r_ohms=2e3, vdd_v=1.0)
        ref = oracle.analytic()
        assert ref["v_n1_v"] == pytest.approx(0.75)
        assert ref["v_n3_v"] == pytest.approx(0.25)
        assert ref["i_supply_a"] == pytest.approx(1.0 / 8e3)

    def test_mosfet_oracle_bias_lands_in_its_region(self):
        from repro.circuit import dc_operating_point

        for region in MosfetRegionOracle.REGIONS:
            oracle = MosfetRegionOracle(region)
            op = dc_operating_point(oracle.build())
            got = op.all_device_ops()["m1"].region
            expected = ("cutoff" if region == "subthreshold" else region)
            assert got in (region, expected), \
                f"{region} bias solved into {got}"

    def test_rc_trapezoidal_is_second_order(self):
        # Halving dt must shrink the trapezoidal error ~4x (and the
        # measured error must actually use the band's headroom, i.e.
        # not be spuriously zero).
        errors = []
        for ppt in (25, 50):
            oracle = RcStepOracle(points_per_tau=ppt)
            got = oracle.measure("tran.trap")["v_at_1tau_v"]
            ref = oracle.analytic()["v_at_1tau_v"]
            errors.append(abs(got - ref))
        assert errors[0] > 0.0
        assert errors[0] / errors[1] > 2.5

    def test_unknown_path_raises(self):
        with pytest.raises(ValueError, match="unknown solver path"):
            ResistiveLadderOracle().measure("ac.noise")


# ----------------------------------------------------------------------
# Differential harness
# ----------------------------------------------------------------------
class TestDifferential:
    def test_quick_harness_is_clean(self):
        report = run_differential(quick=True)
        assert report.n_checks > 40
        assert report.passed, "\n".join(
            f"{d.subject}:{d.path} err={d.error:.3g} bound={d.bound:.3g}"
            for d in report.failures)
        # Cross-path corpus rows all present.
        subjects = {d.subject for d in report.deviations}
        for name in ("differential_pair", "inverter_vtc",
                     "simple_current_mirror", "differential_pair.mc"):
            assert name in subjects

    def test_corpus_classes_have_documented_factors(self, tech90):
        from repro.verify.differential import _batch_corpus

        for name, *_ in _batch_corpus(tech90):
            assert name in BATCH_AGREEMENT_FACTORS, \
                f"corpus circuit {name} has no documented batch factor"

    def test_mc_backends_bit_identical(self):
        report = run_differential(quick=True)
        mc = [d for d in report.deviations
              if d.subject == "differential_pair.mc"
              and d.path in ("mc.thread", "mc.process")]
        assert mc
        for dev in mc:
            assert dev.error == 0.0 and dev.ulp == 0.0

    def test_report_serialises(self):
        report = run_differential(quick=True)
        payload = report.to_dict()
        assert payload["passed"] is True
        assert payload["n_checks"] == report.n_checks
        worst = report.worst_per_subject()
        assert all(d.margin <= 1.0 for d in worst.values())

    def test_perturbed_gmin_is_caught(self, monkeypatch):
        # A 1e-5 S shunt at every node is a solver-constant bug the
        # ladder oracle's gmin-leakage band must reject.
        orig_init = NewtonOptions.__init__

        def leaky_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self.gmin = 1e-5

        monkeypatch.setattr(NewtonOptions, "__init__", leaky_init)
        deviations = check_oracle(ResistiveLadderOracle(),
                                  paths=["dc.scalar"])
        assert any(not d.passed for d in deviations)


# ----------------------------------------------------------------------
# Golden artifact store
# ----------------------------------------------------------------------
def _toy_results():
    return {
        "EX": {
            "alpha": Quantity(2.0, Tolerance(rtol=1e-6)),
            "beta": Quantity(-0.5, Tolerance(atol=1e-9)),
        },
        "EY": {"gamma": Quantity(10.0, Tolerance(rtol=1e-3))},
    }


class TestGoldenStore:
    def test_write_load_diff_round_trip(self, tmp_path):
        results = _toy_results()
        write_goldens(results, str(tmp_path))
        stored = load_goldens(str(tmp_path))
        assert set(stored) == {"EX", "EY"}
        assert stored["EX"]["alpha"].value == 2.0
        assert stored["EX"]["alpha"].tol.rtol == 1e-6
        assert diff_goldens(results, stored) == []

    def test_drift_named_and_banded(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        stored = load_goldens(str(tmp_path))
        moved = _toy_results()
        moved["EX"]["alpha"] = Quantity(2.001)
        drifts = diff_goldens(moved, stored)
        assert len(drifts) == 1
        d = drifts[0]
        assert (d.kind, d.experiment, d.quantity) == \
            (GoldenDrift.DRIFT, "EX", "alpha")
        assert "EX.alpha" in d.describe()
        assert d.error == pytest.approx(1e-3)

    def test_within_band_is_not_drift(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        stored = load_goldens(str(tmp_path))
        moved = _toy_results()
        moved["EY"]["gamma"] = Quantity(10.0 * (1 + 5e-4))
        assert diff_goldens(moved, stored) == []

    def test_missing_and_new_quantity_kinds(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        stored = load_goldens(str(tmp_path))
        changed = _toy_results()
        del changed["EX"]["beta"]
        changed["EX"]["delta"] = Quantity(1.0)
        kinds = {(d.kind, d.quantity)
                 for d in diff_goldens(changed, stored)}
        assert kinds == {(GoldenDrift.MISSING_QUANTITY, "beta"),
                         (GoldenDrift.NEW_QUANTITY, "delta")}

    def test_experiment_without_golden_is_flagged(self, tmp_path):
        write_goldens({"EX": _toy_results()["EX"]}, str(tmp_path))
        stored = load_goldens(str(tmp_path))
        drifts = diff_goldens(_toy_results(), stored)
        assert [d.kind for d in drifts] == [GoldenDrift.MISSING_EXPERIMENT]
        assert drifts[0].experiment == "EY"

    def test_merge_keeps_absent_experiments(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        write_goldens({"EX": {"alpha": Quantity(3.0)}}, str(tmp_path))
        stored = load_goldens(str(tmp_path))
        assert stored["EX"]["alpha"].value == 3.0
        assert stored["EY"]["gamma"].value == 10.0

    def test_manifest_referencing_missing_file_raises(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        (tmp_path / "EY.json").unlink()
        with pytest.raises(GoldenError, match="EY.json"):
            load_goldens(str(tmp_path))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(GoldenError, match="update-golden"):
            load_manifest(str(tmp_path))

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(GoldenError, match="corrupt"):
            load_manifest(str(tmp_path))

    def test_nan_result_is_drift(self, tmp_path):
        write_goldens(_toy_results(), str(tmp_path))
        stored = load_goldens(str(tmp_path))
        moved = _toy_results()
        moved["EX"]["alpha"] = Quantity(float("nan"))
        drifts = diff_goldens(moved, stored)
        assert any(d.kind == GoldenDrift.DRIFT and d.quantity == "alpha"
                   for d in drifts)


# ----------------------------------------------------------------------
# Experiments registry
# ----------------------------------------------------------------------
@requires_scipy_stats
class TestExperiments:
    def test_fast_tier_runs_and_is_banded(self):
        results = run_experiments(include_slow=False)
        assert len(results) >= 9
        for exp_id, quantities in results.items():
            assert quantities, f"{exp_id} produced nothing"
            for name, q in quantities.items():
                assert math.isfinite(q.value), f"{exp_id}.{name}"
                assert q.tol.bound(q.value) > 0.0

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="E99"):
            run_experiments(ids=["E99"])

    def test_id_subset(self):
        results = run_experiments(ids=["E6", "E7"])
        assert set(results) == {"E6", "E7"}


# ----------------------------------------------------------------------
# The CLI gate end-to-end
# ----------------------------------------------------------------------
@pytest.fixture()
def golden_dir(tmp_path):
    """Fresh fast-tier goldens generated through the real CLI flow."""
    path = tmp_path / "goldens"
    code = main(["verify", "--update-golden", "--quick",
                 "--skip-differential", "--goldens", str(path)])
    assert code == 0
    return path


@requires_scipy_stats
class TestVerifyCli:
    def test_round_trip_passes(self, golden_dir, capsys):
        code = main(["verify", "--quick", "--skip-differential",
                     "--goldens", str(golden_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS (no drift)" in out

    def test_perturbed_model_exits_2_naming_quantities(
            self, golden_dir, monkeypatch, capsys):
        from repro.aging.nbti import NbtiModel

        orig = NbtiModel.prefactor
        monkeypatch.setattr(
            NbtiModel, "prefactor",
            lambda self, eox, t_k: 1.2 * orig(self, eox, t_k))
        code = main(["verify", "--quick", "--skip-differential",
                     "--goldens", str(golden_dir)])
        out = capsys.readouterr().out
        assert code == 2
        assert "E6.dvt_10yr_v" in out
        assert "FAIL" in out

    def test_perturbed_solver_constant_exits_2(self, golden_dir,
                                               monkeypatch, capsys):
        orig_init = NewtonOptions.__init__

        def leaky_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self.gmin = 1e-5

        monkeypatch.setattr(NewtonOptions, "__init__", leaky_init)
        code = main(["verify", "--quick", "--goldens", str(golden_dir)])
        out = capsys.readouterr().out
        assert code == 2
        assert "FAIL" in out
        assert "ladder" in out  # the linear oracle names the culprit

    def test_report_file_written(self, golden_dir, tmp_path):
        report_path = tmp_path / "verify-report.txt"
        code = main(["verify", "--quick", "--skip-differential",
                     "--goldens", str(golden_dir),
                     "--report", str(report_path)])
        assert code == 0
        assert "golden artifacts" in report_path.read_text()

    def test_missing_goldens_is_hard_error(self, tmp_path, capsys):
        code = main(["verify", "--quick", "--skip-differential",
                     "--goldens", str(tmp_path / "nowhere")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_quick_update_merges_over_full_store(self, golden_dir):
        # A second --quick update must not orphan anything: manifest
        # still loads and every referenced file exists.
        code = main(["verify", "--update-golden", "--quick",
                     "--skip-differential", "--goldens", str(golden_dir)])
        assert code == 0
        stored = load_goldens(str(golden_dir))
        assert len(stored) >= 9


# ----------------------------------------------------------------------
# Committed goldens (repo-level contract)
# ----------------------------------------------------------------------
@requires_scipy_stats
class TestCommittedGoldens:
    def test_committed_store_is_complete(self):
        import pathlib

        repo_goldens = pathlib.Path(__file__).parent.parent / "goldens"
        stored = load_goldens(str(repo_goldens))
        assert set(stored) == {f"E{k}" for k in range(1, 16)}

    def test_fast_tier_matches_committed_goldens(self):
        import pathlib

        repo_goldens = pathlib.Path(__file__).parent.parent / "goldens"
        stored = load_goldens(str(repo_goldens))
        results = run_experiments(include_slow=False)
        drifts = diff_goldens(results, stored)
        assert drifts == [], "\n".join(d.describe() for d in drifts)
